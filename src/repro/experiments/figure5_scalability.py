"""Figure 5 — Scalability of h-LB+UB on snowball samples.

The paper samples subgraphs of 100 / 1k / 10k / 100k vertices from the lj
network by snowball sampling (10 samples per size) and plots the average
runtime of h-LB+UB for h = 2 and h = 3 — near-linear growth for h = 2, and a
steeper rise for h = 3 on the larger samples.

The stand-in uses the lj-like Barabási–Albert graph from the registry and a
geometric ladder of sample sizes scaled to this environment.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Optional, Sequence

from repro.core import h_lb_ub
from repro.datasets import load_dataset
from repro.experiments.common import ExperimentConfig, format_table
from repro.graph.sampling import snowball_sample

DEFAULT_SIZES: Sequence[int] = (50, 100, 200, 400)
DEFAULT_SAMPLES_PER_SIZE = 3
DEFAULT_H_VALUES: Sequence[int] = (2, 3)


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Time h-LB+UB on snowball samples of increasing size."""
    config = config or ExperimentConfig(h_values=DEFAULT_H_VALUES)
    sizes = config.extra.get("sample_sizes", DEFAULT_SIZES)
    samples_per_size = int(config.extra.get("samples_per_size", DEFAULT_SAMPLES_PER_SIZE))
    base_graph = load_dataset("lj", scale=config.scale, seed=config.seed)
    h_values = tuple(config.h_values) if config.h_values else DEFAULT_H_VALUES

    rows: List[Dict[str, object]] = []
    for size in sizes:
        for h in h_values:
            durations = []
            for sample_index in range(samples_per_size):
                sample = snowball_sample(base_graph, size,
                                         seed=config.seed + sample_index)
                start = time.perf_counter()
                h_lb_ub(sample, h)
                durations.append(time.perf_counter() - start)
            rows.append({
                "sample size": size,
                "h": h,
                "mean time (s)": round(statistics.mean(durations), 4),
                "std time (s)": round(statistics.pstdev(durations), 4),
                "samples": samples_per_size,
            })
    return rows


def main() -> None:
    """Print the Figure 5 series (runtime vs snowball-sample size)."""
    print(format_table(run(), title="Figure 5: h-LB+UB runtime vs snowball sample size"))


if __name__ == "__main__":
    main()

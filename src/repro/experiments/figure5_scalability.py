"""Figure 5 — Scalability of h-LB+UB on snowball samples.

The paper samples subgraphs of 100 / 1k / 10k / 100k vertices from the lj
network by snowball sampling (10 samples per size) and plots the average
runtime of h-LB+UB for h = 2 and h = 3 — near-linear growth for h = 2, and a
steeper rise for h = 3 on the larger samples.

The stand-in uses the lj-like Barabási–Albert graph from the registry and a
geometric ladder of sample sizes scaled to this environment.

A second series (:func:`run_executor_scaling`) reports §4.6 parallel
scalability: the wall time of the bulk h-degree pass under every engine ×
executor × worker-count combination (the vectorized NumPy engine joins the
grid when the optional dependency is importable), with the speedup over the
CSR serial pass.  Earlier
revisions ran this series on a thread pool, where the GIL capped every
configuration at ~1x — the reported "scaling" was pure overhead.  The
``process`` executor (shared-memory CSR arrays, persistent worker pool — see
:mod:`repro.parallel`) is the configuration that reports real multi-core
speedups; the thread rows are kept as the GIL baseline the paper's
reproduction has to live with on CPython.
"""

from __future__ import annotations

import os
import statistics
import time
from typing import Dict, List, Optional, Sequence

from repro.core import h_lb_ub
from repro.core.backends import (
    CSREngine,
    native_available,
    numpy_available,
    resolve_engine,
)
from repro.datasets import load_dataset
from repro.experiments.common import ExperimentConfig, format_table
from repro.graph.sampling import snowball_sample

DEFAULT_SIZES: Sequence[int] = (50, 100, 200, 400)
DEFAULT_SAMPLES_PER_SIZE = 3
DEFAULT_H_VALUES: Sequence[int] = (2, 3)

#: Executor x worker-count grid of the parallel-scalability series.
DEFAULT_EXECUTORS: Sequence[str] = ("serial", "thread", "process")
DEFAULT_WORKER_COUNTS: Sequence[int] = (2, 4)
DEFAULT_SCALING_SAMPLE_SIZE = 600
DEFAULT_SCALING_REPEATS = 2


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Time h-LB+UB on snowball samples of increasing size."""
    config = config or ExperimentConfig(h_values=DEFAULT_H_VALUES)
    sizes = config.extra.get("sample_sizes", DEFAULT_SIZES)
    samples_per_size = int(config.extra.get("samples_per_size", DEFAULT_SAMPLES_PER_SIZE))
    base_graph = load_dataset("lj", scale=config.scale, seed=config.seed)
    h_values = tuple(config.h_values) if config.h_values else DEFAULT_H_VALUES

    rows: List[Dict[str, object]] = []
    for size in sizes:
        for h in h_values:
            durations = []
            for sample_index in range(samples_per_size):
                sample = snowball_sample(base_graph, size,
                                         seed=config.seed + sample_index)
                start = time.perf_counter()
                h_lb_ub(sample, h)
                durations.append(time.perf_counter() - start)
            rows.append({
                "sample size": size,
                "h": h,
                "mean time (s)": round(statistics.mean(durations), 4),
                "std time (s)": round(statistics.pstdev(durations), 4),
                "samples": samples_per_size,
            })
    return rows


def _bulk_pass_seconds(engine: CSREngine, h: int, executor: str,
                       workers: int, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full bulk h-degree pass."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.bulk_h_degrees(h, num_workers=workers, executor=executor)
        best = min(best, time.perf_counter() - start)
    return best


def run_executor_scaling(config: Optional[ExperimentConfig] = None
                         ) -> List[Dict[str, object]]:
    """Time the bulk h-degree pass per executor × worker count (§4.6).

    One CSR engine per executor keeps the process pool and the
    shared-memory export warm across worker counts and repeats, so the
    numbers measure the dispatch itself, not pool start-up.  A warm-up
    dispatch precedes the timed repeats for the same reason.
    """
    config = config or ExperimentConfig(h_values=(2,))
    executors = tuple(config.extra.get("executors", DEFAULT_EXECUTORS))
    worker_counts = tuple(config.extra.get("worker_counts",
                                           DEFAULT_WORKER_COUNTS))
    size = int(config.extra.get("scaling_sample_size",
                                DEFAULT_SCALING_SAMPLE_SIZE))
    repeats = int(config.extra.get("repeats", DEFAULT_SCALING_REPEATS))
    h = tuple(config.h_values)[0] if config.h_values else 2

    base_graph = load_dataset("lj", scale=config.scale, seed=config.seed)
    sample = snowball_sample(base_graph, min(size, base_graph.num_vertices),
                             seed=config.seed)

    # Engine dimension: the interpreted CSR engine always, the vectorized
    # NumPy and compiled native engines when their optional dependencies
    # are importable.  Every row's speedup is relative to the *CSR serial*
    # pass, so the engine gain and the executor gain read off the same
    # column.
    engines = ["csr"]
    if numpy_available():
        engines.append("numpy")
    if native_available():
        engines.append("native")

    serial_engine = CSREngine(sample)
    serial_seconds = _bulk_pass_seconds(serial_engine, h, "serial", 1,
                                        repeats)
    serial_engine.close()
    cores = os.cpu_count() or 1

    def row(backend: str, executor: str, workers: int,
            seconds: float) -> Dict[str, object]:
        return {
            "engine": backend,
            "executor": executor,
            "workers": workers,
            "h": h,
            "time (s)": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 2)
            if seconds else float("inf"),
            "cores": cores,
        }

    rows: List[Dict[str, object]] = []
    for backend in engines:
        for executor in executors:
            if backend == "csr" and executor == "serial":
                # Already measured as the baseline above — no second
                # engine build or warm-up for this cell.
                rows.append(row(backend, executor, 1, serial_seconds))
                continue
            engine = resolve_engine(sample, backend)
            try:
                for workers in worker_counts if executor != "serial" else (1,):
                    # Warm-up: spin the pool up / export before timing.
                    engine.bulk_h_degrees(h, targets=range(min(
                        8, sample.num_vertices)), num_workers=workers,
                        executor=executor)
                    rows.append(row(backend, executor, workers,
                                    _bulk_pass_seconds(engine, h, executor,
                                                       workers, repeats)))
            finally:
                engine.close()
    return rows


def main() -> None:
    """Print both Figure 5 series (sample-size growth, executor scaling)."""
    print(format_table(run(), title="Figure 5: h-LB+UB runtime vs snowball sample size"))
    print()
    print(format_table(
        run_executor_scaling(),
        title="Figure 5b: bulk h-degree pass — executor scaling (§4.6)"))


if __name__ == "__main__":
    main()

"""Figure 6 (Appendix C) — Scatter of core indices: h = 1 vs h = 2..5.

The paper samples 10% of the vertices of caAs and scatter-plots the
normalized core index at h = 1 against the normalized core index at
h = 2..5.  The point of the figure: the two indices are only loosely
correlated — some low-core (h = 1) vertices climb into very high (k,h)-cores
as h grows, so the distance-generalized index carries genuinely new
information.  We regenerate the underlying point sets and also report their
Pearson correlation per h (which should drop noticeably below 1).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table

DEFAULT_DATASET = "caAs"
SCATTER_H_VALUES = (2, 3, 4, 5)
SAMPLE_FRACTION = 0.1


def _pearson(xs: List[float], ys: List[float]) -> float:
    n = len(xs)
    if n < 2:
        return 1.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 1.0
    return cov / (var_x ** 0.5 * var_y ** 0.5)


def run(config: Optional[ExperimentConfig] = None,
        return_points: bool = False) -> List[Dict[str, object]]:
    """Compute the scatter points (optionally) and their correlations."""
    config = config or ExperimentConfig()
    dataset = (config.datasets[0] if config.datasets else DEFAULT_DATASET)
    graph = config.graphs((dataset,))[dataset]
    rng = random.Random(config.seed)

    baseline = core_decomposition(graph, 1).normalized_core_index()
    vertices = sorted(graph.vertices(), key=repr)
    sample_size = max(1, int(len(vertices) * SAMPLE_FRACTION))
    sampled = rng.sample(vertices, sample_size)

    rows: List[Dict[str, object]] = []
    for h in SCATTER_H_VALUES:
        normalized = core_decomposition(graph, h).normalized_core_index()
        xs = [baseline[v] for v in sampled]
        ys = [normalized[v] for v in sampled]
        row: Dict[str, object] = {
            "dataset": dataset,
            "comparison": f"h=1 vs h={h}",
            "sampled vertices": sample_size,
            "pearson": round(_pearson(xs, ys), 3),
        }
        if return_points:
            row["points"] = list(zip(xs, ys))
        rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 6 correlations (h = 1 core index vs h = 2..5)."""
    print(format_table(run(), title="Figure 6: core-index scatter (correlation summary)"))


if __name__ == "__main__":
    main()

"""Table 3 — Running time and number of computed point-to-point distances.

The paper's central efficiency experiment: for each dataset and h in {2,3,4},
run the three algorithms (h-BZ, h-LB, h-LB+UB) and report wall-clock time and
the total number of vertices visited across all h-bounded BFS traversals.

Shape to reproduce (not absolute numbers — the substrate is pure Python on
synthetic stand-ins):

* h-LB and h-LB+UB beat h-BZ by at least an order of magnitude in visits;
* h-LB tends to win on sparse, road-like graphs and for h = 2;
* h-LB+UB takes over on denser graphs and larger h.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import core_decomposition_with_report
from repro.experiments.common import ExperimentConfig, format_table

DEFAULT_DATASETS = ("FBco", "caHe", "caAs", "doub", "amzn", "rnPA")
ALGORITHMS = ("h-BZ", "h-LB", "h-LB+UB")


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Time the three algorithms on every (dataset, h) cell."""
    config = config or ExperimentConfig()
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []
    results: Dict[tuple, Dict[str, int]] = {}
    for name, graph in graphs.items():
        for h in config.h_values:
            row: Dict[str, object] = {"dataset": name, "h": h,
                                      "|V|": graph.num_vertices,
                                      "|E|": graph.num_edges}
            reference = None
            for algorithm in ALGORITHMS:
                report = core_decomposition_with_report(
                    graph, h, algorithm=algorithm, dataset_name=name)
                row[f"{algorithm} time (s)"] = round(report.seconds, 4)
                row[f"{algorithm} visits"] = report.visits
                core_index = report.result.core_index
                if reference is None:
                    reference = core_index
                elif core_index != reference:
                    raise AssertionError(
                        f"algorithms disagree on {name} (h={h}); "
                        "the decomposition is supposed to be unique"
                    )
            results[(name, h)] = row
            rows.append(row)
    return rows


def main() -> None:
    """Print Table 3 (runtime and h-BFS visits per algorithm)."""
    print(format_table(run(), title="Table 3: runtime (s) and h-BFS visits"))


if __name__ == "__main__":
    main()

"""Table 1 — Characteristics of datasets used.

The paper's Table 1 lists |V|, |E|, average degree, maximum degree and
diameter for all thirteen datasets.  This experiment reports the same
statistics for the synthetic stand-ins, next to the original values for
reference, so the structural-family substitution can be sanity-checked
(road stand-ins keep the high diameter / low degree, social stand-ins keep
the skewed degree distribution, and so on).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.experiments.common import ExperimentConfig, format_table
from repro.graph.stats import summarize


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Compute the Table 1 rows for every configured dataset."""
    config = config or ExperimentConfig()
    names = list(config.datasets) if config.datasets is not None else list(DATASET_NAMES)
    rows: List[Dict[str, object]] = []
    for name in names:
        graph = load_dataset(name, scale=config.scale, seed=config.seed)
        summary = summarize(graph, name=name)
        spec = dataset_spec(name)
        rows.append({
            "dataset": name,
            "family": spec.family,
            "|V|": summary.num_vertices,
            "|E|": summary.num_edges,
            "avg deg": round(summary.avg_degree, 2),
            "max deg": summary.max_degree,
            "diam": summary.diameter,
            "paper |V|": spec.paper_num_vertices,
            "paper |E|": spec.paper_num_edges,
            "paper avg deg": spec.paper_avg_degree,
            "paper diam": spec.paper_diameter,
        })
    return rows


def main() -> None:
    """Print Table 1 (synthetic stand-ins vs paper originals)."""
    print(format_table(run(), title="Table 1: dataset characteristics (stand-in vs paper)"))


if __name__ == "__main__":
    main()

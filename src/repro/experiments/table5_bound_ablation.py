"""Table 5 — Effect of the bounds on running time (ablation).

Left half of the paper's table: no lower bound (h-BZ), LB1 only (h-LB with
LB1), LB2 (the full h-LB).  Right half: h-LB+UB with the plain h-degree as
upper bound versus the real power-graph UB.

Shape to reproduce: adding a lower bound saves about an order of magnitude;
LB2 beats LB1 more clearly as h and density grow; the real UB beats the
h-degree upper bound on the harder instances and is roughly neutral on the
easy ones (e.g. road networks).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core import h_bz, h_lb, h_lb_ub
from repro.experiments.common import ExperimentConfig, format_table
from repro.instrumentation import Counters

DEFAULT_DATASETS = ("caHe", "caAs", "amzn", "rnPA")


def _timed(function, *args, **kwargs):
    counters = Counters()
    start = time.perf_counter()
    function(*args, counters=counters, **kwargs)
    return time.perf_counter() - start, counters.vertices_visited


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Run the five ablation variants on every (dataset, h) cell."""
    config = config or ExperimentConfig()
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        for h in config.h_values:
            row: Dict[str, object] = {"dataset": name, "h": h}
            seconds, visits = _timed(h_bz, graph, h)
            row["no LB (s)"] = round(seconds, 4)
            seconds, visits = _timed(h_lb, graph, h, use_lb1_only=True)
            row["LB1 (s)"] = round(seconds, 4)
            seconds, visits = _timed(h_lb, graph, h)
            row["LB2 (s)"] = round(seconds, 4)
            seconds, visits = _timed(h_lb_ub, graph, h,
                                     use_hdegree_as_upper_bound=True)
            row["h-degree UB (s)"] = round(seconds, 4)
            seconds, visits = _timed(h_lb_ub, graph, h)
            row["UB (s)"] = round(seconds, 4)
            del visits
            rows.append(row)
    return rows


def main() -> None:
    """Print Table 5 (runtime with each bound enabled)."""
    print(format_table(run(), title="Table 5: effect of bounds on running time (s)"))


if __name__ == "__main__":
    main()

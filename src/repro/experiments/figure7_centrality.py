"""Figure 7 (Appendix C) — Core index vs closeness centrality.

The paper sorts the vertices of caAs by decreasing closeness centrality and
plots their normalized core index, for h = 1..4: the correlation between
being central and being in a deep core strengthens markedly as h grows.  We
regenerate the series and summarize it by the Spearman rank correlation
between closeness and core index per h.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table
from repro.traversal.centrality import closeness_centrality

DEFAULT_DATASET = "caAs"
H_VALUES = (1, 2, 3, 4)


def _ranks(values: Dict) -> Dict:
    ordered = sorted(values, key=lambda v: (values[v], repr(v)))
    return {v: i for i, v in enumerate(ordered)}


def _spearman(x: Dict, y: Dict) -> float:
    keys = list(x)
    rank_x = _ranks(x)
    rank_y = _ranks(y)
    n = len(keys)
    if n < 2:
        return 1.0
    mean = (n - 1) / 2
    cov = sum((rank_x[k] - mean) * (rank_y[k] - mean) for k in keys)
    var_x = sum((rank_x[k] - mean) ** 2 for k in keys)
    var_y = sum((rank_y[k] - mean) ** 2 for k in keys)
    if var_x == 0 or var_y == 0:
        return 1.0
    return cov / (var_x ** 0.5 * var_y ** 0.5)


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Correlate closeness centrality with the core index for h = 1..4."""
    config = config or ExperimentConfig(h_values=H_VALUES)
    dataset = (config.datasets[0] if config.datasets else DEFAULT_DATASET)
    graph = config.graphs((dataset,))[dataset]
    closeness = closeness_centrality(graph)
    h_values = tuple(config.h_values) if config.h_values else H_VALUES

    rows: List[Dict[str, object]] = []
    for h in h_values:
        core_index = core_decomposition(graph, h).core_index
        rows.append({
            "dataset": dataset,
            "h": h,
            "spearman(closeness, core)": round(_spearman(closeness, core_index), 3),
            "degeneracy": max(core_index.values(), default=0),
        })
    return rows


def main() -> None:
    """Print the Figure 7 summary (closeness vs core-index rank correlation)."""
    print(format_table(run(), title="Figure 7: closeness centrality vs core index"))


if __name__ == "__main__":
    main()

"""Allow ``python -m repro.experiments`` to run the experiment suite."""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())

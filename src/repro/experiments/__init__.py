"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(config) -> rows`` (a list of dict rows that mirror
the paper's table/series layout) and ``main()`` which prints them.  The
shared :class:`~repro.experiments.common.ExperimentConfig` controls the
dataset scale, seeds and parameter grids, so the same code can drive the fast
benchmark suite (tiny/small scale) and a longer standalone reproduction run
(medium scale).

Run everything with ``python -m repro.experiments`` or a single experiment
with e.g. ``python -m repro.experiments table3``.
"""

from repro.experiments.common import ExperimentConfig, format_table

__all__ = ["ExperimentConfig", "format_table"]

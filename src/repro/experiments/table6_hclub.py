"""Table 6 — Runtime for the maximum h-club problem.

The paper compares the standalone exact solvers (DBC, ITDBC) against
Algorithm 7, which wraps either solver and only ever runs it inside (k,h)-
cores (starting from the innermost one).  The reported quantities per
(dataset, h) cell: the maximum h-club size and the four runtimes; cells that
exceed the budget are marked "NT" (the paper used a 24-hour / 128 GB budget,
we use a configurable per-call budget).

Shape to reproduce: Algorithm 7 + either solver is consistently faster (and
far less memory/state hungry) than the standalone solvers, because the core
of maximum index is much smaller than the graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.applications.hclub import (
    DBCSolver,
    ITDBCSolver,
    maximum_h_club_with_core,
)
from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table

DEFAULT_DATASETS = ("FBco", "caHe", "amzn", "rnTX", "rnPA")


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Solve maximum h-club with and without the core wrapper on each cell."""
    config = config or ExperimentConfig()
    graphs = config.graphs(DEFAULT_DATASETS)
    budget = config.hclub_time_budget_seconds
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        for h in config.h_values:
            row: Dict[str, object] = {"dataset": name, "h": h}
            sizes = set()

            standalone = {"DBC": DBCSolver(budget), "ITDBC": ITDBCSolver(budget)}
            for label, solver in standalone.items():
                result = solver.solve(graph, h)
                row[f"{label} (s)"] = round(result.seconds, 3) if result.optimal else "NT"
                if result.optimal:
                    sizes.add(result.size)

            decomposition = core_decomposition(graph, h)
            wrapped = {"Alg7+DBC": DBCSolver(budget), "Alg7+ITDBC": ITDBCSolver(budget)}
            for label, solver in wrapped.items():
                result = maximum_h_club_with_core(graph, h, solver=solver,
                                                  decomposition=decomposition)
                row[f"{label} (s)"] = round(result.seconds, 3) if result.optimal else "NT"
                if result.optimal:
                    sizes.add(result.size)

            if len(sizes) > 1:
                raise AssertionError(
                    f"solvers disagree on the maximum h-club size for {name} h={h}: {sizes}"
                )
            row["max h-club size"] = next(iter(sizes)) if sizes else "NT"
            rows.append(row)
    return rows


def main() -> None:
    """Print Table 6 (maximum h-club sizes and solver runtimes)."""
    print(format_table(run(), title="Table 6: maximum h-club runtimes (s)"))


if __name__ == "__main__":
    main()

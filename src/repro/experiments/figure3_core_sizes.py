"""Figure 3 — How many vertices belong to the (k,h)-core C_k.

For each h in 1..5, the paper plots |C_k| / |V| against k / Ĉ_h(G) on the
caAs and FBco datasets: curves shift up as h grows (a larger fraction of the
graph survives to a given normalized depth), and the h = 1 curve drops much
earlier.  This module regenerates those series as rows of
``(dataset, h, k/Ĉ_h, |C_k|/|V|)`` sampled on a fixed normalized grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table

DEFAULT_DATASETS = ("caAs", "FBco")

#: Normalized depths the series are sampled at (10% steps like the figure axis).
GRID: Sequence[float] = tuple(i / 10 for i in range(0, 11))


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Compute the cumulative core-size series of Figure 3."""
    config = config or ExperimentConfig(h_values=(1, 2, 3, 4, 5))
    h_values = tuple(config.h_values) if config.h_values else (1, 2, 3, 4, 5)
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        n = graph.num_vertices
        for h in h_values:
            decomposition = core_decomposition(graph, h)
            degeneracy = max(decomposition.degeneracy, 1)
            sizes = decomposition.core_sizes()
            row: Dict[str, object] = {"dataset": name, "h": h,
                                      "degeneracy": decomposition.degeneracy}
            for fraction in GRID:
                k = round(fraction * degeneracy)
                row[f"k/C^={fraction:.1f}"] = round(sizes.get(k, 0) / n, 3)
            rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 3 series (fraction of vertices in C_k vs k/Ĉ_h)."""
    print(format_table(run(), title="Figure 3: |C_k|/|V| vs k/Ĉ_h(G)"))


if __name__ == "__main__":
    main()

"""Table 4 — Quality of the lower and upper bounds.

For each dataset and h, the paper reports, for the two lower bounds (LB1,
LB2) and the two upper bounds (plain h-degree, UB = power-graph core index):
the mean relative error w.r.t. the true core index and the fraction of
vertices for which the bound is tight.

Shape to reproduce: LB2 is clearly tighter than LB1, and UB is dramatically
tighter than the raw h-degree (relative errors of a few percent, large
fractions of exactly-tight vertices).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import (
    core_decomposition,
    lower_bound_lb1,
    lower_bound_lb2,
    upper_bound,
)
from repro.experiments.common import ExperimentConfig, format_table
from repro.traversal.hneighborhood import all_h_degrees

DEFAULT_DATASETS = ("caHe", "caAs", "amzn", "rnPA")


def _bound_quality(bound: Dict, truth: Dict) -> Dict[str, float]:
    """Mean relative error and tight fraction of ``bound`` against ``truth``."""
    errors = []
    tight = 0
    for v, true_value in truth.items():
        value = bound[v]
        if true_value > 0:
            errors.append(abs(value - true_value) / true_value)
        else:
            errors.append(0.0 if value == 0 else 1.0)
        if value == true_value:
            tight += 1
    n = max(len(truth), 1)
    return {
        "relative_error": sum(errors) / n,
        "tight_fraction": tight / n,
    }


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Evaluate LB1/LB2/h-degree/UB against the exact core indices."""
    config = config or ExperimentConfig()
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        for h in config.h_values:
            truth = core_decomposition(graph, h).core_index
            lb1 = lower_bound_lb1(graph, h)
            lb2 = lower_bound_lb2(graph, h, lb1=lb1)
            hdeg = all_h_degrees(graph, h)
            ub = upper_bound(graph, h, initial_h_degrees=dict(hdeg))
            row: Dict[str, object] = {"dataset": name, "h": h}
            for label, bound in (("LB1", lb1), ("LB2", lb2),
                                 ("h-degree", hdeg), ("UB", ub)):
                quality = _bound_quality(bound, truth)
                row[f"{label} err"] = round(quality["relative_error"], 3)
                row[f"{label} tight"] = f"{quality['tight_fraction'] * 100:.1f}%"
            rows.append(row)
    return rows


def main() -> None:
    """Print Table 4 (bound relative error / fraction tight)."""
    print(format_table(run(), title="Table 4: bound quality (relative error / tight %)"))


if __name__ == "__main__":
    main()

"""Command-line runner for the experiment suite.

Usage::

    python -m repro.experiments                 # run everything (small scale)
    python -m repro.experiments table3 table6   # run a subset
    python -m repro.experiments --scale tiny    # faster, smaller graphs
    repro-experiments --list                    # show available experiments
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentConfig, format_table
from repro.experiments import (
    appendix_cocktail_party,
    figure3_core_sizes,
    figure4_core_distribution,
    figure5_scalability,
    figure6_core_scatter,
    figure7_centrality,
    table1_datasets,
    table2_characterization,
    table3_efficiency,
    table4_bounds,
    table5_bound_ablation,
    table6_hclub,
    table7_landmarks,
)

#: Registry of experiment name -> (module runner, human title).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (table1_datasets.run, "Table 1: dataset characteristics"),
    "table2": (table2_characterization.run, "Table 2: max core index / distinct cores"),
    "figure3": (figure3_core_sizes.run, "Figure 3: |C_k|/|V| vs k/Ĉ_h"),
    "figure4": (figure4_core_distribution.run, "Figure 4: core-index distribution"),
    "table3": (table3_efficiency.run, "Table 3: runtime and h-BFS visits"),
    "table4": (table4_bounds.run, "Table 4: bound quality"),
    "table5": (table5_bound_ablation.run, "Table 5: bound ablation runtimes"),
    "figure5": (figure5_scalability.run, "Figure 5: scalability on snowball samples"),
    "figure5b": (figure5_scalability.run_executor_scaling,
                 "Figure 5b: bulk h-degree pass, executor scaling (§4.6)"),
    "table6": (table6_hclub.run, "Table 6: maximum h-club runtimes"),
    "table7": (table7_landmarks.run, "Table 7: landmark selection error"),
    "figure6": (figure6_core_scatter.run, "Figure 6: core-index scatter"),
    "figure7": (figure7_centrality.run, "Figure 7: closeness vs core index"),
    "cocktail": (appendix_cocktail_party.run, "Appendix B: cocktail party"),
}


def run_experiments(names: Sequence[str], config: ExperimentConfig,
                    output: Callable[[str], None] = print) -> Dict[str, List[dict]]:
    """Run the named experiments and print each resulting table.

    Returns the raw rows keyed by experiment name (useful programmatically).
    """
    results: Dict[str, List[dict]] = {}
    for name in names:
        if name not in EXPERIMENTS:
            raise ExperimentError(
                f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
            )
        runner, title = EXPERIMENTS[name]
        start = time.perf_counter()
        rows = runner(config)
        elapsed = time.perf_counter() - start
        results[name] = rows
        output(format_table(rows, title=f"{title}  [{elapsed:.1f}s]"))
        output("")
    return results


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the paper.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"),
                        help="dataset scale (default: small)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--h", type=int, nargs="+", default=None,
                        help="override the h values swept by multi-h experiments")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.experiments`` / ``repro-experiments``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name, (_, title) in EXPERIMENTS.items():
            print(f"{name:10s} {title}")
        return 0
    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    if args.h:
        config.h_values = tuple(args.h)
    names = args.experiments or list(EXPERIMENTS)
    try:
        run_experiments(names, config)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 7 — Landmark selection for shortest-path distance estimation.

The paper selects ℓ = 20 landmarks with each strategy (random vertices from
the maximum (k,h)-core for h = 1..4; top-ℓ closeness; top-ℓ betweenness;
top-ℓ h-degree for h = 1..4), estimates the distance of 500 random vertex
pairs by the landmark bounds, and reports the mean relative error — plus, in
a companion table, the maximum core index and the size of that core.

Shape to reproduce: the max-(k,h)-core strategy improves as h grows and beats
closeness/betweenness/h-degree, while the h-degree strategy does *not*
improve with h.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.applications.landmarks import evaluate_landmarks, select_landmarks
from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table

DEFAULT_DATASETS = ("FBco", "caHe", "caAs", "doub")
CORE_H_VALUES = (1, 2, 3, 4)


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Evaluate every landmark-selection strategy on every dataset."""
    config = config or ExperimentConfig()
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []

    # Approximation-error table (the main table).
    for strategy_label, strategy, h in (
        [(f"max core h={h}", "max-core", h) for h in CORE_H_VALUES]
        + [("closeness", "closeness", 0), ("betweenness", "betweenness", 0)]
        + [(f"deg^{h}", "h-degree", h) for h in CORE_H_VALUES]
    ):
        row: Dict[str, object] = {"strategy": strategy_label}
        for name, graph in graphs.items():
            effective_h = h if h > 0 else 1
            decomposition = (core_decomposition(graph, effective_h)
                             if strategy == "max-core" else None)
            landmarks = select_landmarks(
                graph, config.num_landmarks, strategy=strategy,
                h=effective_h, seed=config.seed, decomposition=decomposition)
            evaluation = evaluate_landmarks(
                graph, landmarks, num_pairs=config.num_query_pairs,
                seed=config.seed + 1, strategy=strategy_label, h=effective_h)
            row[name] = round(evaluation.mean_relative_error, 3)
        rows.append(row)

    # Companion table: maximum core index / size of that core per h.
    for h in CORE_H_VALUES:
        row = {"strategy": f"max core index / size (h={h})"}
        for name, graph in graphs.items():
            decomposition = core_decomposition(graph, h)
            innermost = decomposition.innermost_core()
            row[name] = f"{decomposition.degeneracy}/{len(innermost)}"
        rows.append(row)
    return rows


def main() -> None:
    """Print Table 7 (landmark approximation error per strategy)."""
    print(format_table(run(), title="Table 7: landmark selection (mean relative error)"))


if __name__ == "__main__":
    main()

"""Figure 4 — Distribution of core indices.

For each h, the paper plots the fraction of vertices whose normalized core
index ``core(v)/Ĉ_h(G)`` falls in each of ten equal-width bins.  The shape to
reproduce: for h = 1 the mass sits in the low bins, while as h grows an
increasingly large fraction of the vertices concentrates in the top bins
(the graph becomes "reachable within h" for most vertices).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table

DEFAULT_DATASETS = ("caAs", "FBco")
NUM_BINS = 10


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Compute the ten-bin normalized core-index histogram of Figure 4."""
    config = config or ExperimentConfig(h_values=(1, 2, 3, 4, 5))
    h_values = tuple(config.h_values) if config.h_values else (1, 2, 3, 4, 5)
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        n = max(graph.num_vertices, 1)
        for h in h_values:
            decomposition = core_decomposition(graph, h)
            normalized = decomposition.normalized_core_index()
            bins = [0] * NUM_BINS
            for value in normalized.values():
                index = min(int(value * NUM_BINS), NUM_BINS - 1)
                bins[index] += 1
            row: Dict[str, object] = {"dataset": name, "h": h}
            for i, count in enumerate(bins):
                low, high = i / NUM_BINS, (i + 1) / NUM_BINS
                row[f"({low:.1f},{high:.1f}]"] = round(count / n, 3)
            rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 4 histogram rows."""
    print(format_table(run(), title="Figure 4: fraction of vertices per core()/Ĉ_h bin"))


if __name__ == "__main__":
    main()

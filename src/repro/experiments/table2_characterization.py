"""Table 2 — Maximum core index / number of distinct cores.

For each dataset and each h in 1..5, the paper reports the maximum core index
``Ĉ_h(G)`` and how many of the cores are distinct.  The shape the paper
highlights: moving from h = 1 to h = 2-3 multiplies the number of distinct
cores (finer-grained structure), while for h >= 4 the maximum index keeps
growing but more vertices collapse into the same core.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table

#: Datasets the paper uses for Table 2 (the six smaller ones).
DEFAULT_DATASETS = ("coli", "cele", "jazz", "FBco", "caHe", "caAs")

#: Paper-reported values ``(max core index, distinct cores)`` for reference.
PAPER_VALUES: Dict[str, Dict[int, tuple]] = {
    "coli": {1: (3, 3), 2: (72, 20), 3: (85, 40), 4: (139, 32), 5: (198, 26)},
    "cele": {1: (10, 10), 2: (186, 52), 3: (291, 25), 4: (336, 6), 5: (342, 3)},
    "jazz": {1: (29, 21), 2: (109, 27), 3: (174, 12), 4: (191, 6), 5: (196, 2)},
    "FBco": {1: (115, 96), 2: (1045, 43), 3: (1829, 15), 4: (3228, 10), 5: (3777, 5)},
    "caHe": {1: (238, 65), 2: (654, 589), 3: (2267, 1678), 4: (4392, 2121), 5: (7225, 1237)},
    "caAs": {1: (56, 53), 2: (680, 675), 3: (4305, 3339), 4: (10252, 2757), 5: (14403, 1185)},
}


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Compute max core index / distinct cores for h = 1..5 on each dataset."""
    config = config or ExperimentConfig(h_values=(1, 2, 3, 4, 5))
    h_values = tuple(config.h_values) if config.h_values else (1, 2, 3, 4, 5)
    graphs = config.graphs(DEFAULT_DATASETS)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        row: Dict[str, object] = {"dataset": name}
        for h in h_values:
            decomposition = core_decomposition(graph, h)
            row[f"h={h}"] = (
                f"{decomposition.max_core_index} / {decomposition.num_distinct_cores}"
            )
            paper = PAPER_VALUES.get(name, {}).get(h)
            if paper is not None:
                row[f"paper h={h}"] = f"{paper[0]} / {paper[1]}"
        rows.append(row)
    return rows


def main() -> None:
    """Print Table 2 (max core index / number of distinct cores)."""
    config = ExperimentConfig(h_values=(1, 2, 3, 4, 5))
    print(format_table(run(config),
                       title="Table 2: max core index / distinct cores"))


if __name__ == "__main__":
    main()

"""Appendix B — Distance-generalized cocktail party (community search).

The appendix introduces the problem and its solution via the decomposition;
the paper gives no dedicated table, so this experiment exercises the
application the way the appendix describes it: random query sets of 2-3
vertices on the social-like datasets, solved for h = 1..3, reporting the
depth (k), size and minimum h-degree of the returned community, and checking
that the community is connected and contains the query.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.applications.community import cocktail_party
from repro.core import core_decomposition
from repro.experiments.common import ExperimentConfig, format_table
from repro.traversal.components import largest_component

DEFAULT_DATASETS = ("FBco", "caHe", "doub")
H_VALUES = (1, 2, 3)
QUERIES_PER_DATASET = 3


def run(config: Optional[ExperimentConfig] = None) -> List[Dict[str, object]]:
    """Solve random cocktail-party queries on each dataset and h."""
    config = config or ExperimentConfig(h_values=H_VALUES)
    graphs = config.graphs(DEFAULT_DATASETS)
    h_values = tuple(config.h_values) if config.h_values else H_VALUES
    rng = random.Random(config.seed)
    rows: List[Dict[str, object]] = []
    for name, graph in graphs.items():
        component = sorted(largest_component(graph), key=repr)
        for query_index in range(QUERIES_PER_DATASET):
            query = rng.sample(component, min(3, len(component)))
            for h in h_values:
                decomposition = core_decomposition(graph, h)
                result = cocktail_party(graph, query, h, decomposition=decomposition)
                rows.append({
                    "dataset": name,
                    "query": query_index,
                    "|Q|": len(query),
                    "h": h,
                    "community size": result.size,
                    "k": result.k,
                    "min h-degree": result.min_h_degree,
                })
    return rows


def main() -> None:
    """Print the cocktail-party (community search) results."""
    print(format_table(run(), title="Appendix B: distance-generalized cocktail party"))


if __name__ == "__main__":
    main()

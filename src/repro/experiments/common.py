"""Shared configuration and formatting helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.datasets import load_dataset
from repro.graph.graph import Graph


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    scale:
        Dataset scale passed to the registry (``"tiny"``, ``"small"``,
        ``"medium"``).  Benchmarks default to ``"small"``.
    seed:
        Seed used both for dataset generation and for any sampling inside
        the experiment, so runs are reproducible.
    h_values:
        The distance thresholds a (multi-h) experiment sweeps over.
    datasets:
        Optional restriction of the datasets an experiment uses; None means
        the experiment's own default selection.
    num_landmarks / num_query_pairs:
        Parameters of the landmark experiment (paper: 20 and 500).
    hclub_time_budget_seconds:
        Per-solver-call budget for the maximum h-club experiment; calls that
        exceed it are reported as "NT" like the paper does for 24h timeouts.
    """

    scale: str = "small"
    seed: int = 0
    h_values: Sequence[int] = (2, 3, 4)
    datasets: Optional[Sequence[str]] = None
    num_landmarks: int = 10
    num_query_pairs: int = 100
    hclub_time_budget_seconds: float = 20.0
    extra: Dict[str, object] = field(default_factory=dict)

    def graphs(self, default_names: Sequence[str]) -> Dict[str, Graph]:
        """Load the configured (or default) datasets at the configured scale."""
        names = list(self.datasets) if self.datasets is not None else list(default_names)
        return {name: load_dataset(name, scale=self.scale, seed=self.seed)
                for name in names}


def format_table(rows: Iterable[Dict[str, object]], title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(_fmt(row.get(c, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

"""Immutable, checksummed epochs of a maintained (k,h)-core decomposition.

A :class:`CoreSnapshot` is what the query service publishes after every
committed update batch: the core map *and* the graph structure frozen at one
generation, so every query a reader runs against one snapshot is answered
from a single consistent epoch — never a blend of pre- and post-update
state.

Publication is cheap because it rides the existing CSR machinery:
:class:`~repro.graph.csr.CSRGraph` instances are immutable and
``CSREngine.refresh`` swaps in a *new* snapshot object (stamped with the
source graph's version counter) rather than mutating the old one.  When the
dynamic engine runs a CSR-family backend, publishing a snapshot is two
reference grabs plus one defensive copy of the core dict; only the dict
backend pays a structure rebuild.

Snapshots are self-verifying: :func:`core_checksum` digests the core map at
construction time, and the concurrency tests recompute it from served
payloads to prove no torn read ever escaped the server.
"""

from __future__ import annotations

import zlib
from types import MappingProxyType
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    InvalidDistanceThresholdError,
    ParameterError,
    VertexNotFoundError,
)
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph

Vertex = Hashable


def core_checksum(cores: Mapping[Vertex, int]) -> int:
    """Order-independent CRC32 digest of a ``vertex -> core`` mapping.

    Computed once at publication and served alongside every full core map,
    so a client (or a test) can prove the payload it received is the exact
    epoch the header claims — recomputing the digest over the payload and
    comparing catches any torn read.
    """
    digest = 0
    for item in sorted((repr(v), k) for v, k in cores.items()):
        digest = zlib.crc32(repr(item).encode("utf-8"), digest)
    return digest


class CoreSnapshot:
    """One published epoch: core map + graph structure, frozen together.

    Parameters
    ----------
    generation:
        Monotonic epoch counter assigned by the publishing service.
    graph_version:
        ``Graph.version`` of the source graph at publication time.
    h:
        Distance threshold the resident engine maintains.
    cores:
        ``vertex -> core index`` at this epoch.  Copied once and exposed
        through a read-only mapping proxy — the snapshot never mutates it
        and neither can a caller.
    csr:
        Immutable CSR structure snapshot of the graph at this epoch.

    All query methods read only frozen state, so they are safe to call from
    any number of concurrent readers without locking.
    """

    __slots__ = (
        "generation",
        "graph_version",
        "h",
        "cores",
        "csr",
        "checksum",
        "_graph",
        "_cores_by_h",
    )

    def __init__(
        self,
        generation: int,
        graph_version: int,
        h: int,
        cores: Mapping[Vertex, int],
        csr: CSRGraph,
    ) -> None:
        self.generation = generation
        self.graph_version = graph_version
        self.h = h
        self.cores: Mapping[Vertex, int] = MappingProxyType(dict(cores))
        self.csr = csr
        self.checksum = core_checksum(self.cores)
        self._graph: Optional[Graph] = None
        self._cores_by_h: Dict[int, Mapping[Vertex, int]] = {h: self.cores}

    # ------------------------------------------------------------------ #
    # scalar summaries
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices at this epoch."""
        return self.csr.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges at this epoch."""
        return self.csr.num_edges

    @property
    def degeneracy(self) -> int:
        """The h-degeneracy at this epoch (largest non-empty core index)."""
        return max(self.cores.values(), default=0)

    # ------------------------------------------------------------------ #
    # point and core-membership queries
    # ------------------------------------------------------------------ #
    def core_number(self, v: Vertex) -> int:
        """Core index of ``v`` at this epoch (``VertexNotFoundError`` if absent)."""
        cores = self.cores
        if v not in cores:
            raise VertexNotFoundError(v)
        return cores[v]

    def core_items(self, h: Optional[int] = None) -> List[Tuple[Vertex, int]]:
        """The full core map as ``(vertex, core)`` pairs, deterministically sorted."""
        cores = self.cores_for(h)
        return sorted(cores.items(), key=lambda item: repr(item[0]))

    def core_members(self, k: int, h: Optional[int] = None) -> List[Vertex]:
        """Vertices of the (k,h)-core at this epoch, sorted by ``repr``."""
        if k < 0:
            raise ParameterError("the core index k must be >= 0")
        cores = self.cores_for(h)
        return sorted((v for v, c in cores.items() if c >= k), key=repr)

    def core_sizes(self, h: Optional[int] = None) -> Dict[int, int]:
        """``{k: |C_k|}`` for k = 0 .. degeneracy at this epoch."""
        cores = self.cores_for(h)
        degeneracy = max(cores.values(), default=0)
        sizes = {k: 0 for k in range(degeneracy + 1)}
        for c in cores.values():
            for k in range(0, c + 1):
                sizes[k] += 1
        return sizes

    def core_subgraph(
        self, k: int, h: Optional[int] = None
    ) -> Tuple[List[Vertex], List[Tuple[Vertex, Vertex]]]:
        """The (k,h)-core as ``(vertices, edges)`` in label space.

        Edges are extracted from the frozen CSR arrays (each undirected edge
        once), so the structure is guaranteed to belong to the same epoch as
        the membership — the property a live ``Graph`` reference cannot give
        under concurrent updates.
        """
        members = self.core_members(k, h)
        csr = self.csr
        indices = [csr.index(v) for v in members]
        edges = [(csr.labels[i], csr.labels[j]) for i, j in csr.induced_edges(indices)]
        return members, edges

    # ------------------------------------------------------------------ #
    # secondary thresholds and heavy analytics
    # ------------------------------------------------------------------ #
    def cores_for(self, h: Optional[int] = None) -> Mapping[Vertex, int]:
        """Core map for an arbitrary threshold ``h``, computed on this epoch.

        ``h is None`` (or the resident threshold) is a reference grab; other
        thresholds run a from-scratch decomposition *on the frozen
        structure* — a rare-analytics path, cached per snapshot so repeated
        queries at the same secondary threshold are free.
        """
        if h is None:
            return self.cores
        if not isinstance(h, int) or isinstance(h, bool) or h < 1:
            raise InvalidDistanceThresholdError(h)
        cached = self._cores_by_h.get(h)
        if cached is None:
            from repro.core.decomposition import core_decomposition

            result = core_decomposition(self.graph(), h)
            cached = MappingProxyType(dict(result.core_index))
            self._cores_by_h[h] = cached
        return cached

    def graph(self) -> Graph:
        """This epoch's structure as a standalone :class:`Graph` (cached).

        The reconstruction is private to the snapshot: mutating the returned
        graph cannot affect the service's live graph.  Used by the heavy
        analytics paths (secondary thresholds, spectra, community scoring).
        """
        graph = self._graph
        if graph is None:
            csr = self.csr
            graph = Graph(vertices=csr.labels)
            labels = csr.labels
            for i, j in csr.edges():
                graph.add_edge(labels[i], labels[j])
            self._graph = graph
        return graph

    def spectrum(self, v: Vertex, h_values: Sequence[int]) -> List[Tuple[int, int]]:
        """``(h, core_h(v))`` pairs across thresholds, all on this one epoch."""
        if v not in self.cores:
            raise VertexNotFoundError(v)
        return [(h, self.cores_for(h)[v]) for h in sorted(set(h_values))]

    def top_communities(
        self, k: Optional[int] = None, limit: int = 5
    ) -> List[Dict[str, object]]:
        """The largest connected communities inside the (k,h)-core.

        ``k`` defaults to the epoch's degeneracy (the innermost core).
        Communities are the connected components of the core, ranked by
        size (ties by smallest member ``repr``), each scored with its
        average h-degree — the mid-weight community query of the serving
        mix.
        """
        if limit <= 0:
            raise ParameterError("limit must be positive")
        if k is None:
            k = self.degeneracy
        members = self.core_members(k)
        csr = self.csr
        member_indices = {csr.index(v) for v in members}
        components: List[List[Vertex]] = []
        unvisited = set(member_indices)
        while unvisited:
            start = unvisited.pop()
            component = [start]
            stack = [start]
            while stack:
                i = stack.pop()
                for j in csr.neighbors(i):
                    if j in unvisited:
                        unvisited.discard(j)
                        component.append(j)
                        stack.append(j)
            components.append(sorted((csr.labels[i] for i in component), key=repr))

        from repro.applications.densest import average_h_degree

        graph = self.graph()
        ranked = sorted(components, key=lambda c: (-len(c), repr(c[0])))
        return [
            {
                "k": k,
                "size": len(component),
                "vertices": component,
                "avg_h_degree": average_h_degree(graph, set(component), self.h),
            }
            for component in ranked[:limit]
        ]

    def __repr__(self) -> str:
        return (
            f"CoreSnapshot(generation={self.generation}, h={self.h}, "
            f"|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"checksum={self.checksum:#010x})"
        )

"""The asyncio HTTP/JSON front end of the (k,h)-core query service.

A deliberately small, dependency-free HTTP/1.1 server over
``asyncio.start_server``: request parsing, routing, JSON encoding, error
mapping and keep-alive — nothing else.  Fault containment is a design goal:
malformed requests, unknown vertices, oversized bodies and clients that
vanish mid-request are all absorbed per-connection; the engine and every
other connection keep serving.

Endpoints (all responses carry ``generation`` / ``graph_version`` of the
epoch they were answered from):

=====================  ====================================================
``GET /healthz``        liveness + loaded-graph summary
``GET /stats``          request tallies + maintenance statistics
``GET /core_number``    point lookup (``v=``, optional ``k=`` / ``h=``)
``GET /cores``          full core map + epoch checksum (optional ``h=``)
``GET /core``           (k,h)-core membership (``k=``, optional ``h=``)
``GET /core_subgraph``  (k,h)-core vertices + edges (``k=``, optional ``h=``)
``GET /spectrum``       per-vertex core spectrum (``v=``, ``hs=1,2,3``)
``GET /top_communities``  largest core communities (``k=``, ``limit=``)
``POST /update``        apply ``{"updates": [["+", u, v], ...]}``
=====================  ====================================================
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Awaitable, Callable, Dict, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    EdgeNotFoundError,
    ReproError,
    ServiceOverloadedError,
    VertexNotFoundError,
)
from repro.serve.service import (
    CoreService,
    OversizedBatchError,
    _wire_vertex,
)

#: Default cap on request body size (bytes); larger uploads get a 413.
DEFAULT_MAX_BODY = 1_000_000

#: Seconds advertised in ``Retry-After`` on 408/503 responses.
RETRY_AFTER_SECONDS = 1

#: Default drain budget for graceful shutdown (seconds): in-flight requests
#: get this long to finish before their connections are cancelled.
DEFAULT_GRACE = 5.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HTTPError(Exception):
    """Internal: carry an HTTP status + message out of a handler."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _message(exc: Exception) -> str:
    # str(KeyError) wraps the message in quotes; the subclasses raised here
    # always carry a human-readable first argument.
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc) or exc.__class__.__name__


def _error_response(exc: Exception) -> Tuple[int, Dict[str, object]]:
    """Map an exception to a clean JSON error payload (never a traceback)."""
    if isinstance(exc, _HTTPError):
        status: int = exc.status
        message = exc.message
    elif isinstance(exc, OversizedBatchError):
        status, message = 413, _message(exc)
    elif isinstance(exc, ServiceOverloadedError):
        # Backpressure: shed with an explicit retry hint, before the
        # generic ReproError branch would misreport it as a client error.
        status, message = 503, _message(exc)
    elif isinstance(exc, VertexNotFoundError):
        status, message = 404, _message(exc)
    elif isinstance(exc, EdgeNotFoundError):
        status, message = 409, _message(exc)
    elif isinstance(exc, (ReproError, ValueError, KeyError, TypeError)):
        status, message = 400, _message(exc)
    else:
        status, message = 500, f"internal error: {exc.__class__.__name__}"
    return status, {"error": message, "status": status}


def _parse_param_value(raw: str) -> object:
    """Decode one query-string value: JSON first, raw string as fallback.

    ``v=3`` parses to the int 3, ``v=[0,1]`` to a list (mapped to a tuple
    label), ``v=alice`` stays a string.
    """
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _require(params: Dict[str, object], name: str) -> object:
    if name not in params:
        raise _HTTPError(400, f"missing required query parameter {name!r}")
    return params[name]


def _int_param(
    params: Dict[str, object], name: str, default: Optional[int] = None
) -> Optional[int]:
    if name not in params:
        return default
    value = params[name]
    if not isinstance(value, int) or isinstance(value, bool):
        raise _HTTPError(400, f"query parameter {name!r} must be an integer")
    return value


def _h_values_param(params: Dict[str, object]) -> Tuple[int, ...]:
    raw = params.get("hs", "1,2,3")
    if isinstance(raw, int):
        return (raw,)
    if not isinstance(raw, str):
        raise _HTTPError(400, "query parameter 'hs' must be like hs=1,2,3")
    try:
        values = tuple(int(part) for part in raw.split(",") if part)
    except ValueError:
        raise _HTTPError(400, "query parameter 'hs' must be like hs=1,2,3")
    if not values:
        raise _HTTPError(400, "query parameter 'hs' must name at least one h")
    return values


class CoreServer:
    """Bind a :class:`CoreService` to a TCP port and serve HTTP/JSON.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  The server is fully in-process (tests and benchmarks
    start it inside their own event loop) and a context manager is not
    needed: :meth:`start` / :meth:`aclose` bracket the lifetime.
    """

    def __init__(
        self,
        service: CoreService,
        host: str = "127.0.0.1",
        port: int = 8742,
        max_body: int = DEFAULT_MAX_BODY,
        request_deadline: Optional[float] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_body = max_body
        #: Per-request budget (seconds) covering both the read of one
        #: request (after its first line) and its handler.  ``None``
        #: disables deadlines (the historical behaviour).
        self.request_deadline = request_deadline
        self._server: Optional[asyncio.base_events.Server] = None
        # Connection tasks currently alive, tracked for graceful drain —
        # ``Server.wait_closed`` semantics vary across Python versions (and
        # would wait forever on idle keep-alive connections), so the server
        # tracks and drains its handlers itself.
        self._active: Set["asyncio.Task[None]"] = set()
        self._draining = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "CoreServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def drain(self, grace: float = DEFAULT_GRACE) -> int:
        """Graceful shutdown: stop accepting, let in-flight requests finish.

        New connections are refused immediately; connections mid-request
        get ``grace`` seconds to complete (their responses are sent with
        ``Connection: close``), after which stragglers — including idle
        keep-alive connections blocked waiting for a next request — are
        cancelled.  Returns the number of connections that were in flight
        when the drain began.
        """
        self._draining = True
        server, self._server = self._server, None
        if server is not None:
            server.close()
        active = set(self._active)
        drained = len(active)
        if active:
            _done, stragglers = await asyncio.wait(active, timeout=grace)
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        return drained

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._active.add(task)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, params, body, keep_alive = request
                if self._draining:
                    # A request that raced the shutdown still gets served,
                    # but the connection closes right after so the drain
                    # completes.
                    keep_alive = False
                status, payload = await self._dispatch(method, path, params, body)
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            # The client vanished mid-request or mid-response; nothing was
            # committed on its behalf and nobody else is affected.
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection mid-request; fall
            # through to the transport close below.
            pass
        finally:
            if task is not None:
                self._active.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[str, str, Dict[str, object], bytes, bool]]:
        """Parse one request; None on clean EOF/disconnect.

        Protocol-level garbage answers a 400 and closes; an oversized body
        answers a 413 and closes (the body is not drained).
        """
        request_line = await reader.readline()
        if not request_line:
            return None
        if self.request_deadline is None:
            return await self._read_request_rest(reader, writer, request_line)
        try:
            # The wait for the *first* line above is untimed — an idle
            # keep-alive connection is legitimate.  Once a request has
            # started arriving, the rest of its head and body must land
            # within the deadline or the slow client gets a 408.
            return await asyncio.wait_for(
                self._read_request_rest(reader, writer, request_line),
                timeout=self.request_deadline,
            )
        except asyncio.TimeoutError:
            self._write_response(
                writer,
                408,
                {
                    "error": f"request was not received within the "
                    f"{self.request_deadline:.3g}s deadline",
                    "status": 408,
                },
                False,
            )
            await writer.drain()
            return None

    async def _read_request_rest(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_line: bytes,
    ) -> Optional[Tuple[str, str, Dict[str, object], bytes, bool]]:
        """Parse headers and body once the request line has arrived."""
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            self._write_response(
                writer,
                400,
                {"error": "malformed request line", "status": 400},
                False,
            )
            await writer.drain()
            return None
        method, target = parts[0].upper(), parts[1]

        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()

        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0:
            self._write_response(
                writer,
                400,
                {"error": "invalid Content-Length", "status": 400},
                False,
            )
            await writer.drain()
            return None
        if length > self.max_body:
            self._write_response(
                writer,
                413,
                {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{self.max_body}-byte cap",
                    "status": 413,
                },
                False,
            )
            await writer.drain()
            return None
        body = await reader.readexactly(length) if length else b""

        split = urlsplit(target)
        params: Dict[str, object] = {
            name: _parse_param_value(values[0])
            for name, values in parse_qs(split.query).items()
        }
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return method, split.path, params, body, keep_alive

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        # Timeouts and shed load are retryable: tell well-behaved clients
        # when to come back instead of letting them hammer immediately.
        retry_after = (
            f"Retry-After: {RETRY_AFTER_SECONDS}\r\n"
            if status in (408, 503)
            else ""
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, method: str, path: str, params: Dict[str, object], body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        routes: Dict[
            Tuple[str, str],
            Callable[
                [Dict[str, object], bytes],
                Awaitable[Tuple[int, Dict[str, object]]],
            ],
        ] = {
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/stats"): self._get_stats,
            ("GET", "/core_number"): self._get_core_number,
            ("GET", "/cores"): self._get_cores,
            ("GET", "/core"): self._get_core,
            ("GET", "/core_subgraph"): self._get_core_subgraph,
            ("GET", "/spectrum"): self._get_spectrum,
            ("GET", "/top_communities"): self._get_top_communities,
            ("POST", "/update"): self._post_update,
        }
        handler = routes.get((method, path))
        if handler is None:
            if any(route_path == path for _, route_path in routes):
                return 405, {
                    "error": f"{method} is not supported on {path}",
                    "status": 405,
                }
            return 404, {"error": f"unknown path {path}", "status": 404}
        self.service.count_request(path.lstrip("/"))
        try:
            if self.request_deadline is not None:
                return await asyncio.wait_for(
                    self._run_handler(handler, params, body),
                    timeout=self.request_deadline,
                )
            return await self._run_handler(handler, params, body)
        except asyncio.TimeoutError:
            # The handler blew its budget (overload, or a pathological
            # query): shed this request with a retry hint; the engine and
            # every other connection keep serving.
            return 503, {
                "error": f"request exceeded the {self.request_deadline:.3g}s "
                f"deadline budget",
                "status": 503,
            }
        except Exception as exc:  # noqa: BLE001 — mapped to clean JSON
            return _error_response(exc)

    async def _run_handler(
        self,
        handler: Callable[
            [Dict[str, object], bytes],
            Awaitable[Tuple[int, Dict[str, object]]],
        ],
        params: Dict[str, object],
        body: bytes,
    ) -> Tuple[int, Dict[str, object]]:
        """Run one handler, with the ``serve.slow_client`` chaos site inside
        the deadline scope so tests can force deterministic 503s."""
        from repro.resilience.faults import active_plan

        plan = active_plan()
        if plan is not None and plan.should_fire("serve.slow_client"):
            await asyncio.sleep(plan.stall_seconds)
        return await handler(params, body)

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    async def _get_healthz(self, params, body):
        return 200, self.service.query_health()

    async def _get_stats(self, params, body):
        return 200, self.service.query_stats()

    async def _get_core_number(self, params, body):
        v = _wire_vertex(_require(params, "v"))
        k = _int_param(params, "k")
        h = _int_param(params, "h")
        if h is not None and h != self.service.snapshot.h:
            # First hit at a secondary threshold decomposes from scratch on
            # the frozen snapshot; keep that off the event loop.
            return 200, await self.service.run_heavy(
                self.service.query_core_number, v, k=k, h=h
            )
        return 200, self.service.query_core_number(v, k=k, h=h)

    async def _get_cores(self, params, body):
        h = _int_param(params, "h")
        if h is not None and h != self.service.snapshot.h:
            # Secondary-threshold maps are a heavy (from-scratch) path.
            return 200, await self.service.run_heavy(self.service.query_cores, h)
        return 200, self.service.query_cores(h)

    async def _get_core(self, params, body):
        k = _int_param(params, "k")
        if k is None:
            raise _HTTPError(400, "missing required query parameter 'k'")
        h = _int_param(params, "h")
        return 200, self.service.query_core_members(k, h=h)

    async def _get_core_subgraph(self, params, body):
        k = _int_param(params, "k")
        if k is None:
            raise _HTTPError(400, "missing required query parameter 'k'")
        h = _int_param(params, "h")
        return 200, await self.service.run_heavy(
            self.service.query_core_subgraph, k, h=h
        )

    async def _get_spectrum(self, params, body):
        v = _wire_vertex(_require(params, "v"))
        h_values = _h_values_param(params)
        return 200, await self.service.run_heavy(
            self.service.query_spectrum, v, h_values
        )

    async def _get_top_communities(self, params, body):
        k = _int_param(params, "k")
        limit = _int_param(params, "limit", 5)
        return 200, await self.service.run_heavy(
            self.service.query_top_communities, k=k, limit=limit
        )

    async def _post_update(self, params, body):
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            raise _HTTPError(400, "the update body is not valid JSON")
        updates = self.service.parse_updates(payload)
        return 200, await self.service.apply_updates(updates)


async def run_app(
    service: CoreService,
    host: str = "127.0.0.1",
    port: int = 8742,
    ready: Optional[Callable[[CoreServer], None]] = None,
    request_deadline: Optional[float] = None,
    install_signal_handlers: bool = False,
    grace: float = DEFAULT_GRACE,
) -> Optional[int]:
    """Start a server and serve until cancelled (the CLI entry point).

    ``ready`` is called with the started server (after the port is bound) —
    the CLI prints the URL there, tests grab the ephemeral port.

    With ``install_signal_handlers=True``, SIGTERM/SIGINT trigger a
    graceful shutdown instead of an abrupt loop teardown: the listener
    stops accepting, in-flight requests drain (``grace``-bounded), and one
    final epoch is published so the last-applied updates are durable in
    the snapshot before the process exits.  Returns the number of
    connections drained (None when shutdown was by cancellation).
    """
    server = CoreServer(service, host=host, port=port,
                        request_deadline=request_deadline)
    stop = asyncio.Event()
    installed = []
    if install_signal_handlers:
        # Installed BEFORE the port is announced: a supervisor reacting to
        # the ready line must never be able to SIGTERM us into the default
        # (abrupt) disposition.
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or platform without signal support: run
                # without graceful signal shutdown rather than failing.
                pass
    await server.start()
    if ready is not None:
        ready(server)
    try:
        if installed:
            serve_task = asyncio.ensure_future(server.serve_forever())
            stop_task = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait(
                    {serve_task, stop_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                for pending in (serve_task, stop_task):
                    pending.cancel()
                await asyncio.gather(serve_task, stop_task,
                                     return_exceptions=True)
            drained = await server.drain(grace)
            service.publish_final()
            return drained
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if installed:
            loop = asyncio.get_running_loop()
            for signum in installed:
                loop.remove_signal_handler(signum)
        await server.aclose()
    return None

"""`CoreService`: a resident dynamic engine behind an epoch-publication wall.

The service owns one warm :class:`~repro.dynamic.DynamicKHCore` engine and
enforces the concurrency discipline the HTTP layer relies on:

* **Single writer.**  All update batches are applied on one dedicated
  writer thread, serialized by an asyncio lock.  The dynamic engine is
  never touched from anywhere else after construction.
* **Copy-on-publish.**  After every committed batch the writer publishes a
  fresh :class:`~repro.serve.snapshot.CoreSnapshot` (defensive copy of the
  core map + the engine's immutable CSR structure snapshot) with a single
  attribute assignment — atomic under the GIL, so readers swap epochs
  wholesale and can never observe a half-applied batch.
* **Non-blocking reads.**  Readers only ever dereference
  :attr:`snapshot`; a long re-peel in the writer thread delays the *next*
  epoch, never an in-flight read, which keeps serving the previous one.

The query methods return JSON-ready dicts, each stamped with the epoch
(``generation`` / ``graph_version``) it was answered from.

A persistent core index (:mod:`repro.index`) can be attached with
``index_path=``: spectrum and off-h point queries are then served as pure
index reads instead of per-snapshot recomputes — but only while the live
graph still matches the graph the index was built from.  The first
accepted update batch moves the graph version past the attach point and
every later query falls back to snapshot computation (correctness first;
the HTTP service has no index-refresh path).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.dynamic.engine import DynamicKHCore
from repro.dynamic.stream import EdgeUpdate, normalize_op
from repro.errors import ParameterError, ServiceOverloadedError
from repro.graph.graph import Graph
from repro.serve.snapshot import CoreSnapshot

Vertex = Hashable

#: Default cap on the number of updates accepted in one ``POST /update``
#: batch; larger batches are rejected with :class:`OversizedBatchError`
#: (HTTP 413) before touching the engine.
DEFAULT_MAX_BATCH = 1024

#: Default cap on update batches queued behind the single writer thread;
#: batches past the cap are shed with :class:`~repro.errors.
#: ServiceOverloadedError` (HTTP 503 + ``Retry-After``) instead of growing
#: an unbounded queue under sustained overload.
DEFAULT_MAX_PENDING = 64


class OversizedBatchError(ParameterError):
    """An update batch exceeded the service's configured size cap."""

    def __init__(self, size: int, max_batch: int) -> None:
        super().__init__(
            f"update batch of {size} exceeds the service cap of "
            f"{max_batch} updates"
        )
        self.size = size
        self.max_batch = max_batch


def _wire_vertex(value: object) -> Vertex:
    """Map a JSON-decoded vertex back to its graph label.

    JSON has no tuples, so tuple labels (and only tuples) arrive as lists;
    everything else (ints, strings) round-trips unchanged.
    """
    if isinstance(value, list):
        return tuple(_wire_vertex(item) for item in value)
    return value


class CoreService:
    """One loaded graph, one resident engine, one published epoch at a time.

    Parameters
    ----------
    graph:
        Initial graph (owned by the service's engine from here on).
    h:
        Distance threshold the resident engine maintains.
    backend / relabel / storage / algorithm / fallback_ratio / executor /
    num_workers:
        Forwarded to :class:`~repro.dynamic.DynamicKHCore`.
    max_batch:
        Upper bound on updates per batch (see :data:`DEFAULT_MAX_BATCH`).
    name:
        Display name of the loaded graph (for ``/healthz`` and logs).
    index_path:
        Optional persistent core index to serve spectrum / off-h point
        queries from.  Validated at attach time: the index's stored graph
        checksum must match ``graph`` (:class:`~repro.errors.IndexMismatchError`
        otherwise), so a stale or wrong-graph index can never answer.
    max_pending:
        Backpressure cap on update batches queued behind the writer thread;
        batches past the cap are shed with
        :class:`~repro.errors.ServiceOverloadedError` (HTTP 503).
    repeel_budget:
        Writer watchdog budget in seconds.  When an *incremental* re-peel
        exceeds it, the engine is pinned to full recomputes
        (``fallback_ratio = 0``) so one pathological cascade cannot stall
        every later batch behind the same slow path.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        h: int = 2,
        backend: str = "auto",
        relabel: Optional[str] = None,
        storage: str = "auto",
        algorithm: str = "auto",
        fallback_ratio: Optional[float] = None,
        executor: str = "thread",
        num_workers: Optional[int] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        name: str = "graph",
        index_path: Optional[str] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        repeel_budget: Optional[float] = None,
    ) -> None:
        if max_batch < 1:
            raise ParameterError("max_batch must be >= 1")
        if max_pending < 1:
            raise ParameterError("max_pending must be >= 1")
        if repeel_budget is not None and repeel_budget <= 0:
            raise ParameterError("repeel_budget must be positive")
        engine_kwargs: Dict[str, object] = {}
        if fallback_ratio is not None:
            engine_kwargs["fallback_ratio"] = fallback_ratio
        self.engine = DynamicKHCore(
            graph,
            h=h,
            backend=backend,
            relabel=relabel,
            storage=storage,
            algorithm=algorithm,
            executor=executor,
            num_workers=num_workers,
            **engine_kwargs,
        )
        self.name = name
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.repeel_budget = repeel_budget
        #: Update batches admitted but not yet committed (event-loop thread
        #: only); the gauge behind the :attr:`max_pending` backpressure cap.
        self._pending = 0
        self.shed_requests = 0
        self.watchdog_trips = 0
        self.request_counts: Dict[str, int] = {}
        self._generation = 0
        self._write_lock: Optional[asyncio.Lock] = None
        #: The writer thread: every engine mutation after construction runs
        #: here, so the (thread-unsafe) engine has exactly one mutator.
        self._writer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="kh-serve-writer"
        )
        #: Readers only used for heavy analytics queries, which operate on
        #: immutable snapshots and are therefore lock-free.
        self._readers = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="kh-serve-reader"
        )
        self._publish_mutex = threading.Lock()
        self._snapshot = self._publish()
        self._index = None
        self._index_graph_version: Optional[int] = None
        self.index_hits = 0
        self.index_misses = 0
        if index_path is not None:
            # Deferred import: the sqlite index stack is only pulled in
            # when a service actually attaches one.
            from repro.errors import IndexMismatchError
            from repro.index.query import CoreIndexReader

            reader = CoreIndexReader(index_path)
            if not reader.matches_graph(self.engine.graph):
                reader.close()
                raise IndexMismatchError(
                    f"index {index_path!r} was built from a different graph "
                    f"than the one being served; rebuild it with "
                    f"'kh-core index build'"
                )
            self._index = reader
            self._index_graph_version = self.engine.graph.version
        self.closed = False

    # ------------------------------------------------------------------ #
    # epoch publication
    # ------------------------------------------------------------------ #
    @property
    def snapshot(self) -> CoreSnapshot:
        """The currently published epoch (an immutable object).

        Grab it **once** per request and answer everything from that
        reference; re-reading the property mid-request could cross an epoch
        boundary.
        """
        return self._snapshot

    def _publish(self) -> CoreSnapshot:
        """Build and atomically install a fresh epoch from the engine state.

        Runs on the writer thread (or at construction).  The core map is a
        defensive copy (:meth:`DynamicKHCore.core_numbers` guarantees it)
        and the structure is the engine's immutable CSR snapshot, so the
        published object shares no mutable state with the engine.
        """
        with self._publish_mutex:
            self._generation += 1
            snapshot = CoreSnapshot(
                self._generation,
                self.engine.graph.version,
                self.engine.h,
                self.engine.core_numbers(),
                self.engine.csr_snapshot(),
            )
            self._snapshot = snapshot
        return snapshot

    # ------------------------------------------------------------------ #
    # updates (single writer)
    # ------------------------------------------------------------------ #
    def parse_updates(self, payload: object) -> List[Tuple[str, Vertex, Vertex]]:
        """Validate a decoded ``POST /update`` body into ``(op, u, v)`` triples.

        Accepts ``{"updates": [[op, u, v], ...]}`` or a bare list of
        triples; op spellings are the ones
        :func:`repro.dynamic.stream.normalize_op` accepts.  Raises
        :class:`~repro.errors.ParameterError` on malformed payloads and
        :class:`OversizedBatchError` past the batch cap — both *before* the
        engine sees anything.
        """
        if isinstance(payload, dict):
            payload = payload.get("updates")
        if not isinstance(payload, list):
            raise ParameterError(
                "the update body must be {'updates': [[op, u, v], ...]}"
            )
        if len(payload) > self.max_batch:
            raise OversizedBatchError(len(payload), self.max_batch)
        updates: List[Tuple[str, Vertex, Vertex]] = []
        for entry in payload:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ParameterError(f"each update must be [op, u, v]; got {entry!r}")
            op, u, v = entry
            updates.append((normalize_op(op), _wire_vertex(u), _wire_vertex(v)))
        return updates

    def apply_updates_sync(
        self, updates: Sequence[Tuple[str, Vertex, Vertex]]
    ) -> Dict[str, object]:
        """Apply one batch and publish the next epoch (writer thread only)."""
        started = time.monotonic()
        summary = self.engine.apply_batch(
            [EdgeUpdate(op, u, v) for op, u, v in updates]
        )
        elapsed = time.monotonic() - started
        if (
            self.repeel_budget is not None
            and summary.mode == "incremental"
            and elapsed > self.repeel_budget
            and self.engine.fallback_ratio != 0.0
        ):
            # Watchdog: an incremental re-peel blew its budget, so the
            # cascade heuristic is mispriced for this workload.  Pin the
            # engine to full recomputes — bounded, predictable cost —
            # instead of letting the next batch stall the writer again.
            self.engine.fallback_ratio = 0.0
            self.watchdog_trips += 1
        snapshot = self._publish()
        return {
            "mode": summary.mode,
            "applied": summary.applied,
            "skipped": summary.skipped,
            "cores_changed": summary.cores_changed,
            "generation": snapshot.generation,
            "graph_version": snapshot.graph_version,
        }

    async def apply_updates(
        self, updates: Sequence[Tuple[str, Vertex, Vertex]]
    ) -> Dict[str, object]:
        """Serialize a batch onto the writer thread; resolves when published.

        Applies backpressure first: with :attr:`max_pending` batches already
        admitted and waiting on the writer, the batch is shed with
        :class:`~repro.errors.ServiceOverloadedError` (HTTP 503 +
        ``Retry-After``) before any engine state is touched, so overload
        degrades into fast rejections instead of an unbounded queue.
        """
        if self._pending >= self.max_pending:
            self.shed_requests += 1
            raise ServiceOverloadedError(
                f"{self._pending} update batches already pending "
                f"(cap {self.max_pending}); retry later"
            )
        if self._write_lock is None:
            self._write_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        self._pending += 1
        try:
            async with self._write_lock:
                return await loop.run_in_executor(
                    self._writer, self.apply_updates_sync, updates
                )
        finally:
            self._pending -= 1

    # ------------------------------------------------------------------ #
    # queries (each reads exactly one snapshot)
    # ------------------------------------------------------------------ #
    def _index_for(self, snapshot: CoreSnapshot):
        """The attached index reader, iff it is still exact for ``snapshot``.

        Freshness is a version check, not a recheck of the checksum: the
        reader was validated against the graph at attach time, so any
        snapshot still carrying the attach-time graph version describes the
        indexed graph verbatim.  The first accepted update invalidates the
        index for good (tallied in :attr:`index_misses`).
        """
        if (self._index is not None
                and snapshot.graph_version == self._index_graph_version):
            return self._index
        if self._index is not None:
            self.index_misses += 1
        return None

    def _stamp(
        self, snapshot: CoreSnapshot, payload: Dict[str, object]
    ) -> Dict[str, object]:
        payload["generation"] = snapshot.generation
        payload["graph_version"] = snapshot.graph_version
        return payload

    def query_health(self) -> Dict[str, object]:
        snapshot = self.snapshot
        return self._stamp(
            snapshot,
            {
                "status": "ok",
                "graph": self.name,
                "h": snapshot.h,
                "vertices": snapshot.num_vertices,
                "edges": snapshot.num_edges,
                "degeneracy": snapshot.degeneracy,
            },
        )

    def query_stats(self) -> Dict[str, object]:
        snapshot = self.snapshot
        stats = self.engine.stats
        index_stats: Optional[Dict[str, object]] = None
        if self._index is not None:
            index_stats = {
                "path": self._index.path,
                "h_values": list(self._index.h_values),
                "fresh": snapshot.graph_version == self._index_graph_version,
                "hits": self.index_hits,
                "misses": self.index_misses,
            }
        return self._stamp(
            snapshot,
            {
                "graph": self.name,
                "h": snapshot.h,
                "backend": self.engine.backend,
                "requests": dict(self.request_counts),
                "index": index_stats,
                "maintenance": {
                    "updates_applied": stats.updates_applied,
                    "batches": stats.batches,
                    "incremental_repeels": stats.incremental_repeels,
                    "full_recomputes": stats.full_recomputes,
                    "cores_changed": stats.cores_changed,
                    "peak_universe_size": stats.peak_universe_size,
                },
                "resilience": {
                    "pending_updates": self._pending,
                    "max_pending": self.max_pending,
                    "shed_requests": self.shed_requests,
                    "watchdog_trips": self.watchdog_trips,
                    "repeel_budget": self.repeel_budget,
                },
            },
        )

    def query_core_number(
        self, v: Vertex, k: Optional[int] = None, h: Optional[int] = None
    ) -> Dict[str, object]:
        """Point lookup: the core index of ``v`` (optionally membership in k)."""
        snapshot = self.snapshot
        core: Optional[int] = None
        if h is not None and h != snapshot.h:
            # Off-h lookups otherwise cost a full decomposition at that
            # threshold (cached per snapshot); a fresh index answers them
            # with one primary-key probe.
            index = self._index_for(snapshot)
            if index is not None and h in index.h_values:
                core = index.core_number(v, h)  # raises VertexNotFoundError
                self.index_hits += 1
        if core is None:
            core = snapshot.cores_for(h).get(v)
        if core is None:
            core = snapshot.core_number(v)  # raises VertexNotFoundError
        payload: Dict[str, object] = {
            "v": v,
            "h": snapshot.h if h is None else h,
            "core": core,
        }
        if k is not None:
            payload["k"] = k
            payload["in_core"] = core >= k
        return self._stamp(snapshot, payload)

    def query_cores(self, h: Optional[int] = None) -> Dict[str, object]:
        """The full core map of one epoch, with its published checksum."""
        snapshot = self.snapshot
        payload: Dict[str, object] = {
            "h": snapshot.h if h is None else h,
            "cores": [[v, c] for v, c in snapshot.core_items(h)],
        }
        if h is None or h == snapshot.h:
            payload["checksum"] = snapshot.checksum
        return self._stamp(snapshot, payload)

    def query_core_members(self, k: int, h: Optional[int] = None) -> Dict[str, object]:
        snapshot = self.snapshot
        members = snapshot.core_members(k, h)
        return self._stamp(
            snapshot,
            {
                "k": k,
                "h": snapshot.h if h is None else h,
                "size": len(members),
                "vertices": members,
            },
        )

    def query_core_subgraph(self, k: int, h: Optional[int] = None) -> Dict[str, object]:
        snapshot = self.snapshot
        vertices, edges = snapshot.core_subgraph(k, h)
        return self._stamp(
            snapshot,
            {
                "k": k,
                "h": snapshot.h if h is None else h,
                "vertices": vertices,
                "edges": [[u, v] for u, v in edges],
            },
        )

    def query_spectrum(self, v: Vertex, h_values: Sequence[int]) -> Dict[str, object]:
        snapshot = self.snapshot
        index = self._index_for(snapshot)
        if index is not None and all(h in index.h_values for h in h_values):
            persisted = dict(index.spectrum(v))  # raises VertexNotFoundError
            self.index_hits += 1
            return self._stamp(
                snapshot,
                {
                    "v": v,
                    "spectrum": [[h, persisted[h]] for h in h_values],
                },
            )
        return self._stamp(
            snapshot,
            {
                "v": v,
                "spectrum": [[h, c] for h, c in snapshot.spectrum(v, h_values)],
            },
        )

    def query_top_communities(
        self, k: Optional[int] = None, limit: int = 5
    ) -> Dict[str, object]:
        snapshot = self.snapshot
        communities = snapshot.top_communities(k=k, limit=limit)
        return self._stamp(snapshot, {"communities": communities})

    async def run_heavy(self, fn, *args, **kwargs):
        """Run a heavy snapshot-only query off the event loop.

        Heavy analytics (spectra, community scoring, secondary thresholds)
        are pure functions of immutable snapshots, so they can run on the
        reader pool without locks — keeping point lookups on the loop
        latency-flat while an analytics query grinds.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._readers, lambda: fn(*args, **kwargs))

    def count_request(self, kind: str) -> None:
        """Tally one served request (event-loop thread only)."""
        self.request_counts[kind] = self.request_counts.get(kind, 0) + 1

    def publish_final(self) -> CoreSnapshot:
        """Publish one last epoch during graceful shutdown.

        Routed through the writer executor so it serializes behind any
        batch still committing when the drain started — the final published
        epoch therefore reflects every update the service acknowledged.
        No-op (returns the current epoch) once the service is closed.
        """
        if self.closed:
            return self._snapshot
        return self._writer.submit(self._publish).result()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the writer/reader pools and the engine; idempotent."""
        if self.closed:
            return
        self.closed = True
        self._writer.shutdown(wait=True)
        self._readers.shutdown(wait=True)
        if self._index is not None:
            self._index.close()
        self.engine.close()

    def __enter__(self) -> "CoreService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        snapshot = self.snapshot
        return (
            f"CoreService(graph={self.name!r}, h={snapshot.h}, "
            f"generation={snapshot.generation}, "
            f"|V|={snapshot.num_vertices}, |E|={snapshot.num_edges})"
        )

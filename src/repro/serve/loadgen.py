"""Concurrent-client load generator for the (k,h)-core query service.

Drives a running server with an LDBC-style request mix — the workload shape
the SIGMOD 2014 programming-contest analysis characterizes for social-graph
serving: a large majority of short point lookups, a mid-size share of
community/neighborhood queries, rare heavy analytics, and a trickle of
writes.  Default weights:

==================  ======  ==========================================
point lookups        70 %    ``GET /core_number`` (random vertex)
community queries    20 %    ``GET /core`` / ``GET /top_communities``
heavy analytics       2 %    ``GET /spectrum`` / full ``GET /cores``
updates               8 %    ``POST /update`` (insert, later delete)
==================  ======  ==========================================

Every request's wall-clock latency is recorded per class; the summary
reports p50/p99/mean/max and throughput, which is what
``benchmarks/test_serve_latency.py`` turns into the ``BENCH_PR6.json``
artifact.  Also runnable standalone against any server::

    python -m repro.serve.loadgen --port 8742 --clients 4 --requests 200
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from dataclasses import dataclass
from urllib.parse import quote
from typing import Dict, List, Optional, Sequence, Tuple


class LoadgenError(Exception):
    """The load generator could not complete its run."""


class AsyncHTTPClient:
    """A minimal keep-alive HTTP/1.1 JSON client over one TCP connection."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncHTTPClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Tuple[int, Dict[str, object]]:
        """Send one request and decode the JSON response."""
        if self._writer is None or self._reader is None:
            await self.connect()
        assert self._writer is not None and self._reader is not None
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise LoadgenError("server closed the connection")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise LoadgenError(f"malformed status line {status_line!r}")
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw.decode("utf-8"))


@dataclass(frozen=True)
class RequestMix:
    """Workload weights (need not sum to 1; sampled proportionally)."""

    point: float = 0.70
    community: float = 0.20
    analytics: float = 0.02
    update: float = 0.08

    def classes(self) -> List[Tuple[str, float]]:
        return [
            ("point", self.point),
            ("community", self.community),
            ("analytics", self.analytics),
            ("update", self.update),
        ]


#: The LDBC-style default mix (see the module docstring).
DEFAULT_MIX = RequestMix()

#: A read-only variant for latency runs that must not mutate the graph.
READ_ONLY_MIX = RequestMix(point=0.75, community=0.22, analytics=0.03, update=0.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _pick_class(rng: random.Random, mix: RequestMix) -> str:
    classes = [(name, weight) for name, weight in mix.classes() if weight > 0]
    total = sum(weight for _, weight in classes)
    roll = rng.random() * total
    for name, weight in classes:
        roll -= weight
        if roll <= 0:
            return name
    return classes[-1][0]


class _Recorder:
    """Shared per-run sink: latencies per class, errors, generations seen."""

    def __init__(self) -> None:
        self.latencies: Dict[str, List[float]] = {}
        self.errors: List[str] = []
        self.generations: List[int] = []

    def record(self, kind: str, seconds: float, payload: Dict[str, object]) -> None:
        self.latencies.setdefault(kind, []).append(seconds)
        generation = payload.get("generation")
        if isinstance(generation, int):
            self.generations.append(generation)


async def _client_worker(
    host: str,
    port: int,
    requests: int,
    mix: RequestMix,
    rng: random.Random,
    vertices: List[object],
    degeneracy: int,
    recorder: _Recorder,
) -> None:
    client = await AsyncHTTPClient(host, port).connect()
    inserted: List[Tuple[object, object]] = []
    try:
        for _ in range(requests):
            kind = _pick_class(rng, mix)
            method, path, body = "GET", "/healthz", None
            if kind == "point":
                v = rng.choice(vertices)
                path = f"/core_number?v={quote(json.dumps(v))}"
            elif kind == "community":
                if rng.random() < 0.5:
                    k = rng.randint(0, max(degeneracy, 0))
                    path = f"/core?k={k}"
                else:
                    path = "/top_communities?limit=3"
            elif kind == "analytics":
                if rng.random() < 0.5:
                    v = rng.choice(vertices)
                    path = f"/spectrum?v={quote(json.dumps(v))}&hs=1,2"
                else:
                    path = "/cores"
            else:  # update
                method, path = "POST", "/update"
                if inserted and rng.random() < 0.4:
                    u, v = inserted.pop()
                    body = {"updates": [["-", u, v]]}
                else:
                    u, v = rng.sample(vertices, 2)
                    body = {"updates": [["+", u, v]]}
                    inserted.append((u, v))
            started = time.perf_counter()
            status, payload = await client.request(method, path, body)
            elapsed = time.perf_counter() - started
            if status == 200:
                recorder.record(kind, elapsed, payload)
            elif kind == "update" and status == 409:
                # The edge this client re-deletes may have been removed by
                # a concurrent writer; a clean conflict is correct behavior.
                recorder.record(kind, elapsed, payload)
            else:
                recorder.errors.append(
                    f"{method} {path} -> {status}: {payload.get('error')}"
                )
    finally:
        await client.close()


def _summary(recorder: _Recorder, clients: int, elapsed: float) -> Dict[str, object]:
    all_latencies = [
        value for values in recorder.latencies.values() for value in values
    ]

    def stats(values: Sequence[float]) -> Dict[str, float]:
        return {
            "count": len(values),
            "p50_ms": percentile(values, 50) * 1000.0,
            "p99_ms": percentile(values, 99) * 1000.0,
            "mean_ms": (sum(values) / len(values) * 1000.0) if values else 0.0,
            "max_ms": (max(values) * 1000.0) if values else 0.0,
        }

    return {
        "clients": clients,
        "requests": len(all_latencies),
        "elapsed_s": elapsed,
        "throughput_rps": len(all_latencies) / elapsed if elapsed else 0.0,
        "errors": len(recorder.errors),
        "error_samples": recorder.errors[:5],
        "latency": {
            "overall": stats(all_latencies),
            **{
                kind: stats(values)
                for kind, values in sorted(recorder.latencies.items())
            },
        },
        "generations": {
            "min": min(recorder.generations, default=0),
            "max": max(recorder.generations, default=0),
        },
    }


async def run_load_async(
    host: str,
    port: int,
    clients: int = 4,
    requests_per_client: int = 100,
    mix: RequestMix = DEFAULT_MIX,
    seed: int = 0,
) -> Dict[str, object]:
    """Run the LDBC-style mix with ``clients`` concurrent connections.

    Discovers the vertex universe from one ``GET /cores`` probe, fans out
    the client coroutines, and returns the latency/throughput summary.
    """
    probe = await AsyncHTTPClient(host, port).connect()
    try:
        status, payload = await probe.request("GET", "/cores")
        if status != 200:
            raise LoadgenError(f"probe GET /cores failed with {status}")
        cores = payload.get("cores")
        if not isinstance(cores, list) or not cores:
            raise LoadgenError("the server is serving an empty graph")
        vertices = [entry[0] for entry in cores]
        degeneracy = max(entry[1] for entry in cores)
    finally:
        await probe.close()

    recorder = _Recorder()
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_worker(
                host,
                port,
                requests_per_client,
                mix,
                random.Random(seed * 8191 + index),
                vertices,
                degeneracy,
                recorder,
            )
            for index in range(clients)
        )
    )
    elapsed = time.perf_counter() - started
    return _summary(recorder, clients, elapsed)


def run_load(
    host: str,
    port: int,
    clients: int = 4,
    requests_per_client: int = 100,
    mix: RequestMix = DEFAULT_MIX,
    seed: int = 0,
) -> Dict[str, object]:
    """Synchronous wrapper around :func:`run_load_async` (own event loop)."""
    return asyncio.run(
        run_load_async(
            host,
            port,
            clients=clients,
            requests_per_client=requests_per_client,
            mix=mix,
            seed=seed,
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.serve.loadgen``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="LDBC-style load generator for the kh-core query "
        "service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        help="requests per client (default: 100)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--read-only", action="store_true", help="drop updates from the mix"
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="exit non-zero if the overall p99 exceeds this bound (CI smoke)",
    )
    args = parser.parse_args(argv)

    mix = READ_ONLY_MIX if args.read_only else DEFAULT_MIX
    try:
        summary = run_load(
            args.host,
            args.port,
            clients=args.clients,
            requests_per_client=args.requests,
            mix=mix,
            seed=args.seed,
        )
    except (LoadgenError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(json.dumps(summary, indent=2, sort_keys=True, default=str))
    if summary["errors"]:
        print(f"error: {summary['errors']} failed requests", file=sys.stderr)
        return 1
    if args.max_p99_ms is not None:
        p99 = summary["latency"]["overall"]["p99_ms"]  # type: ignore[index]
        if p99 > args.max_p99_ms:
            print(
                f"error: overall p99 {p99:.1f}ms exceeds the "
                f"{args.max_p99_ms:.1f}ms bound",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

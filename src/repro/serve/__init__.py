"""Async (k,h)-core query service over a resident dynamic engine.

The compute stack below this package is batch-oriented: build a graph, run a
decomposition, read the result.  :mod:`repro.serve` turns it into an online
system — one warm :class:`~repro.dynamic.DynamicKHCore` engine per loaded
graph, an asyncio HTTP/JSON front end, and an epoch-publication discipline
that lets concurrent readers observe consistent decompositions while edge
updates stream in:

* :class:`~repro.serve.snapshot.CoreSnapshot` — an immutable, checksummed
  epoch of the decomposition (core map + CSR structure snapshot).
* :class:`~repro.serve.service.CoreService` — owns the dynamic engine and a
  single writer thread; every committed update batch publishes a fresh
  snapshot with one atomic reference swap, so reads never block behind a
  re-peel and never see a torn core map.
* :mod:`repro.serve.app` — the asyncio HTTP server (``kh-core serve``).
* :mod:`repro.serve.loadgen` — a concurrent-client load generator with an
  LDBC-style request mix, used by the latency benchmark and the CI smoke.
"""

from repro.serve.snapshot import CoreSnapshot, core_checksum
from repro.serve.service import (
    DEFAULT_MAX_BATCH,
    CoreService,
    OversizedBatchError,
)
from repro.serve.app import CoreServer, run_app

__all__ = [
    "CoreSnapshot",
    "core_checksum",
    "CoreService",
    "CoreServer",
    "OversizedBatchError",
    "DEFAULT_MAX_BATCH",
    "run_app",
]

"""Read-only graph views: induced subgraphs and frozen CSR snapshots.

A :class:`SubgraphView` restricts a base :class:`~repro.graph.graph.Graph` to
a set of "alive" vertices without copying adjacency.  The peeling algorithms
use the cheaper idiom of passing an ``alive`` set straight to the traversal
primitives, but the view is the convenient public-facing object when a caller
wants to treat a core as a graph (e.g. ``decomposition.core_subgraph(k)``).

A :class:`FrozenGraphView` goes the other direction: it adapts an existing
:class:`~repro.graph.csr.CSRGraph` snapshot — typically a stream-loaded,
mmap-backed one — to the read-only slice of the :class:`Graph` API the
decomposition entry points touch, *without* expanding it into dict-of-sets
adjacency.  This is what lets ``core_decomposition`` run directly on an
out-of-core snapshot whose dict representation would not fit in RAM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Set

from repro.errors import VertexNotFoundError
from repro.graph.graph import Edge, Graph, Vertex

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph


class SubgraphView:
    """A lightweight, read-only view of ``graph`` induced by ``vertices``.

    The view shares the base graph's adjacency; it filters neighbors on the
    fly.  Mutating the base graph after creating the view is allowed but the
    view then reflects the new structure.

    Example
    -------
    >>> g = Graph([(1, 2), (2, 3), (3, 4)])
    >>> view = SubgraphView(g, {1, 2, 3})
    >>> sorted(view.neighbors(3))
    [2]
    """

    __slots__ = ("_graph", "_alive")

    def __init__(self, graph: Graph, vertices: Iterable[Vertex]) -> None:
        self._graph = graph
        self._alive: Set[Vertex] = {v for v in vertices if v in graph}

    @property
    def base_graph(self) -> Graph:
        """The underlying full graph."""
        return self._graph

    @property
    def vertex_set(self) -> Set[Vertex]:
        """The alive vertex set (do not mutate)."""
        return self._alive

    def __contains__(self, v: Vertex) -> bool:
        return v in self._alive

    def __len__(self) -> int:
        return len(self._alive)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._alive)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the alive vertices."""
        return iter(self._alive)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if both endpoints are alive and the edge exists."""
        return u in self._alive and v in self._alive and self._graph.has_edge(u, v)

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return the alive neighbors of ``v``."""
        if v not in self._alive:
            raise VertexNotFoundError(v)
        return self._graph.neighbors(v) & self._alive

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v`` within the view."""
        return len(self.neighbors(v))

    def edges(self) -> Iterator[Edge]:
        """Iterate over each induced edge exactly once."""
        seen: Set[Vertex] = set()
        for u in self._alive:
            for v in self._graph.neighbors(u):
                if v in self._alive and v not in seen:
                    yield (u, v)
            seen.add(u)

    @property
    def num_vertices(self) -> int:
        """Number of alive vertices."""
        return len(self._alive)

    @property
    def num_edges(self) -> int:
        """Number of induced edges."""
        return sum(1 for _ in self.edges())

    def materialize(self) -> Graph:
        """Copy the view into a standalone :class:`Graph`."""
        return self._graph.subgraph(self._alive)

    def __repr__(self) -> str:
        return f"SubgraphView(|V|={self.num_vertices} of {self._graph.num_vertices})"


class FrozenGraphView:
    """Read-only :class:`Graph`-API adapter over a :class:`CSRGraph` snapshot.

    Pass one of these wherever the decomposition entry points expect a
    graph (``core_decomposition(FrozenGraphView(csr), h=2)``) and the CSR
    family of engines reuses the embedded snapshot as-is — no dict graph is
    ever built, which is the whole point for mmap-backed snapshots larger
    than RAM.  The dict reference engine also runs against the view
    (neighbors are materialized per call), which is how the cross-engine
    equivalence tests cover the out-of-core path.

    The view is immutable by construction — there is no mutation API and
    :attr:`version` is pinned to the snapshot — so engines built on it can
    never go stale.

    Example
    -------
    >>> from repro.graph import Graph
    >>> from repro.graph.csr import CSRGraph
    >>> view = FrozenGraphView(CSRGraph.from_graph(Graph([(1, 2), (2, 3)])))
    >>> view.num_vertices, sorted(view.neighbors(2))
    (3, [1, 3])
    """

    __slots__ = ("csr",)

    def __init__(self, csr: "CSRGraph") -> None:
        #: The wrapped immutable snapshot (any storage tier).
        self.csr = csr

    @property
    def version(self) -> int:
        """Snapshot version stamp (constant: the view is immutable)."""
        source = self.csr.source_version
        return source if source is not None else 0

    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""
        return self.csr.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self.csr.num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate vertex labels in index order."""
        return iter(self.csr.labels)

    def __contains__(self, v: Vertex) -> bool:
        try:
            return v in self.csr.index_of
        except TypeError:
            return False

    def __len__(self) -> int:
        return self.csr.num_vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.csr.labels)

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Neighbor labels of ``v`` (materialized per call)."""
        return self.csr.neighbors_of_label(v)

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``."""
        return self.csr.degree(self.csr.index(v))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True when the snapshot contains edge ``{u, v}``."""
        csr = self.csr
        try:
            i, j = csr.index(u), csr.index(v)
        except VertexNotFoundError:
            return False
        return j in csr.neighbors(i)

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once, as a label pair."""
        labels = self.csr.labels
        for i, j in self.csr.edges():
            yield (labels[i], labels[j])

    def subgraph(self, vertices: Iterable[Vertex]) -> Graph:
        """Materialize the induced subgraph as a standalone dict Graph."""
        csr = self.csr
        indices = sorted(csr.index(v) for v in vertices)
        labels = csr.labels
        graph = Graph(vertices=(labels[i] for i in indices))
        for i, j in csr.induced_edges(indices):
            graph.add_edge(labels[i], labels[j])
        return graph

    def degree_histogram(self) -> List[int]:
        """Degree counts indexed by degree (mirrors ``Graph``)."""
        counts: List[int] = []
        for i in range(self.csr.num_vertices):
            d = self.csr.degree(i)
            while len(counts) <= d:
                counts.append(0)
            counts[d] += 1
        return counts

    def __repr__(self) -> str:
        return (f"FrozenGraphView(|V|={self.num_vertices}, "
                f"|E|={self.num_edges}, storage={self.csr.storage_kind!r})")

"""Read-only induced-subgraph views.

A :class:`SubgraphView` restricts a base :class:`~repro.graph.graph.Graph` to
a set of "alive" vertices without copying adjacency.  The peeling algorithms
use the cheaper idiom of passing an ``alive`` set straight to the traversal
primitives, but the view is the convenient public-facing object when a caller
wants to treat a core as a graph (e.g. ``decomposition.core_subgraph(k)``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set

from repro.errors import VertexNotFoundError
from repro.graph.graph import Edge, Graph, Vertex


class SubgraphView:
    """A lightweight, read-only view of ``graph`` induced by ``vertices``.

    The view shares the base graph's adjacency; it filters neighbors on the
    fly.  Mutating the base graph after creating the view is allowed but the
    view then reflects the new structure.

    Example
    -------
    >>> g = Graph([(1, 2), (2, 3), (3, 4)])
    >>> view = SubgraphView(g, {1, 2, 3})
    >>> sorted(view.neighbors(3))
    [2]
    """

    __slots__ = ("_graph", "_alive")

    def __init__(self, graph: Graph, vertices: Iterable[Vertex]) -> None:
        self._graph = graph
        self._alive: Set[Vertex] = {v for v in vertices if v in graph}

    @property
    def base_graph(self) -> Graph:
        """The underlying full graph."""
        return self._graph

    @property
    def vertex_set(self) -> Set[Vertex]:
        """The alive vertex set (do not mutate)."""
        return self._alive

    def __contains__(self, v: Vertex) -> bool:
        return v in self._alive

    def __len__(self) -> int:
        return len(self._alive)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._alive)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the alive vertices."""
        return iter(self._alive)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if both endpoints are alive and the edge exists."""
        return u in self._alive and v in self._alive and self._graph.has_edge(u, v)

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return the alive neighbors of ``v``."""
        if v not in self._alive:
            raise VertexNotFoundError(v)
        return self._graph.neighbors(v) & self._alive

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v`` within the view."""
        return len(self.neighbors(v))

    def edges(self) -> Iterator[Edge]:
        """Iterate over each induced edge exactly once."""
        seen: Set[Vertex] = set()
        for u in self._alive:
            for v in self._graph.neighbors(u):
                if v in self._alive and v not in seen:
                    yield (u, v)
            seen.add(u)

    @property
    def num_vertices(self) -> int:
        """Number of alive vertices."""
        return len(self._alive)

    @property
    def num_edges(self) -> int:
        """Number of induced edges."""
        return sum(1 for _ in self.edges())

    def materialize(self) -> Graph:
        """Copy the view into a standalone :class:`Graph`."""
        return self._graph.subgraph(self._alive)

    def __repr__(self) -> str:
        return f"SubgraphView(|V|={self.num_vertices} of {self._graph.num_vertices})"

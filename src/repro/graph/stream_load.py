"""Streaming edge-list loader: text file → on-disk CSR, bounded RSS.

:func:`stream_load` turns an edge-list file of any size into a finalized
CSR block file (:mod:`repro.graph.storage`) without ever holding the graph
— or any O(|E|) structure — in memory.  Everything that would not fit the
configured budget goes through *external merge sort*: the input is parsed
into sorted spill runs of at most ``max_ram_bytes`` worth of lines, and
every later stage is a linear merge/join over sorted streams.

The pipeline (two passes over the edge data, in the ISSUE's terms — a
counting pass that discovers ``n``, ``m`` and the vertex ranking, and a
placement pass that writes the arrays):

1. **Parse + spill.**  One sequential read of the input.  Each edge ``u v``
   is emitted as *two* directed records ``(key(u), key(v))`` and
   ``(key(v), key(u))``; each endpoint also goes to a vertex spill.
   ``key()`` is an order-preserving byte encoding (ints sort numerically
   before strings), so sorted-key order *is* final index order.
2. **Dedup.**  ``heapq.merge`` over the sorted runs; consecutive
   duplicates collapse (this is where duplicate input edges and both
   orientations of a repeated pair disappear).  The unique vertex stream
   assigns ranks ``0..n-1`` and the unique directed-pair count is ``2|E|``.
3. **Relabel (merge-join).**  Keys translate to ranks.  When the rank
   table fits the budget it is a plain dict; otherwise the translation
   runs fully externally: join pairs with the vertex stream on the source
   key (emitting source ranks to a sequential sidecar file), re-sort the
   ``(dst_key, position)`` stream, join again on the destination key, and
   re-sort by position — every step a sorted-stream pass.
4. **Placement.**  The translated stream is sorted by ``(src, dst)``, so
   ``indptr`` and ``adjacency`` are written append-only into the block
   file — no random access, no large resident mappings — and the status
   sentinel flips only after the last fsync.

Temp state lives in a uniquely-named build directory that is always
removed on the way out (success or error); a crash can only leave behind
an inert uniquely-named directory and an output file whose *building*
status :func:`repro.graph.storage.load_csr` refuses to open.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
from array import array
from contextlib import ExitStack
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.storage import (
    BLOCK_SUFFIX,
    BlockFileWriter,
    load_csr,
)

#: Default peak-RSS budget for the loader's own working state (64 MiB).
DEFAULT_MAX_RAM_BYTES = 64 * 1024 * 1024

#: Floor for the budget: below this the spill bookkeeping itself dominates.
_MIN_RAM_BYTES = 1 << 18

#: Integer vertex ids must fit the 20-digit order-preserving encoding
#: (covers the full int64 range and then some).
_INT_KEY_LIMIT = 10 ** 20

#: Estimated per-line Python overhead used by the spill accounting.
_LINE_OVERHEAD = 64

#: Per-entry cost estimate of the in-RAM rank dict (key bytes + dict slot);
#: when ``n * _RANK_ENTRY_BYTES`` exceeds half the budget the relabel stage
#: goes external.
_RANK_ENTRY_BYTES = 120

#: Maximum spill runs merged in one ``heapq.merge`` pass; more than this
#: cascades through intermediate merged runs (bounds open file handles).
_MAX_MERGE_FANIN = 256

#: Flush granularity (entries) for the block writer's array buffers.
_ARRAY_FLUSH = 1 << 16


@dataclass
class LoadStats:
    """What one :func:`stream_load` run saw and produced."""

    #: Input lines read (including comments and blanks).
    lines: int = 0
    #: Edge records parsed from the input (before dedup, after loop drop).
    edge_records: int = 0
    #: Self-loop records dropped (their endpoint is kept as a vertex).
    self_loops: int = 0
    #: Distinct vertices in the result.
    vertices: int = 0
    #: Distinct undirected edges in the result.
    edges: int = 0
    #: Edge records discarded as duplicates of an earlier record.
    duplicate_edges: int = 0
    #: True when vertex ids were exactly ``0..n-1`` (labels cost nothing).
    identity_labels: bool = False
    #: True when the rank table exceeded the budget and the relabel stage
    #: ran as external merge-joins instead of an in-RAM dict.
    external_relabel: bool = False
    #: Sorted spill runs written across all stages.
    spill_runs: int = 0


def _vertex_key(token: bytes, line_number: int) -> bytes:
    """Order-preserving sort key for a vertex token.

    Two tokens denote the same vertex iff their keys are equal (``"01"``
    and ``"1"`` both key as the integer 1, matching
    :func:`repro.graph.edgefile.parse_vertex`); byte-wise key order puts
    all integers first, in numeric order, then strings lexicographically.
    """
    try:
        value = int(token)
    except ValueError:
        try:
            token.decode("utf-8")
        except UnicodeDecodeError:
            raise GraphFormatError(
                f"line {line_number}: vertex token is not valid UTF-8"
            ) from None
        return b"s" + token
    if not -_INT_KEY_LIMIT < value < _INT_KEY_LIMIT:
        raise GraphFormatError(
            f"line {line_number}: integer vertex id {value} is outside "
            f"the supported range (|id| < 10^20)"
        )
    return b"i%021d" % (value + _INT_KEY_LIMIT)


def _decode_label(token: bytes):
    """Token bytes → the vertex label (int when possible, else str)."""
    try:
        return int(token)
    except ValueError:
        return token.decode("utf-8")


class _RunWriter:
    """Accumulate lines, spill them as sorted runs under a byte budget.

    Lines are stored (and compared) *with* their trailing newline so the
    in-memory sort and the later file-stream merge use byte-identical
    comparators.
    """

    def __init__(self, build_dir: str, prefix: str, limit: int,
                 stats: LoadStats) -> None:
        self._dir = build_dir
        self._prefix = prefix
        self._limit = max(limit, _MIN_RAM_BYTES // 4)
        self._stats = stats
        self._lines: List[bytes] = []
        self._bytes = 0
        self.paths: List[str] = []

    def add(self, line: bytes) -> None:
        """Buffer one newline-terminated line, spilling at the limit."""
        self._lines.append(line)
        self._bytes += len(line) + _LINE_OVERHEAD
        if self._bytes >= self._limit:
            self._spill()

    def _spill(self) -> None:
        if not self._lines:
            return
        self._lines.sort()
        path = os.path.join(self._dir,
                            f"{self._prefix}.{len(self.paths):06d}.run")
        with open(path, "wb") as handle:
            handle.writelines(self._lines)
        self.paths.append(path)
        self._stats.spill_runs += 1
        self._lines = []
        self._bytes = 0

    def finish(self) -> List[str]:
        """Spill any buffered tail and return the run paths."""
        self._spill()
        return self.paths


def _merged_lines(paths: List[str], stack: ExitStack,
                  build_dir: str, tag: str) -> Iterator[bytes]:
    """Merge sorted run files into one sorted line stream.

    Cascades through intermediate on-disk runs when the fan-in exceeds
    :data:`_MAX_MERGE_FANIN`, so file-handle usage stays bounded no matter
    how tiny the RAM budget (and thus how numerous the runs).
    """
    level = 0
    while len(paths) > _MAX_MERGE_FANIN:
        merged_paths: List[str] = []
        for start in range(0, len(paths), _MAX_MERGE_FANIN):
            group = paths[start:start + _MAX_MERGE_FANIN]
            out = os.path.join(build_dir,
                               f"{tag}.merge{level}.{len(merged_paths):06d}")
            with ExitStack() as group_stack:
                handles = [group_stack.enter_context(open(p, "rb"))
                           for p in group]
                with open(out, "wb") as sink:
                    sink.writelines(heapq.merge(*handles))
            for p in group:
                os.unlink(p)
            merged_paths.append(out)
        paths = merged_paths
        level += 1
    handles: List[IO[bytes]] = [stack.enter_context(open(p, "rb"))
                                for p in paths]
    return heapq.merge(*handles)


def _unlink_all(paths: List[str]) -> None:
    """Remove run files, tolerating ones a cascaded merge already consumed."""
    for path in paths:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


def _unique(lines: Iterable[bytes]) -> Iterator[bytes]:
    """Drop consecutive duplicates from a sorted line stream."""
    previous = None
    for line in lines:
        if line != previous:
            yield line
            previous = line


def _unique_by_key(lines: Iterable[bytes]
                   ) -> Iterator[Tuple[bytes, bytes]]:
    """``(key, token)`` pairs from a sorted vertex stream, one per key."""
    previous = None
    for line in lines:
        key, _, token = line.rstrip(b"\n").partition(b"\t")
        if key != previous:
            yield key, token
            previous = key


def stream_load(source, out_path: Optional[str] = None,
                max_ram_bytes: Optional[int] = None,
                tmp_dir: Optional[str] = None) -> CSRGraph:
    """Build an mmap-backed :class:`CSRGraph` from an edge-list file.

    Parameters
    ----------
    source:
        Path of the edge-list file (the dialect of
        :mod:`repro.graph.edgefile`: ``#``/``%`` comments, ``u v`` edges
        with extra columns ignored, bare-id isolated vertices, self-loops
        dropped).
    out_path:
        Destination block file.  ``None`` builds into a temp file that is
        unlinked when the returned graph is closed; a real path persists
        the block (plus a ``.labels`` sidecar when ids are not exactly
        ``0..n-1``) for later :func:`repro.graph.storage.load_csr`.
    max_ram_bytes:
        Peak-RSS budget for the loader's working state (default 64 MiB).
        Smaller budgets spill more, run slower, and change nothing about
        the output — the result is byte-identical for any budget.
    tmp_dir:
        Directory for the build scratch (default: alongside the output).

    Vertex indices follow sorted id order (integers numerically first,
    then strings), independent of input line order — the same input file
    always produces a byte-identical block file.
    """
    csr, _ = stream_load_with_stats(source, out_path=out_path,
                                    max_ram_bytes=max_ram_bytes,
                                    tmp_dir=tmp_dir)
    return csr


def stream_load_with_stats(source, out_path: Optional[str] = None,
                           max_ram_bytes: Optional[int] = None,
                           tmp_dir: Optional[str] = None,
                           external_relabel: Optional[bool] = None
                           ) -> Tuple[CSRGraph, LoadStats]:
    """:func:`stream_load`, also returning the run's :class:`LoadStats`.

    ``external_relabel`` overrides the automatic in-RAM-vs-external choice
    for the relabel stage (``None`` = decide from the budget); forcing
    ``True`` exercises the fully external path on graphs of any size —
    the parity tests and benchmarks use this to prove both paths emit
    byte-identical blocks.
    """
    source = os.fspath(source)
    budget = DEFAULT_MAX_RAM_BYTES if max_ram_bytes is None else max_ram_bytes
    budget = max(budget, _MIN_RAM_BYTES)
    stats = LoadStats()

    delete_on_close = out_path is None
    if out_path is None:
        fd, out_path = tempfile.mkstemp(suffix=BLOCK_SUFFIX, dir=tmp_dir,
                                        prefix="kh-core-stream-")
        os.close(fd)
    out_path = os.fspath(out_path)

    build_dir = tempfile.mkdtemp(
        prefix=".kh-core-load-",
        dir=tmp_dir if tmp_dir is not None
        else (os.path.dirname(os.path.abspath(out_path)) or None))
    try:
        _build_block(source, out_path, build_dir, budget, stats,
                     external_relabel)
    except BaseException:
        if delete_on_close:
            for stale in (out_path, out_path + ".labels"):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
        raise
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)
    csr = load_csr(out_path, delete_on_close=delete_on_close)
    stats.vertices = csr.num_vertices
    stats.edges = csr.num_edges
    return csr, stats


def _build_block(source: str, out_path: str, build_dir: str,
                 budget: int, stats: LoadStats,
                 external_relabel: Optional[bool] = None) -> None:
    """Run the full pipeline; leaves a finalized block file at ``out_path``."""
    # -- pass 1: parse + spill (both directed orientations) ------------- #
    vertex_runs = _RunWriter(build_dir, "v", budget // 4, stats)
    pair_runs = _RunWriter(build_dir, "e", budget // 4, stats)
    with open(source, "rb") as handle:
        line_number = 0
        for raw in handle:
            line_number += 1
            line = raw.strip()
            if not line or line[:1] in (b"#", b"%"):
                continue
            tokens = line.split()
            if len(tokens) == 1:
                key = _vertex_key(tokens[0], line_number)
                vertex_runs.add(key + b"\t" + tokens[0] + b"\n")
                continue
            ku = _vertex_key(tokens[0], line_number)
            kv = _vertex_key(tokens[1], line_number)
            vertex_runs.add(ku + b"\t" + tokens[0] + b"\n")
            vertex_runs.add(kv + b"\t" + tokens[1] + b"\n")
            if ku == kv:
                stats.self_loops += 1
                continue
            stats.edge_records += 1
            pair_runs.add(ku + b"\t" + kv + b"\n")
            pair_runs.add(kv + b"\t" + ku + b"\n")
        stats.lines = line_number
    vertex_paths = vertex_runs.finish()
    pair_paths = pair_runs.finish()

    # -- pass 2a: dedup into canonical sorted streams -------------------- #
    # The unique vertex stream is materialized once (it is O(n), read up to
    # three more times below); unique pairs are materialized so the
    # directed count m2 is known before the block header is written.
    vertex_file = os.path.join(build_dir, "vertices")
    n = 0
    identity = True
    with ExitStack() as stack:
        merged = _merged_lines(vertex_paths, stack, build_dir, "v")
        with open(vertex_file, "wb") as sink:
            for key, token in _unique_by_key(merged):
                if identity and not (
                        key[:1] == b"i" and int(token) == n):
                    identity = False
                sink.write(key + b"\t" + token + b"\n")
                n += 1
    _unlink_all(vertex_paths)
    stats.identity_labels = identity and n > 0 or n == 0

    pair_file = os.path.join(build_dir, "pairs")
    m2 = 0
    with ExitStack() as stack:
        merged = _merged_lines(pair_paths, stack, build_dir, "e")
        with open(pair_file, "wb") as sink:
            for line in _unique(merged):
                sink.write(line)
                m2 += 1
    _unlink_all(pair_paths)
    stats.duplicate_edges = stats.edge_records - m2 // 2

    # -- pass 2b: relabel + placement ------------------------------------ #
    writer = BlockFileWriter(out_path, n, m2)
    try:
        if external_relabel is None:
            external = n * _RANK_ENTRY_BYTES > budget // 2
        else:
            external = external_relabel
        stats.external_relabel = external
        if external:
            pairs = _translate_external(pair_file, vertex_file, build_dir,
                                        budget, stats)
        else:
            pairs = _translate_in_ram(pair_file, vertex_file)
        _write_arrays(writer, n, pairs)
        if identity:
            writer.finalize()
        else:
            writer.finalize(labels=_label_stream(vertex_file))
    except BaseException:
        writer.abort()
        raise


def _label_stream(vertex_file: str) -> Iterator[object]:
    """Decoded labels in rank order, streamed from the unique-vertex file."""
    with open(vertex_file, "rb") as handle:
        for line in handle:
            _, _, token = line.rstrip(b"\n").partition(b"\t")
            yield _decode_label(token)


def _translate_in_ram(pair_file: str, vertex_file: str
                      ) -> Iterator[Tuple[int, int]]:
    """Key → rank translation through an in-RAM dict (the fast path)."""
    rank = {}
    with open(vertex_file, "rb") as handle:
        for i, line in enumerate(handle):
            key, _, _ = line.rstrip(b"\n").partition(b"\t")
            rank[key] = i
    with open(pair_file, "rb") as handle:
        for line in handle:
            ksrc, _, kdst = line.rstrip(b"\n").partition(b"\t")
            yield rank[ksrc], rank[kdst]


def _rank_join(lines: Iterable[bytes], vertex_file: str, field: int
               ) -> Iterator[Tuple[bytes, int]]:
    """Merge-join a key-sorted stream with the vertex ranks.

    ``lines`` must be sorted by their ``field``-th tab-separated column (a
    vertex key); yields ``(other_column, rank_of_key)`` per line.  Linear:
    both inputs are consumed exactly once.
    """
    with open(vertex_file, "rb") as vertices:
        rank = -1
        current: Optional[bytes] = None

        def advance_to(key: bytes) -> int:
            """Advance the vertex cursor to ``key`` and return its rank."""
            nonlocal rank, current
            while current != key:
                vline = vertices.readline()
                if not vline:
                    raise GraphFormatError(
                        "internal: pair key missing from vertex stream")
                current = vline.split(b"\t", 1)[0]
                rank += 1
            return rank

        for line in lines:
            columns = line.rstrip(b"\n").split(b"\t")
            yield columns[1 - field], advance_to(columns[field])


def _translate_external(pair_file: str, vertex_file: str, build_dir: str,
                        budget: int, stats: LoadStats
                        ) -> Iterator[Tuple[int, int]]:
    """Fully external key → rank translation (bounded-RSS slow path).

    Three linear passes, each over sorted streams: join on the source key
    (source ranks land in a sequential binary file, positions ride along
    as padded decimals), external re-sort by destination key + join, then
    an external re-sort by position to restore final order.
    """
    src_file = os.path.join(build_dir, "src.i64")
    by_dst = _RunWriter(build_dir, "jd", budget // 2, stats)
    position = 0
    buf = array("q")
    with open(pair_file, "rb") as pairs, open(src_file, "wb") as srcs:
        for kdst, src_rank in _rank_join(pairs, vertex_file, 0):
            buf.append(src_rank)
            if len(buf) >= _ARRAY_FLUSH:
                srcs.write(buf.tobytes())
                del buf[:]
            by_dst.add(kdst + b"\t%012d\n" % position)
            position += 1
        srcs.write(buf.tobytes())

    by_position = _RunWriter(build_dir, "jp", budget // 2, stats)
    with ExitStack() as stack:
        merged = _merged_lines(by_dst.finish(), stack, build_dir, "jd")
        for seq, dst_rank in _rank_join(merged, vertex_file, 0):
            by_position.add(seq + b"\t%020d\n" % dst_rank)

    with ExitStack() as stack:
        merged = _merged_lines(by_position.finish(), stack, build_dir, "jp")
        with open(src_file, "rb") as srcs:
            src_buf = array("q")
            src_pos = 0
            for line in merged:
                if src_pos >= len(src_buf):
                    src_buf = array("q")
                    chunk = srcs.read(_ARRAY_FLUSH * 8)
                    src_buf.frombytes(chunk)
                    src_pos = 0
                dst = int(line.rstrip(b"\n").split(b"\t")[1])
                yield src_buf[src_pos], dst
                src_pos += 1


def _write_arrays(writer: BlockFileWriter, n: int,
                  pairs: Iterable[Tuple[int, int]]) -> None:
    """Append-only placement: sorted ``(src, dst)`` stream → indptr+adjacency.

    The stream arrives sorted by ``(src, dst)``, so each vertex's neighbor
    run is contiguous and ascending; ``indptr`` entries are emitted as each
    row closes, with gaps (isolated vertices) filled in bulk.
    """
    idx_buf = array("q", [0])
    adj_buf = array("q")
    row = 0
    position = 0
    for src, dst in pairs:
        while row < src:
            idx_buf.append(position)
            row += 1
            if len(idx_buf) >= _ARRAY_FLUSH:
                writer.write_indptr(idx_buf)
                idx_buf = array("q")
        adj_buf.append(dst)
        position += 1
        if len(adj_buf) >= _ARRAY_FLUSH:
            writer.write_adjacency(adj_buf)
            adj_buf = array("q")
    while row < n:
        idx_buf.append(position)
        row += 1
        if len(idx_buf) >= _ARRAY_FLUSH:
            writer.write_indptr(idx_buf)
            idx_buf = array("q")
    writer.write_indptr(idx_buf)
    writer.write_adjacency(adj_buf)

"""Graph statistics used by the dataset characterization (Table 1).

Table 1 of the paper reports, for every dataset: number of vertices, number
of edges, average degree, maximum degree, and diameter.  :func:`summarize`
computes exactly those quantities (diameter exactly for small graphs, or by
the standard double-sweep lower bound for large ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class GraphSummary:
    """Table-1-style characteristics of a graph."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    diameter: int
    num_components: int

    def as_row(self) -> Dict[str, object]:
        """Return the summary as a printable row dictionary."""
        return {
            "dataset": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "avg deg": round(self.avg_degree, 2),
            "max deg": self.max_degree,
            "diam": self.diameter,
            "components": self.num_components,
        }


def density(graph: Graph) -> float:
    """Return the edge density ``2|E| / (|V| (|V|-1))`` (0 for tiny graphs)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def degree_histogram(graph: Graph) -> List[int]:
    """Return ``hist`` where ``hist[d]`` is the number of vertices of degree ``d``."""
    degrees = graph.degrees()
    if not degrees:
        return []
    hist = [0] * (max(degrees.values()) + 1)
    for d in degrees.values():
        hist[d] += 1
    return hist


def average_degree(graph: Graph) -> float:
    """Return the average degree ``2|E|/|V|`` (0 for the empty graph)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    return 2.0 * graph.num_edges / n


def max_degree(graph: Graph) -> int:
    """Return the maximum degree (0 for the empty graph)."""
    degrees = graph.degrees()
    return max(degrees.values()) if degrees else 0


def summarize(graph: Graph, name: str = "graph",
              exact_diameter_limit: int = 2000) -> GraphSummary:
    """Return a :class:`GraphSummary` for ``graph``.

    The diameter is computed exactly (BFS from every vertex) when the graph
    has at most ``exact_diameter_limit`` vertices, otherwise estimated with
    repeated double-sweep BFS (a lower bound that is exact on trees and very
    tight in practice).  Disconnected graphs report the largest component's
    diameter, mirroring how dataset tables usually treat them.
    """
    # Imported here to avoid a circular import at module load time
    # (traversal depends on graph).
    from repro.traversal.components import connected_components
    from repro.traversal.distances import diameter as exact_diameter
    from repro.traversal.distances import double_sweep_diameter_estimate

    components = connected_components(graph)
    if not components:
        return GraphSummary(name, 0, 0, 0.0, 0, 0, 0)
    largest = max(components, key=len)
    largest_sub = graph.subgraph(largest)
    if largest_sub.num_vertices <= exact_diameter_limit:
        diam = exact_diameter(largest_sub)
    else:
        diam = double_sweep_diameter_estimate(largest_sub)
    return GraphSummary(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=average_degree(graph),
        max_degree=max_degree(graph),
        diameter=diam,
        num_components=len(components),
    )


def isolated_vertices(graph: Graph) -> List[Vertex]:
    """Return the vertices of degree zero."""
    return [v for v in graph.vertices() if graph.degree(v) == 0]


def summarize_many(graphs: Dict[str, Graph],
                   exact_diameter_limit: int = 2000) -> List[GraphSummary]:
    """Summarize several named graphs (the full Table 1)."""
    return [
        summarize(graph, name=name, exact_diameter_limit=exact_diameter_limit)
        for name, graph in graphs.items()
    ]

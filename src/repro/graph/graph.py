"""The core undirected, unweighted graph data structure.

:class:`Graph` stores adjacency as a dict of sets, which gives O(1) edge
membership tests and O(deg) neighbor iteration — the operations the peeling
algorithms and h-bounded BFS need.  Vertices may be any hashable object;
the synthetic generators use consecutive integers.
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterable, Iterator, List,
                    Optional, Set, Tuple)

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: Signature of a mutation listener: ``listener(event, payload)``.
#: Events and payloads:
#:
#: * ``"add_vertex"`` — the new vertex;
#: * ``"add_edge"`` / ``"remove_edge"`` — the ``(u, v)`` pair;
#: * ``"remove_vertex"`` — ``(v, frozenset(neighbors))``: the incident
#:   edges vanish with the vertex *without* individual ``"remove_edge"``
#:   events, so listeners tracking touched adjacency must consume the
#:   neighbor set.
MutationListener = Callable[[str, object], None]


class Graph:
    """An undirected, unweighted simple graph.

    Self-loops are rejected (they never matter for distance-based cores) and
    parallel edges collapse silently because adjacency is a set.

    Example
    -------
    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.degree(2)
    2
    """

    __slots__ = ("_adj", "_version", "_listeners")

    def __init__(self, edges: Optional[Iterable[Edge]] = None,
                 vertices: Optional[Iterable[Vertex]] = None) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._version = 0
        self._listeners: List[MutationListener] = []
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #
    def _mutated(self, event: str, payload: object) -> None:
        """Bump the version and fan the event out to mutation listeners."""
        self._version += 1
        for listener in self._listeners:
            listener(event, payload)

    @property
    def version(self) -> int:
        """Monotonic counter incremented on every structural change.

        Idempotent no-ops (re-adding an existing vertex or edge) do not bump
        the version, so snapshot consumers (the CSR engine, the dynamic
        maintenance engine) can use equality of versions as an exact
        freshness test.
        """
        return self._version

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Subscribe ``listener`` to structural changes.

        The listener is called *after* each mutation as ``listener(event,
        payload)``; see :data:`MutationListener` for the event vocabulary.
        Listeners are not copied by :meth:`copy`.  An update log is one
        ``add_mutation_listener(lambda e, p: log.append((e, p)))`` away.
        """
        self._listeners.append(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Unsubscribe a listener previously added (must be present)."""
        self._listeners.remove(listener)

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        if v not in self._adj:
            self._adj[v] = set()
            self._mutated("add_vertex", v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed."""
        if u == v:
            raise GraphError(f"self-loops are not supported (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._mutated("add_edge", (u, v))

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and every edge incident to it.

        Listeners receive one ``"remove_vertex"`` event whose payload
        carries the former neighbor set (see :data:`MutationListener`).
        """
        try:
            neighbors = self._adj.pop(v)
        except KeyError:
            raise VertexNotFoundError(v) from None
        for u in neighbors:
            self._adj[u].discard(v)
        self._mutated("remove_vertex", (v, frozenset(neighbors)))

    def remove_vertices_from(self, vertices: Iterable[Vertex]) -> None:
        """Remove every vertex in ``vertices`` (each must exist)."""
        for v in list(vertices):
            self.remove_vertex(v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; endpoints are kept."""
        if u not in self._adj or v not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._mutated("remove_edge", (u, v))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def has_vertex(self, v: Vertex) -> bool:
        """Return True if ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if the edge ``(u, v)`` is present."""
        return u in self._adj and v in self._adj[u]

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Vertex] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return the neighbor set of ``v`` (do not mutate the result)."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v``."""
        return len(self.neighbors(v))

    def degrees(self) -> Dict[Vertex, int]:
        """Return a dict mapping every vertex to its degree."""
        return {v: len(adj) for v, adj in self._adj.items()}

    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return sum(len(adj) for adj in self._adj.values()) // 2

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "Graph":
        """Return a deep copy of the graph.

        The copy starts with a fresh version counter and no mutation
        listeners: it is a new, independent graph, not a second handle on
        the same evolving one.
        """
        clone = Graph()
        clone._adj = {v: set(adj) for v, adj in self._adj.items()}
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return a new :class:`Graph` induced by ``vertices``.

        Vertices not present in the graph are ignored, matching the common
        "restrict to this vertex set" idiom in the decomposition algorithms.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = Graph()
        for v in keep:
            sub.add_vertex(v)
        for v in keep:
            for u in self._adj[v]:
                if u in keep and not sub.has_edge(u, v):
                    sub.add_edge(u, v)
        return sub

    def relabeled(self) -> Tuple["Graph", Dict[Vertex, int]]:
        """Return a copy with vertices relabeled to ``0..n-1``.

        Returns the relabeled graph and the old-to-new mapping.  Useful before
        exporting to array-based formats.
        """
        mapping = {v: i for i, v in enumerate(sorted(self._adj, key=repr))}
        relabeled = Graph()
        for v in self._adj:
            relabeled.add_vertex(mapping[v])
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    def to_adjacency_lists(self) -> Dict[Vertex, List[Vertex]]:
        """Return adjacency as plain sorted lists (handy for serialization)."""
        return {v: sorted(adj, key=repr) for v, adj in self._adj.items()}

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

"""CSR storage tier: one binary block layout, three interchangeable homes.

A :class:`~repro.graph.csr.CSRGraph` snapshot is two flat ``int64`` arrays
(``indptr``, ``adjacency``) plus a ``uint8`` alive region.  This module
defines the *storage tier* under that snapshot — where those arrays
physically live:

* **ram** — plain Python lists (the historical default; fastest for graphs
  that fit comfortably in memory).  :class:`RamCSRStorage`.
* **mmap** — a memory-mapped on-disk block file (:class:`MmapCSRStorage`),
  exposing the arrays as zero-copy ``memoryview('q')`` casts.  The
  interpreted BFS (:class:`~repro.traversal.array_bfs.ArrayBFS`) and the
  vectorized NumPy kernels both traverse these views unchanged, so a graph
  much larger than RAM decomposes with only the OS page cache as the
  working set.
* **shm** — a POSIX shared-memory block
  (:class:`~repro.parallel.shm.SharedCSRExport`) for the process-pool
  executor.

All three share **one payload layout**::

    +-------------------------+------------------------+----------------+
    | indptr                  | adjacency              | alive          |
    | int64 x (n + 1)         | int64 x m2             | uint8 x n      |
    +-------------------------+------------------------+----------------+

The on-disk block file prefixes the payload with a 64-byte header
(:data:`HEADER_SIZE`) carrying a magic tag, a **status sentinel** byte, a
labels flag and the ``(n, m2)`` dimensions::

    offset 0   magic   8 bytes  b"KHCSR\\x01\\x00\\x00"
    offset 8   status  1 byte   0 = building, 1 = complete
    offset 9   labels  1 byte   0 = identity / 1 = sidecar / 2 = volatile
    offset 16  n       uint64   number of vertices
    offset 24  m2      uint64   adjacency length (2 |E|)
    offset 32  zero padding up to 64

The status byte is flipped to *complete* only after every payload byte and
the labels sidecar are durably written (the same crash-safety idiom as the
persistent core index): an interrupted build leaves a file that
:func:`load_csr` refuses to open, never a silently truncated graph.

Shared-memory blocks carry no header — their lifetime is one process tree
and the dimensions ride in the attach descriptor — but their payload bytes
are produced by the same :func:`write_payload` helper, which is what makes
"copy a block file into shm" (and the zero-copy file attach in
:mod:`repro.parallel`) a plain ``memcpy`` / no-op respectively.
"""

from __future__ import annotations

import mmap
import os
import struct
import warnings
import weakref
from array import array
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.errors import GraphFormatError, ParameterError

#: Bytes per ``indptr`` / ``adjacency`` entry (``int64``).
INT_SIZE = 8

#: Magic tag opening every CSR block file (includes the format version).
MAGIC = b"KHCSR\x01\x00\x00"

#: Fixed size of the block-file header; the payload starts here.
HEADER_SIZE = 64

#: Byte offset of the status sentinel within the header.
STATUS_OFFSET = len(MAGIC)

#: Header field encoding: magic, status, labels flag, (pad), n, m2.
_HEADER_STRUCT = struct.Struct("<8sBB6xQQ")

#: Status sentinel values.
STATUS_BUILDING = 0
STATUS_COMPLETE = 1

#: Labels-flag values: vertex labels are exactly ``0..n-1`` (nothing
#: stored), live in a ``<path>.labels`` sidecar, or were kept in RAM only
#: (the file is an engine-internal spill, not standalone-loadable).
LABELS_IDENTITY = 0
LABELS_SIDECAR = 1
LABELS_VOLATILE = 2

#: Filename suffixes: block files and their labels sidecar.
BLOCK_SUFFIX = ".khcsr"
LABELS_SUFFIX = ".labels"

#: Storage names accepted wherever ``storage=`` is threaded through.
STORAGES = ("auto", "ram", "mmap")

#: Environment variable forcing the ``storage="auto"`` decision.
STORAGE_ENV_VAR = "KH_CORE_STORAGE"

#: Environment variable overriding :data:`DEFAULT_MMAP_AUTO_THRESHOLD`.
MMAP_THRESHOLD_ENV_VAR = "KH_CORE_MMAP_THRESHOLD"

#: Minimum estimated payload size (bytes) for ``storage="auto"`` to spill
#: the snapshot to an mmap-backed block file instead of RAM lists.
DEFAULT_MMAP_AUTO_THRESHOLD = 256 * 1024 * 1024


def _env_threshold(env_var: str, default: int) -> int:
    """Parse a non-negative int threshold from the environment.

    Invalid values (non-integer or negative) *warn and fall back* to
    ``default`` instead of raising: a typo in a deployment environment
    should degrade to the default auto policy, not crash every
    decomposition entry point.
    """
    raw = os.environ.get(env_var)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"{env_var}={raw!r} is not an integer; falling back to the "
            f"default threshold ({default})",
            RuntimeWarning, stacklevel=3)
        return default
    if value < 0:
        warnings.warn(
            f"{env_var} must be >= 0, got {value}; falling back to the "
            f"default threshold ({default})",
            RuntimeWarning, stacklevel=3)
        return default
    return value


def payload_layout(num_vertices: int, adjacency_len: int
                   ) -> Tuple[int, int, int, int]:
    """Byte layout of one CSR payload, shared by shm blocks and block files.

    Returns ``(indptr_bytes, adjacency_bytes, alive_offset, payload_size)``
    where ``alive_offset`` is relative to the payload start.
    """
    indptr_bytes = INT_SIZE * (num_vertices + 1)
    adjacency_bytes = INT_SIZE * adjacency_len
    alive_offset = indptr_bytes + adjacency_bytes
    return (indptr_bytes, adjacency_bytes, alive_offset,
            alive_offset + num_vertices)


def estimated_payload_bytes(num_vertices: int, num_edges: int) -> int:
    """Payload size a snapshot of ``(|V|, |E|)`` would occupy, in bytes.

    The ``storage="auto"`` policy compares this against the mmap threshold
    *before* building anything, so the decision costs nothing.
    """
    return payload_layout(num_vertices, 2 * num_edges)[3]


def write_payload(buf, indptr: Sequence[int],
                  adjacency: Sequence[int]) -> None:
    """Serialize ``indptr`` + ``adjacency`` into ``buf`` (payload layout).

    ``buf`` is any writable buffer (an shm block's ``.buf``, an ``mmap``
    slice); the alive region beyond the arrays is left untouched.  This is
    the single serializer both the shm export and the block-file writer
    funnel through — the "one binary layout" guarantee.
    """
    indptr_bytes = INT_SIZE * len(indptr)
    buf[0:indptr_bytes] = array("q", indptr).tobytes()
    if len(adjacency):
        end = indptr_bytes + INT_SIZE * len(adjacency)
        buf[indptr_bytes:end] = array("q", adjacency).tobytes()


def resolve_storage(storage: str,
                    payload_bytes: Optional[int] = None) -> str:
    """Resolve a ``storage=`` request to a concrete ``"ram"`` or ``"mmap"``.

    ``"auto"`` consults the ``KH_CORE_STORAGE`` environment variable first
    (an operator override naming ``ram`` or ``mmap``), then spills to mmap
    when ``payload_bytes`` — typically :func:`estimated_payload_bytes` —
    meets the ``KH_CORE_MMAP_THRESHOLD`` gate (default
    :data:`DEFAULT_MMAP_AUTO_THRESHOLD`).  With no size estimate, auto
    stays in RAM.
    """
    if storage not in STORAGES:
        raise ParameterError(
            f"unknown storage {storage!r}; expected one of {STORAGES}"
        )
    if storage != "auto":
        return storage
    forced = os.environ.get(STORAGE_ENV_VAR)
    if forced:
        if forced in ("ram", "mmap"):
            return forced
        warnings.warn(
            f"{STORAGE_ENV_VAR}={forced!r} is not 'ram' or 'mmap'; "
            f"ignoring the override",
            RuntimeWarning, stacklevel=2)
    if payload_bytes is None:
        return "ram"
    threshold = _env_threshold(MMAP_THRESHOLD_ENV_VAR,
                               DEFAULT_MMAP_AUTO_THRESHOLD)
    return "mmap" if payload_bytes >= threshold else "ram"


class CSRStorage(Protocol):
    """Structural protocol every storage backend satisfies.

    ``indptr`` / ``adjacency`` expose int64 elements through integer
    indexing and slice iteration — the exact surface
    :class:`~repro.traversal.array_bfs.ArrayBFS` traverses and
    ``np.ascontiguousarray`` wraps zero-copy — regardless of whether the
    bytes live in lists, a file mapping or a shared-memory block.
    """

    kind: str
    indptr: Sequence[int]
    adjacency: Sequence[int]

    def close(self) -> None:
        """Release the backing resource (idempotent; no-op for RAM)."""
        ...


class RamCSRStorage:
    """In-RAM storage: the arrays are plain Python lists.

    Exists mostly for protocol symmetry — a ``CSRGraph`` whose ``storage``
    is ``None`` is implicitly RAM-resident — but gives explicit
    ``storage="ram"`` requests a concrete object to point at.
    """

    kind = "ram"

    __slots__ = ("indptr", "adjacency")

    def __init__(self, indptr: List[int], adjacency: List[int]) -> None:
        self.indptr = indptr
        self.adjacency = adjacency

    def close(self) -> None:
        """No resource to release."""


def _cleanup_mmap(state: dict) -> None:
    """Finalizer shared by close() and GC: unmap, close, maybe unlink."""
    for extra in state.pop("extra_close", ()):
        extra()
    views = state.pop("views", ())
    for view in views:
        view.release()
    mm = state.pop("mm", None)
    if mm is not None:
        mm.close()
    fh = state.pop("fh", None)
    if fh is not None:
        fh.close()
    for path in state.pop("unlink", ()):
        try:
            os.unlink(path)
        except OSError:
            pass


class MmapCSRStorage:
    """Read-only memory-mapped view over a complete CSR block file.

    ``indptr`` and ``adjacency`` are zero-copy ``memoryview('q')`` casts
    into the mapping; ``alive`` is the trailing uint8 region (all-ones in a
    finalized file — the mutable alive mask of a decomposition in flight
    never touches the dataset file).  Pages are faulted in on demand, so
    the resident set of a traversal is the touched pages, not the file.

    ``delete_on_close`` marks engine-internal temp spills: closing the
    storage (or losing the last reference — a GC finalizer backstops
    forgotten handles) unlinks the block file and its sidecar.
    """

    kind = "mmap"

    __slots__ = ("path", "num_vertices", "adjacency_len", "labels_flag",
                 "indptr", "adjacency", "alive", "_state", "_finalizer",
                 "__weakref__")

    def __init__(self, path: str, delete_on_close: bool = False) -> None:
        self.path = os.fspath(path)
        fh = open(self.path, "rb")
        try:
            header = fh.read(HEADER_SIZE)
            if len(header) < HEADER_SIZE:
                raise GraphFormatError(
                    f"{self.path}: truncated CSR block header")
            magic, status, labels_flag, n, m2 = _HEADER_STRUCT.unpack_from(
                header, 0)
            if magic != MAGIC:
                raise GraphFormatError(
                    f"{self.path}: not a CSR block file (bad magic)")
            if status != STATUS_COMPLETE:
                raise GraphFormatError(
                    f"{self.path}: incomplete CSR block (an interrupted "
                    f"build left the status sentinel unset); rebuild it")
            expected = HEADER_SIZE + payload_layout(n, m2)[3]
            if os.fstat(fh.fileno()).st_size < expected:
                raise GraphFormatError(
                    f"{self.path}: CSR block shorter than its header "
                    f"claims ({expected} bytes expected)")
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            fh.close()
            raise
        self.num_vertices = n
        self.adjacency_len = m2
        self.labels_flag = labels_flag
        indptr_bytes, _, alive_offset, _ = payload_layout(n, m2)
        buf = memoryview(mm)
        start = HEADER_SIZE
        self.indptr = buf[start:start + indptr_bytes].cast("q")
        self.adjacency = buf[start + indptr_bytes:
                             start + alive_offset].cast("q")
        self.alive = buf[start + alive_offset:start + alive_offset + n]
        unlink: Tuple[str, ...] = ()
        if delete_on_close:
            unlink = (self.path, self.path + LABELS_SUFFIX)
        # The casts pin ``buf``; release them before the mapping, and let a
        # GC finalizer do the same for handles that are never closed.
        self._state = {
            "views": (self.indptr, self.adjacency, self.alive, buf),
            "mm": mm, "fh": fh, "unlink": unlink,
        }
        self._finalizer = weakref.finalize(self, _cleanup_mmap, self._state)

    @property
    def nbytes(self) -> int:
        """Total on-disk size of the block (header + payload)."""
        return HEADER_SIZE + payload_layout(self.num_vertices,
                                            self.adjacency_len)[3]

    def close(self) -> None:
        """Release the views and mapping; unlink temp spills (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()


class BlockFileWriter:
    """Sequential, status-sentinel-protected writer for one block file.

    Opens the target with a *building* header and two independent
    append-only cursors — one for the indptr region, one for the adjacency
    region — so producers that interleave the two streams (the streaming
    loader discovers ``indptr[i+1]`` exactly when row ``i``'s neighbors
    finish) still issue purely sequential writes.  :meth:`finalize` fills
    the alive region, writes the labels sidecar, fsyncs, and only then
    flips the status byte; :meth:`abort` (or a crash) leaves a file
    :func:`load_csr` rejects.
    """

    _ALIVE_CHUNK = 1 << 20

    def __init__(self, path: str, num_vertices: int,
                 adjacency_len: int) -> None:
        self.path = os.fspath(path)
        self.num_vertices = num_vertices
        self.adjacency_len = adjacency_len
        self._indptr_written = 0
        self._adjacency_written = 0
        indptr_bytes = payload_layout(num_vertices, adjacency_len)[0]
        self._idx_fh = open(self.path, "wb")
        self._idx_fh.write(_HEADER_STRUCT.pack(
            MAGIC, STATUS_BUILDING, LABELS_VOLATILE,
            num_vertices, adjacency_len).ljust(HEADER_SIZE, b"\x00"))
        self._adj_fh = open(self.path, "r+b")
        self._adj_fh.seek(HEADER_SIZE + indptr_bytes)

    def write_indptr(self, values: "array[int]") -> None:
        """Append a chunk of indptr entries (an ``array('q')``)."""
        self._indptr_written += len(values)
        self._idx_fh.write(values.tobytes())

    def write_adjacency(self, values: "array[int]") -> None:
        """Append a chunk of adjacency entries (an ``array('q')``)."""
        self._adjacency_written += len(values)
        self._adj_fh.write(values.tobytes())

    def finalize(self, labels: Optional[Iterable[object]] = None,
                 labels_flag: Optional[int] = None) -> None:
        """Complete the file: alive region, sidecar, fsync, status flip.

        ``labels=None`` with the default flag marks identity labels
        (vertex ids are exactly ``0..n-1``); an iterable writes the
        ``<path>.labels`` sidecar; ``labels_flag=LABELS_VOLATILE`` records
        that labels intentionally stayed in RAM.
        """
        if (self._indptr_written != self.num_vertices + 1
                or self._adjacency_written != self.adjacency_len):
            raise GraphFormatError(
                f"{self.path}: block writer closed with "
                f"{self._indptr_written}/{self.num_vertices + 1} indptr and "
                f"{self._adjacency_written}/{self.adjacency_len} adjacency "
                f"entries written")
        remaining = self.num_vertices
        while remaining > 0:
            step = min(remaining, self._ALIVE_CHUNK)
            self._adj_fh.write(b"\x01" * step)
            remaining -= step
        if labels is not None:
            flag = LABELS_SIDECAR
            with open(self.path + LABELS_SUFFIX, "w",
                      encoding="utf-8") as sidecar:
                for label in labels:
                    sidecar.write(f"{label}\n")
                sidecar.flush()
                os.fsync(sidecar.fileno())
        else:
            flag = LABELS_IDENTITY if labels_flag is None else labels_flag
        self._adj_fh.flush()
        os.fsync(self._adj_fh.fileno())
        self._idx_fh.flush()
        from repro.resilience.faults import should_fire

        if should_fire("block.torn_write"):
            # Simulated crash in the durability window: everything but the
            # status flip is on disk, which is exactly the state a real
            # power cut here leaves behind.  load_csr must reject the file
            # and `kh-core doctor` must reclaim it.
            from repro.errors import FaultInjectedError

            self._close_handles()
            raise FaultInjectedError(
                "block.torn_write",
                f"crash before status flip left {self.path} building",
            )
        self._idx_fh.seek(0)
        self._idx_fh.write(_HEADER_STRUCT.pack(
            MAGIC, STATUS_COMPLETE, flag,
            self.num_vertices, self.adjacency_len))
        self._idx_fh.flush()
        os.fsync(self._idx_fh.fileno())
        self._close_handles()

    def abort(self) -> None:
        """Drop the partial file (idempotent; safe after finalize)."""
        self._close_handles()
        for path in (self.path, self.path + LABELS_SUFFIX):
            try:
                os.unlink(path)
            except OSError:
                pass

    def _close_handles(self) -> None:
        for name in ("_idx_fh", "_adj_fh"):
            fh = getattr(self, name, None)
            if fh is not None and not fh.closed:
                fh.close()


def sidecar_safe_label(label: object) -> bool:
    """True when ``label`` round-trips through the labels sidecar.

    The sidecar stores one ``str(label)`` token per line and reads it back
    through :func:`repro.graph.edgefile.parse_vertex`; ints and
    whitespace-free, non-numeric strings survive, anything else does not.
    """
    from repro.graph.edgefile import parse_vertex

    token = str(label)
    if not token or token != token.strip() or len(token.split()) != 1:
        return False
    return parse_vertex(token) == label


def write_block_file(path: str, indptr: Sequence[int],
                     adjacency: Sequence[int],
                     labels: Optional[Sequence[object]] = None,
                     volatile_labels: bool = False) -> None:
    """Write fully-materialized CSR arrays as a block file at ``path``.

    The array-at-once counterpart of the streaming writer (used by
    :meth:`CSRGraph.from_graph <repro.graph.csr.CSRGraph.from_graph>` when
    spilling an in-RAM build to disk).  ``labels=None`` marks identity
    labels; ``volatile_labels=True`` stamps the file as an engine-internal
    spill whose labels stay in RAM (not standalone-loadable).
    """
    writer = BlockFileWriter(path, len(indptr) - 1, len(adjacency))
    try:
        chunk = 1 << 17
        for start in range(0, len(indptr), chunk):
            writer.write_indptr(array("q", indptr[start:start + chunk]))
        for start in range(0, len(adjacency), chunk):
            writer.write_adjacency(array("q",
                                         adjacency[start:start + chunk]))
        if volatile_labels:
            writer.finalize(labels_flag=LABELS_VOLATILE)
        else:
            writer.finalize(labels=labels)
    except BaseException:
        writer.abort()
        raise


def read_sidecar_labels(path: str, expected: int) -> List[object]:
    """Read the ``<path>.labels`` sidecar back into a label list."""
    from repro.graph.edgefile import parse_vertex

    sidecar = path + LABELS_SUFFIX
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            labels = [parse_vertex(line.rstrip("\n")) for line in handle]
    except FileNotFoundError:
        raise GraphFormatError(
            f"{path}: labels sidecar {sidecar!r} is missing") from None
    if len(labels) != expected:
        raise GraphFormatError(
            f"{sidecar}: {len(labels)} labels for {expected} vertices")
    return labels


def _cleanup_label_store(state: dict) -> None:
    """Finalizer shared by LazyLabelStore.close() and GC: unmap and close."""
    mm = state.pop("mm", None)
    if mm is not None:
        mm.close()
    fh = state.pop("fh", None)
    if fh is not None:
        fh.close()


class LazyLabelStore:
    """Sequence view over a ``<path>.labels`` sidecar, decoded on demand.

    Reopening a string-labeled block file used to read the whole sidecar
    into a Python list and build an n-entry index dict before the first
    query ran — O(n) RAM and time just to *open* the graph.  This store
    makes :func:`load_csr` reopen O(1): construction only checks that the
    sidecar exists; the first label access memory-maps the sidecar and
    scans it once into a compact line-offset table (8 bytes per vertex,
    in lieu of n boxed labels), after which ``labels[i]`` decodes one line
    straight out of the page cache.  Iteration streams the mapping without
    ever materializing the list.

    The count-vs-header validation the eager reader performed moves to
    that first access; a sidecar that was truncated after the block was
    finalized still raises :class:`~repro.errors.GraphFormatError`, just
    lazily.  Not thread-safe (one-shot index build), matching every other
    per-snapshot scratch structure in this package.
    """

    __slots__ = ("path", "expected", "_offsets", "_mm", "_state",
                 "_finalizer", "__weakref__")

    def __init__(self, path: str, expected: int) -> None:
        sidecar = path + LABELS_SUFFIX
        if not os.path.exists(sidecar):
            raise GraphFormatError(
                f"{path}: labels sidecar {sidecar!r} is missing")
        self.path = sidecar
        self.expected = expected
        self._offsets: Optional["array[int]"] = None
        self._mm: Optional[mmap.mmap] = None
        self._state: dict = {}
        self._finalizer = weakref.finalize(
            self, _cleanup_label_store, self._state)

    def _ensure(self) -> None:
        """Map the sidecar and build the line-offset table (first use only)."""
        if self._offsets is not None:
            return
        fh = open(self.path, "rb")
        try:
            if os.fstat(fh.fileno()).st_size == 0:
                mm = None
            else:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            fh.close()
            raise
        offsets = array("q", [0])
        if mm is not None:
            find = mm.find
            pos = find(b"\n", 0)
            while pos != -1:
                offsets.append(pos + 1)
                pos = find(b"\n", pos + 1)
            if offsets[-1] != len(mm):
                # No trailing newline: the final partial line is a label.
                offsets.append(len(mm))
        if len(offsets) - 1 != self.expected:
            if mm is not None:
                mm.close()
            fh.close()
            raise GraphFormatError(
                f"{self.path}: {len(offsets) - 1} labels for "
                f"{self.expected} vertices")
        self._state.update(mm=mm, fh=fh)
        self._mm = mm
        self._offsets = offsets

    def __len__(self) -> int:
        return self.expected

    def __getitem__(self, index: int) -> object:
        """Decode the label of vertex ``index`` straight from the mapping."""
        from repro.graph.edgefile import parse_vertex

        self._ensure()
        if index < 0:
            index += self.expected
        if not 0 <= index < self.expected:
            raise IndexError(index)
        offsets = self._offsets
        assert offsets is not None and self._mm is not None
        raw = self._mm[offsets[index]:offsets[index + 1]]
        return parse_vertex(raw.decode("utf-8").rstrip("\n"))

    def __iter__(self):
        """Stream every label in vertex order without materializing a list."""
        from repro.graph.edgefile import parse_vertex

        self._ensure()
        if self._mm is None:
            return
        offsets = self._offsets
        assert offsets is not None
        mm = self._mm
        for i in range(self.expected):
            raw = mm[offsets[i]:offsets[i + 1]]
            yield parse_vertex(raw.decode("utf-8").rstrip("\n"))

    def __add__(self, other: Sequence[object]) -> List[object]:
        """Materialized concatenation, for the delta-rebuild label path."""
        return list(self) + list(other)

    def __eq__(self, other: object) -> bool:
        """Element-wise equality against any sequence (materializes self)."""
        if isinstance(other, (list, tuple, range, LazyLabelStore)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        """Path and size; never forces the lazy read."""
        return (f"LazyLabelStore({self.path!r}, n={self.expected}, "
                f"loaded={self._offsets is not None})")

    def close(self) -> None:
        """Release the sidecar mapping (idempotent; safe before first use)."""
        if self._finalizer.alive:
            self._finalizer()
        self._offsets = None
        self._mm = None


class LazyLabelIndex:
    """``index_of`` mapping over a :class:`LazyLabelStore`, built on demand.

    The reverse ``label -> index`` dict is only worth n dict entries of RAM
    once somebody actually resolves a label (``handle_of`` / ``index``);
    decompositions and exports that only ever go index→label never pay for
    it.  Read surface mirrors :class:`~repro.graph.csr.IdentityIndex`:
    ``[]``, ``in``, ``get``, ``len``, iteration, ``items``.
    """

    __slots__ = ("_store", "_index")

    def __init__(self, store: LazyLabelStore) -> None:
        self._store = store
        self._index: Optional[dict] = None

    def _ensure(self) -> dict:
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self._store)}
        return self._index

    def __getitem__(self, label: object) -> int:
        return self._ensure()[label]

    def __contains__(self, label: object) -> bool:
        return label in self._ensure()

    def get(self, label: object, default: Optional[int] = None
            ) -> Optional[int]:
        """Index of ``label``, or ``default`` when unknown."""
        return self._ensure().get(label, default)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self):
        return iter(self._ensure())

    def items(self):
        """``(label, index)`` pairs, mirroring ``dict.items``."""
        return self._ensure().items()

    def keys(self):
        """Label view, mirroring ``dict.keys`` (lets ``dict(index)`` work)."""
        return self._ensure().keys()


def load_csr(path: str, delete_on_close: bool = False):
    """Open a finalized block file as an mmap-backed ``CSRGraph``.

    Labels come back per the header flag, and in O(1) either way: identity
    labels materialize as a ``range`` (no per-vertex cost), sidecar labels
    become a :class:`LazyLabelStore` / :class:`LazyLabelIndex` pair that
    memory-maps ``<path>.labels`` on first access (a missing sidecar is
    still reported here, at open time), and a volatile-labels file (an
    engine-internal spill) is refused — it was never meant to outlive its
    process.
    """
    from repro.graph.csr import CSRGraph, IdentityIndex

    storage = MmapCSRStorage(path, delete_on_close=delete_on_close)
    try:
        n = storage.num_vertices
        if storage.labels_flag == LABELS_IDENTITY:
            labels: Sequence[object] = range(n)
            index_of: object = IdentityIndex(n)
        elif storage.labels_flag == LABELS_SIDECAR:
            store = LazyLabelStore(storage.path, n)
            # Closing (or finalizing) the block storage closes the label
            # mapping too, so the sidecar unlink of a temp spill never
            # races an open map.
            storage._state["extra_close"] = (store.close,)
            labels = store
            index_of = LazyLabelIndex(store)
        else:
            raise GraphFormatError(
                f"{path}: block stores no labels (an engine-internal "
                f"spill); rebuild it with stream_load or from_graph")
    except BaseException:
        storage.close()
        raise
    return CSRGraph(storage.indptr, storage.adjacency, labels,
                    index_of, source_version=None, storage=storage)

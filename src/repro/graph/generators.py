"""Synthetic graph generators.

These generators are the stand-ins for the paper's thirteen real-world
datasets (see DESIGN.md §3).  Each family of real graphs is matched by a
generator that reproduces its salient structural features:

* social networks (FBco, doub, sytb, hyves, lj)  →  Barabási–Albert /
  power-law cluster graphs (heavy-tailed degrees, small diameter);
* collaboration networks (jazz, caHe, caAs)  →  relaxed caveman / planted
  partition graphs (overlapping dense communities);
* biological networks (coli, cele)  →  sparse power-law cluster graphs;
* road networks (rnPA, rnTX)  →  perturbed 2-D grids (near-constant degree,
  huge diameter);
* co-purchasing (amzn)  →  planted partition with many small communities.

All generators accept a ``seed`` and are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.graph.graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


# --------------------------------------------------------------------- #
# deterministic small graphs
# --------------------------------------------------------------------- #
def empty_graph(n: int) -> Graph:
    """Return a graph with ``n`` isolated vertices labelled ``0..n-1``."""
    if n < 0:
        raise ParameterError("n must be non-negative")
    return Graph(vertices=range(n))


def complete_graph(n: int) -> Graph:
    """Return the complete graph K_n."""
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def cycle_graph(n: int) -> Graph:
    """Return the cycle C_n (requires ``n >= 3``)."""
    if n < 3:
        raise ParameterError("a cycle needs at least 3 vertices")
    g = empty_graph(n)
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def path_graph(n: int) -> Graph:
    """Return the path P_n on ``n`` vertices."""
    g = empty_graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def star_graph(n: int) -> Graph:
    """Return the star with center ``0`` and ``n`` leaves ``1..n``."""
    g = empty_graph(n + 1)
    for leaf in range(1, n + 1):
        g.add_edge(0, leaf)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` 2-D grid graph.

    Vertices are labelled ``r * cols + c``.
    """
    if rows <= 0 or cols <= 0:
        raise ParameterError("rows and cols must be positive")
    g = empty_graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


# --------------------------------------------------------------------- #
# random graph models
# --------------------------------------------------------------------- #
def erdos_renyi_graph(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """Return a G(n, p) Erdős–Rényi random graph."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError("edge probability p must be in [0, 1]")
    rng = _rng(seed)
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def barabasi_albert_graph(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``m`` existing vertices chosen proportionally
    to their degree (the classic model for social-network-like degree
    distributions).
    """
    if m < 1 or m >= n:
        raise ParameterError("BA model requires 1 <= m < n")
    rng = _rng(seed)
    g = empty_graph(n)
    # Start from a star over the first m+1 vertices so every vertex has degree >= 1.
    repeated: List[int] = []
    for v in range(1, m + 1):
        g.add_edge(0, v)
        repeated.extend((0, v))
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            g.add_edge(new, t)
            repeated.extend((new, t))
    return g


def watts_strogatz_graph(n: int, k: int, p: float, seed: Optional[int] = None) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    Starts from a ring lattice where every vertex is joined to its ``k``
    nearest neighbours and rewires each edge with probability ``p``.
    """
    if k % 2 != 0 or k < 2 or k >= n:
        raise ParameterError("WS model requires even k with 2 <= k < n")
    if not 0.0 <= p <= 1.0:
        raise ParameterError("rewiring probability p must be in [0, 1]")
    rng = _rng(seed)
    g = empty_graph(n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(v, (v + offset) % n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            if rng.random() < p and g.has_edge(v, u):
                candidates = [w for w in range(n) if w != v and not g.has_edge(v, w)]
                if candidates:
                    g.remove_edge(v, u)
                    g.add_edge(v, rng.choice(candidates))
    return g


def powerlaw_cluster_graph(n: int, m: int, triangle_p: float,
                           seed: Optional[int] = None) -> Graph:
    """Return a Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but, after each preferential attachment, with
    probability ``triangle_p`` a triangle is closed by also linking to a
    random neighbour of the chosen target.  Good stand-in for biological and
    social networks with high clustering.
    """
    if m < 1 or m >= n:
        raise ParameterError("powerlaw cluster model requires 1 <= m < n")
    if not 0.0 <= triangle_p <= 1.0:
        raise ParameterError("triangle_p must be in [0, 1]")
    rng = _rng(seed)
    g = empty_graph(n)
    repeated: List[int] = []
    for v in range(1, m + 1):
        g.add_edge(0, v)
        repeated.extend((0, v))
    for new in range(m + 1, n):
        added = 0
        while added < m:
            target = rng.choice(repeated)
            if target == new or g.has_edge(new, target):
                continue
            g.add_edge(new, target)
            repeated.extend((new, target))
            added += 1
            if rng.random() < triangle_p:
                candidates = [w for w in g.neighbors(target)
                              if w != new and not g.has_edge(new, w)]
                if candidates:
                    w = rng.choice(candidates)
                    g.add_edge(new, w)
                    repeated.extend((new, w))
                    added += 1
    return g


def caveman_graph(num_cliques: int, clique_size: int) -> Graph:
    """Return a connected caveman graph: cliques joined in a ring.

    Each clique of size ``clique_size`` has one edge rewired to the next
    clique so the result is connected.
    """
    if num_cliques < 1 or clique_size < 2:
        raise ParameterError("need at least one clique of size >= 2")
    g = empty_graph(num_cliques * clique_size)
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j)
    if num_cliques > 1:
        for c in range(num_cliques):
            this_first = c * clique_size
            next_first = ((c + 1) % num_cliques) * clique_size
            g.add_edge(this_first, next_first)
    return g


def relaxed_caveman_graph(num_cliques: int, clique_size: int, rewire_p: float,
                          seed: Optional[int] = None) -> Graph:
    """Return a relaxed caveman graph (cliques with randomly rewired edges).

    A standard model of collaboration networks: dense communities plus a few
    cross-community edges.
    """
    if not 0.0 <= rewire_p <= 1.0:
        raise ParameterError("rewire_p must be in [0, 1]")
    rng = _rng(seed)
    g = caveman_graph(num_cliques, clique_size)
    n = num_cliques * clique_size
    for u, v in list(g.edges()):
        if rng.random() < rewire_p:
            w = rng.randrange(n)
            if w != u and not g.has_edge(u, w):
                g.remove_edge(u, v)
                g.add_edge(u, w)
    return g


def planted_partition_graph(num_groups: int, group_size: int, p_in: float,
                            p_out: float, seed: Optional[int] = None) -> Graph:
    """Return a planted-partition (stochastic block) graph.

    Vertices in the same group are joined with probability ``p_in``; vertices
    in different groups with probability ``p_out``.
    """
    if not (0.0 <= p_in <= 1.0 and 0.0 <= p_out <= 1.0):
        raise ParameterError("p_in and p_out must be in [0, 1]")
    rng = _rng(seed)
    n = num_groups * group_size
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            same_group = (u // group_size) == (v // group_size)
            p = p_in if same_group else p_out
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_tree(n: int, seed: Optional[int] = None) -> Graph:
    """Return a uniformly random recursive tree on ``n`` vertices."""
    if n < 1:
        raise ParameterError("a tree needs at least one vertex")
    rng = _rng(seed)
    g = empty_graph(n)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def road_network_graph(rows: int, cols: int, extra_edge_p: float = 0.05,
                       removal_p: float = 0.05,
                       seed: Optional[int] = None) -> Graph:
    """Return a road-network-like graph: a perturbed 2-D grid.

    A fraction ``extra_edge_p`` of diagonal short-cuts is added and a fraction
    ``removal_p`` of grid edges is removed (keeping the graph connected when
    possible), which yields the low-degree, high-diameter structure of the
    paper's rnPA / rnTX datasets.
    """
    rng = _rng(seed)
    g = grid_graph(rows, cols)
    # Add a few diagonal shortcuts.
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < extra_edge_p:
                g.add_edge(r * cols + c, (r + 1) * cols + (c + 1))
    # Remove some edges, but never isolate a vertex.
    for u, v in list(g.edges()):
        if rng.random() < removal_p and g.degree(u) > 1 and g.degree(v) > 1:
            g.remove_edge(u, v)
    return g


def disjoint_union(graphs: Sequence[Graph]) -> Tuple[Graph, List[dict]]:
    """Return the disjoint union of ``graphs`` with integer relabeling.

    Returns the union graph and, per input graph, the mapping from its
    original labels to the new integer labels.
    """
    union = Graph()
    mappings: List[dict] = []
    offset = 0
    for g in graphs:
        mapping = {}
        for i, v in enumerate(sorted(g.vertices(), key=repr)):
            mapping[v] = offset + i
            union.add_vertex(offset + i)
        for u, v in g.edges():
            union.add_edge(mapping[u], mapping[v])
        offset += g.num_vertices
        mappings.append(mapping)
    return union, mappings

"""Shared edge-list text conventions: one parser/formatter for every path.

Edge-list files flow through the library from several directions — the plain
readers (:mod:`repro.graph.io`), the dataset export command
(:func:`repro.datasets.registry.export_edge_list`), the real-dataset fetch
pipeline (:mod:`repro.datasets.fetch`) and the out-of-core streaming loader
(:mod:`repro.graph.stream_load`).  They all agree on one dialect, defined
here exactly once:

* lines starting with ``#`` or ``%`` are comments (the SNAP and KONECT
  conventions, matching the datasets the paper uses);
* a line with two or more whitespace-separated tokens is an edge between
  the first two tokens (extra columns — weights, timestamps — are ignored);
* a line with exactly one token declares an isolated vertex (the
  round-trip convention for graphs with degree-0 vertices);
* vertex tokens parse as ``int`` when possible, else stay strings, so
  ``"01"`` and ``"1"`` denote the same vertex;
* self-loops are dropped but keep their endpoint as a vertex (loops are
  meaningless for (k,h)-cores).

The canonical *writer* additionally normalizes endpoint order and sorts all
lines so that equal graphs produce byte-identical files on every platform —
the property index builds and benchmark fixtures rely on.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Iterator, List, Tuple, Union

from repro.graph.graph import Graph, Vertex

PathOrFile = Union[str, os.PathLike, IO[str]]

#: Line prefixes treated as comments (SNAP uses ``#``, KONECT uses ``%``).
COMMENT_PREFIXES = ("#", "%")


def parse_vertex(token: str) -> Vertex:
    """Interpret a vertex token as an ``int`` when possible, else a string."""
    try:
        return int(token)
    except ValueError:
        return token


def vertex_sort_key(v: Vertex) -> Tuple[str, str]:
    """Total order over mixed-type vertices (type name first, then repr)."""
    return (repr(type(v)), repr(v))


def split_line(line: str) -> List[str]:
    """Tokenize one stripped, non-comment edge-list line."""
    return line.split()


def is_comment(line: str) -> bool:
    """True for blank lines and ``#``/``%`` comment lines (pre-stripped)."""
    return not line or line.startswith(COMMENT_PREFIXES)


def iter_records(handle: Iterable[str]
                 ) -> Iterator[Tuple[int, List[Vertex]]]:
    """Yield ``(line_number, parsed_tokens)`` for every payload line.

    Comments and blank lines are skipped; tokens beyond the second are
    dropped (SNAP/KONECT weight and timestamp columns).  A single-token
    record is an isolated vertex; callers decide how to treat self-loops.
    """
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if is_comment(line):
            continue
        tokens = split_line(line)
        yield line_number, [parse_vertex(t) for t in tokens[:2]]


def canonical_lines(graph: Graph) -> List[str]:
    """Byte-stable edge-list lines for ``graph`` (sorted, loop-free).

    Each edge appears once with its endpoints in :func:`vertex_sort_key`
    order; isolated vertices become bare-id lines; the whole list is
    sorted.  Equal graphs therefore serialize identically regardless of
    insertion order.
    """
    lines = []
    for u, v in graph.edges():
        a, b = sorted((u, v), key=vertex_sort_key)
        lines.append(f"{a} {b}")
    for v in graph.vertices():
        if graph.degree(v) == 0:
            lines.append(f"{v}")
    lines.sort()
    return lines


def write_canonical(graph: Graph, target: PathOrFile,
                    header: str = "") -> None:
    """Write ``graph`` to ``target`` in the canonical byte-stable form.

    ``header`` (when non-empty) is emitted first as a ``#`` comment line;
    pass the bare text, without the leading ``#`` or trailing newline.
    """
    lines = canonical_lines(graph)
    if hasattr(target, "write"):
        handle, should_close = target, False
    else:
        handle, should_close = open(target, "w", encoding="utf-8"), True
    try:
        if header:
            handle.write(f"# {header}\n")
        handle.write("\n".join(lines) + "\n" if lines else "")
    finally:
        if should_close:
            handle.close()

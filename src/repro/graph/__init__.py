"""Graph substrate: data structure, I/O, generators, sampling, statistics.

The library works on undirected, unweighted graphs, represented by
:class:`repro.graph.Graph` (a dict-of-sets adjacency structure with O(1)
vertex/edge membership tests).  The peeling algorithms never copy graphs;
they operate on "alive" vertex sets passed to the traversal primitives, or on
:class:`repro.graph.SubgraphView` objects when a persistent restriction is
convenient.

For the performance-oriented decomposition path, :class:`repro.graph.CSRGraph`
offers an immutable, int-relabeled compressed-sparse-row snapshot of a
:class:`Graph`; see :mod:`repro.core.backends` for how the algorithms select
between the two representations.

The storage tier (:mod:`repro.graph.storage`) decides where a snapshot's
arrays live — in RAM or in an mmap-backed on-disk block file — and
:func:`repro.graph.stream_load.stream_load` builds such block files from
edge lists of any size under a bounded memory budget.  A finalized block
reopens as a :class:`CSRGraph` via :func:`load_csr`, and
:class:`FrozenGraphView` presents it through the read-only subset of the
:class:`Graph` API so every decomposition entry point accepts it.
"""

from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph, csr_suitable
from repro.graph.views import FrozenGraphView, SubgraphView
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    read_adjacency_list,
    write_adjacency_list,
)
from repro.graph.storage import estimated_payload_bytes, load_csr, resolve_storage
from repro.graph.stream_load import LoadStats, stream_load, stream_load_with_stats
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    empty_graph,
    erdos_renyi_graph,
    barabasi_albert_graph,
    watts_strogatz_graph,
    grid_graph,
    road_network_graph,
    caveman_graph,
    relaxed_caveman_graph,
    powerlaw_cluster_graph,
    random_tree,
    planted_partition_graph,
)
from repro.graph.sampling import snowball_sample, random_vertex_sample, random_edge_sample
from repro.graph.stats import GraphSummary, summarize, density, degree_histogram

__all__ = [
    "Graph",
    "CSRGraph",
    "csr_suitable",
    "SubgraphView",
    "FrozenGraphView",
    "estimated_payload_bytes",
    "load_csr",
    "resolve_storage",
    "LoadStats",
    "stream_load",
    "stream_load_with_stats",
    "read_edge_list",
    "write_edge_list",
    "read_adjacency_list",
    "write_adjacency_list",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "empty_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "grid_graph",
    "road_network_graph",
    "caveman_graph",
    "relaxed_caveman_graph",
    "powerlaw_cluster_graph",
    "random_tree",
    "planted_partition_graph",
    "snowball_sample",
    "random_vertex_sample",
    "random_edge_sample",
    "GraphSummary",
    "summarize",
    "density",
    "degree_histogram",
]

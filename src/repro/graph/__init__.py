"""Graph substrate: data structure, I/O, generators, sampling, statistics.

The library works on undirected, unweighted graphs, represented by
:class:`repro.graph.Graph` (a dict-of-sets adjacency structure with O(1)
vertex/edge membership tests).  The peeling algorithms never copy graphs;
they operate on "alive" vertex sets passed to the traversal primitives, or on
:class:`repro.graph.SubgraphView` objects when a persistent restriction is
convenient.

For the performance-oriented decomposition path, :class:`repro.graph.CSRGraph`
offers an immutable, int-relabeled compressed-sparse-row snapshot of a
:class:`Graph`; see :mod:`repro.core.backends` for how the algorithms select
between the two representations.
"""

from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph, csr_suitable
from repro.graph.views import SubgraphView
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    read_adjacency_list,
    write_adjacency_list,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    empty_graph,
    erdos_renyi_graph,
    barabasi_albert_graph,
    watts_strogatz_graph,
    grid_graph,
    road_network_graph,
    caveman_graph,
    relaxed_caveman_graph,
    powerlaw_cluster_graph,
    random_tree,
    planted_partition_graph,
)
from repro.graph.sampling import snowball_sample, random_vertex_sample, random_edge_sample
from repro.graph.stats import GraphSummary, summarize, density, degree_histogram

__all__ = [
    "Graph",
    "CSRGraph",
    "csr_suitable",
    "SubgraphView",
    "read_edge_list",
    "write_edge_list",
    "read_adjacency_list",
    "write_adjacency_list",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "empty_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "grid_graph",
    "road_network_graph",
    "caveman_graph",
    "relaxed_caveman_graph",
    "powerlaw_cluster_graph",
    "random_tree",
    "planted_partition_graph",
    "snowball_sample",
    "random_vertex_sample",
    "random_edge_sample",
    "GraphSummary",
    "summarize",
    "density",
    "degree_histogram",
]

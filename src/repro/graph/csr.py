"""Compressed sparse row (CSR) graph backend.

:class:`CSRGraph` is an immutable, int-relabeled snapshot of a
:class:`~repro.graph.graph.Graph`: vertices become consecutive indices
``0..n-1`` and adjacency is stored in two flat arrays,

* ``indptr`` — length ``n + 1``; the neighbors of vertex ``i`` occupy
  ``adjacency[indptr[i]:indptr[i + 1]]``,
* ``adjacency`` — length ``2·|E|``; neighbor indices, sorted per vertex.

A relabeling layer (``labels`` / ``index_of``) maps between original vertex
objects and indices, so any hashable vertex type works; graphs whose vertices
are already integers simply pay one dict lookup per translation at the API
boundary and nothing inside the traversal loops.

Both arrays are plain Python lists rather than ``array.array``: the hot
h-bounded BFS (:mod:`repro.traversal.array_bfs`) iterates neighbor *slices*,
and list slices hand back already-boxed ints, whereas ``array`` slices would
re-box every element on each visit.  The flat layout — not the element
container — is what buys the locality and the cheap slice-based neighbor
iteration.
"""

from __future__ import annotations

import os
import tempfile
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.graph import Graph, Vertex
from repro.graph.storage import (
    BLOCK_SUFFIX,
    LazyLabelIndex,
    MmapCSRStorage,
    _env_threshold,
    estimated_payload_bytes,
    resolve_storage,
    sidecar_safe_label,
    write_block_file,
)

#: Minimum vertex count for ``backend="auto"`` to choose CSR when no explicit
#: threshold (keyword or ``KH_CORE_CSR_THRESHOLD`` env var) is given.  Zero
#: preserves the historical behavior: any integer-vertex graph opts in.
DEFAULT_CSR_AUTO_THRESHOLD = 0

#: Environment variable overriding :data:`DEFAULT_CSR_AUTO_THRESHOLD`.
CSR_THRESHOLD_ENV_VAR = "KH_CORE_CSR_THRESHOLD"

#: Minimum vertex count for ``backend="auto"`` to step up from the
#: pure-Python CSR engine to the vectorized NumPy engine (when NumPy is
#: importable).  Below this size the per-level NumPy dispatch overhead beats
#: the win from vectorized frontier expansion; the interpreted CSR loop is
#: faster on tiny graphs.
DEFAULT_NUMPY_AUTO_THRESHOLD = 512

#: Environment variable overriding :data:`DEFAULT_NUMPY_AUTO_THRESHOLD`.
NUMPY_THRESHOLD_ENV_VAR = "KH_CORE_NUMPY_THRESHOLD"

#: Minimum vertex count for ``backend="auto"`` to step up from the NumPy
#: engine to the compiled native engine (when Numba is importable).  The
#: compiled kernels beat every interpreter at any size, but on tiny graphs
#: the whole decomposition is microseconds either way and the first-call
#: kernel-cache lookup is not worth scheduling; above this size the
#: frontier-bound workloads the NumPy engine leaves on the table dominate.
DEFAULT_NATIVE_AUTO_THRESHOLD = 2048

#: Environment variable overriding :data:`DEFAULT_NATIVE_AUTO_THRESHOLD`.
NATIVE_THRESHOLD_ENV_VAR = "KH_CORE_NATIVE_THRESHOLD"

#: Cache-locality relabeling strategies accepted by
#: :meth:`CSRGraph.from_graph` (``None`` behaves like ``"none"``).
RELABEL_STRATEGIES = ("none", "degree", "bfs")


class IdentityIndex:
    """``index_of`` mapping for snapshots whose labels are exactly ``0..n-1``.

    Behaves like the dict ``{i: i for i in range(n)}`` for the read
    operations the library performs — ``[]``, ``in``, ``get``, ``len``,
    iteration — without materializing n entries.  Stream-loaded graphs with
    contiguous integer ids use this (paired with a ``range`` for
    ``labels``), making the relabeling layer free at any scale.
    """

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __getitem__(self, label: Vertex) -> int:
        if type(label) is int and 0 <= label < self.n:
            return label
        raise KeyError(label)

    def __contains__(self, label: object) -> bool:
        return type(label) is int and 0 <= label < self.n  # type: ignore[operator]

    def get(self, label: Vertex, default: Optional[int] = None
            ) -> Optional[int]:
        """Index of ``label``, or ``default`` when out of range."""
        if type(label) is int and 0 <= label < self.n:
            return label
        return default

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(range(self.n))

    def items(self):
        """``(label, index)`` pairs, mirroring ``dict.items``."""
        return ((i, i) for i in range(self.n))


class CSRGraph:
    """Flat-array adjacency snapshot of an undirected :class:`Graph`.

    Instances are produced by :meth:`from_graph` (or the out-of-core
    loaders — see :meth:`from_edge_file`) and never mutated; the peeling
    algorithms express vertex deletions through "alive" masks instead of
    touching the structure (see :mod:`repro.core.backends`).

    The arrays live in one of the storage tiers of
    :mod:`repro.graph.storage`: plain RAM lists (``storage`` attribute
    ``None`` or a :class:`~repro.graph.storage.RamCSRStorage`) or zero-copy
    views into an mmap-backed block file
    (:class:`~repro.graph.storage.MmapCSRStorage`).  Every query below is
    storage-agnostic — both tiers expose int64 elements through integer
    indexing and slice iteration.

    Example
    -------
    >>> from repro.graph import Graph
    >>> csr = CSRGraph.from_graph(Graph([("a", "b"), ("b", "c")]))
    >>> csr.num_vertices, csr.num_edges
    (3, 2)
    >>> csr.neighbors_of_label("b") == {"a", "c"}
    True
    """

    __slots__ = ("indptr", "adjacency", "labels", "index_of",
                 "source_version", "storage")

    def __init__(self, indptr: Sequence[int], adjacency: Sequence[int],
                 labels: Sequence[Vertex],
                 index_of: Optional[Union[Dict[Vertex, int],
                                          IdentityIndex,
                                          LazyLabelIndex]] = None,
                 source_version: Optional[int] = None,
                 storage: Optional[object] = None) -> None:
        self.indptr = indptr
        self.adjacency = adjacency
        self.labels = labels
        self.index_of: Union[Dict[Vertex, int], IdentityIndex,
                             LazyLabelIndex] = (
            index_of if index_of is not None
            else {v: i for i, v in enumerate(labels)})
        #: ``Graph.version`` of the source graph at snapshot time (None for
        #: hand-assembled instances).  Lets consumers detect snapshots taken
        #: before a mutation even when |V| and |E| happen to match.
        self.source_version = source_version
        #: Storage backend owning the arrays (None for plain RAM lists).
        #: Close it (:meth:`close`) to release an mmap-backed snapshot's
        #: file mapping.
        self.storage = storage

    @classmethod
    def from_graph(cls, graph: Graph,
                   relabel: Optional[str] = None,
                   storage: str = "ram",
                   storage_path: Optional[str] = None,
                   storage_dir: Optional[str] = None) -> "CSRGraph":
        """Relabel ``graph`` to ``0..n-1`` and pack adjacency into flat arrays.

        By default, vertex order follows the graph's (deterministic)
        insertion order; neighbor indices are sorted per vertex, which keeps
        traversal order deterministic and slightly improves locality.

        ``relabel`` selects a cache-locality permutation instead (see
        :func:`relabel_order`): ``"degree"`` enumerates vertices in
        degree-descending order, ``"bfs"`` in a breadth-first order seeded at
        the highest-degree vertex of each component.  Either way the
        ``labels`` / ``index_of`` pair *is* the inverse mapping, so results
        expressed in label space (core numbers, h-degrees, counters) are
        unaffected — only the internal index enumeration (and therefore
        traversal order and memory-access pattern) changes.

        ``storage`` selects the tier the arrays end up in: ``"ram"`` (the
        default — plain lists), ``"mmap"`` (the build is spilled to a block
        file and re-opened as zero-copy mappings), or ``"auto"`` (mmap only
        when the estimated payload clears ``KH_CORE_MMAP_THRESHOLD``).
        ``storage_path`` persists the block file at a chosen location
        (with a labels sidecar, so :func:`~repro.graph.storage.load_csr`
        can re-open it later); otherwise an unlinked-on-close temp file
        under ``storage_dir`` is used.  Note the source graph is already
        in RAM here — the spill bounds the *decomposition's* footprint,
        not the build's; for end-to-end bounded loading use
        :meth:`from_edge_file`.
        """
        labels = relabel_order(graph, relabel)
        index_of = {v: i for i, v in enumerate(labels)}
        indptr: List[int] = [0] * (len(labels) + 1)
        adjacency: List[int] = []
        for i, v in enumerate(labels):
            neighbors = sorted(index_of[u] for u in graph.neighbors(v))
            adjacency.extend(neighbors)
            indptr[i + 1] = len(adjacency)
        resolved = resolve_storage(
            storage, estimated_payload_bytes(len(labels),
                                             len(adjacency) // 2))
        if resolved == "ram":
            return cls(indptr, adjacency, labels, index_of,
                       source_version=graph.version)
        return cls._spill_to_mmap(indptr, adjacency, labels, index_of,
                                  graph.version, storage_path, storage_dir)

    @classmethod
    def _spill_to_mmap(cls, indptr: List[int], adjacency: List[int],
                       labels: List[Vertex], index_of: Dict[Vertex, int],
                       source_version: Optional[int],
                       storage_path: Optional[str],
                       storage_dir: Optional[str]) -> "CSRGraph":
        """Write built arrays to a block file and re-open them mmap-backed."""
        identity = all(
            type(v) is int and v == i for i, v in enumerate(labels))
        persist = storage_path is not None
        if persist:
            path = storage_path
        else:
            fd, path = tempfile.mkstemp(suffix=BLOCK_SUFFIX,
                                        dir=storage_dir,
                                        prefix="kh-core-csr-")
            os.close(fd)
        sidecar: Optional[List[Vertex]] = None
        volatile = False
        if not identity:
            if persist and not all(sidecar_safe_label(v) for v in labels):
                raise ParameterError(
                    "cannot persist this snapshot: a vertex label does not "
                    "round-trip through the labels sidecar (only ints and "
                    "whitespace-free non-numeric strings do)"
                )
            if persist:
                sidecar = labels
            else:
                volatile = True  # labels stay on this object, in RAM
        write_block_file(path, indptr, adjacency, labels=sidecar,
                         volatile_labels=volatile)
        mm = MmapCSRStorage(path, delete_on_close=not persist)
        return cls(mm.indptr, mm.adjacency, labels, index_of,
                   source_version=source_version, storage=mm)

    @classmethod
    def from_edge_file(cls, path: str,
                       storage: str = "auto",
                       out_path: Optional[str] = None,
                       max_ram_bytes: Optional[int] = None,
                       tmp_dir: Optional[str] = None) -> "CSRGraph":
        """Stream an edge-list file straight into a CSR snapshot.

        Runs the two-pass external-sort loader
        (:func:`repro.graph.stream_load.stream_load`) — the graph is never
        materialized as Python dicts, so peak RSS is bounded by
        ``max_ram_bytes`` regardless of file size.  Vertex ids are assigned
        indices in sorted order (ints first, ascending, then strings), not
        file order.  ``storage`` decides where the result lives: ``"mmap"``
        keeps the block file mapped (at ``out_path``, or a temp file
        deleted on close), ``"ram"`` materializes the arrays into lists and
        discards the temp block, ``"auto"`` spills to mmap only for
        payloads clearing ``KH_CORE_MMAP_THRESHOLD``.
        """
        from repro.graph.stream_load import stream_load

        resolved = resolve_storage(storage,
                                   _edge_file_payload_estimate(path))
        if resolved == "mmap":
            return stream_load(path, out_path=out_path,
                               max_ram_bytes=max_ram_bytes,
                               tmp_dir=tmp_dir)
        csr = stream_load(path, out_path=None, max_ram_bytes=max_ram_bytes,
                          tmp_dir=tmp_dir)
        try:
            return csr.to_ram()
        finally:
            csr.close()

    def rebuilt(self, graph: Graph,
                touched: Optional[Iterable[Vertex]] = None,
                relabel: Optional[str] = None) -> "CSRGraph":
        """Return a snapshot of ``graph`` reusing as much of this one as possible.

        ``touched`` is the set of vertex labels whose adjacency may differ
        from this snapshot (the endpoints of changed edges plus any new
        vertices); rows of untouched vertices are copied from the existing
        flat arrays without re-sorting, and the label/index mapping is reused
        verbatim.  New vertices are appended, so **indices of existing
        vertices are stable across the rebuild** — the property the dynamic
        maintenance engine relies on to keep handle-keyed state valid.
        (The delta path therefore preserves whatever enumeration order this
        snapshot was built with, relabeled or not.)

        Falls back to a full :meth:`from_graph` build when ``touched`` is
        ``None`` or when a vertex of this snapshot has been removed (index
        stability is impossible then); ``relabel`` is the permutation to
        re-apply on that path, so an engine's requested cache-locality
        layout survives the fallback.  An mmap-backed snapshot always takes
        the full-rebuild path — its arrays are immutable file views — and
        the rebuild lands in RAM: a graph under mutation is dict-resident
        anyway, so the out-of-core tier is for static snapshots.
        """
        if touched is None or self.storage_kind != "ram":
            return CSRGraph.from_graph(graph, relabel=relabel)
        touched_set = {v for v in touched if v in graph}
        if graph.num_vertices < len(self.labels) or any(
                label not in graph for label in self.labels):
            return CSRGraph.from_graph(graph, relabel=relabel)

        index_of = self.index_of
        added = [v for v in graph.vertices() if v not in index_of]
        if added:
            labels = self.labels + added
            index_of = dict(index_of)
            for offset, v in enumerate(added, start=len(self.labels)):
                index_of[v] = offset
            touched_set.update(added)
        else:
            labels = self.labels

        # Untouched rows are copied span-wise: one bulk slice per maximal
        # run of untouched rows (typically two spans around two touched
        # endpoints), with their indptr entries shifted by the span's
        # offset delta, instead of a Python-level loop over every row.
        old_indptr, old_adjacency = self.indptr, self.adjacency
        old_count = len(self.labels)
        indptr: List[int] = [0] * (len(labels) + 1)
        adjacency: List[int] = []
        next_row = 0

        def copy_span(stop: int) -> None:
            """Bulk-copy untouched old rows ``next_row .. stop - 1``."""
            nonlocal next_row
            if stop <= next_row:
                return
            delta = len(adjacency) - old_indptr[next_row]
            adjacency.extend(old_adjacency[old_indptr[next_row]:
                                           old_indptr[stop]])
            for j in range(next_row, stop):
                indptr[j + 1] = old_indptr[j + 1] + delta
            next_row = stop

        for i in sorted(index_of[v] for v in touched_set):
            copy_span(min(i, old_count))
            adjacency.extend(sorted(index_of[u]
                                    for u in graph.neighbors(labels[i])))
            indptr[i + 1] = len(adjacency)
            next_row = i + 1
        copy_span(old_count)
        return CSRGraph(indptr, adjacency, labels, index_of,
                        source_version=graph.version)

    # ------------------------------------------------------------------ #
    # storage tier
    # ------------------------------------------------------------------ #
    @property
    def storage_kind(self) -> str:
        """Where the arrays live: ``"ram"`` or ``"mmap"``."""
        if self.storage is None:
            return "ram"
        return self.storage.kind  # type: ignore[attr-defined]

    def to_ram(self) -> "CSRGraph":
        """Materialize this snapshot's arrays into plain RAM lists.

        Element-for-element identical to the source — indptr, adjacency,
        labels and index mapping are preserved bit-for-bit, so a
        decomposition of the copy matches one of the original exactly
        (cores, removal orders, counters).  Returns ``self`` when already
        RAM-resident.
        """
        if self.storage_kind == "ram" and isinstance(self.indptr, list):
            return self
        labels = self.labels
        if not isinstance(labels, range):
            labels = list(labels)
        return CSRGraph(list(self.indptr), list(self.adjacency), labels,
                        self.index_of, source_version=self.source_version)

    def close(self) -> None:
        """Release the storage backend, if any (no-op for RAM snapshots).

        After closing an mmap-backed snapshot its array views are invalid;
        temp-file-backed storages also unlink their block file here.
        """
        if self.storage is not None:
            self.storage.close()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # queries (index space)
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return len(self.adjacency) // 2

    def degree(self, index: int) -> int:
        """Degree of the vertex at ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def neighbors(self, index: int) -> List[int]:
        """Neighbor indices of ``index`` (a fresh list; sorted)."""
        return self.adjacency[self.indptr[index]:self.indptr[index + 1]]

    def degrees(self) -> List[int]:
        """Degree of every vertex, indexed by vertex index."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self.labels))]

    # ------------------------------------------------------------------ #
    # relabeling layer
    # ------------------------------------------------------------------ #
    def index(self, label: Vertex) -> int:
        """Return the index of the original vertex ``label``."""
        try:
            return self.index_of[label]
        except KeyError:
            raise VertexNotFoundError(label) from None

    def label(self, index: int) -> Vertex:
        """Return the original vertex stored at ``index``."""
        return self.labels[index]

    def neighbors_of_label(self, label: Vertex) -> set:
        """Neighbor *labels* of an original vertex (convenience/testing)."""
        return {self.labels[i] for i in self.neighbors(self.index(label))}

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate each undirected edge once, as an (index, index) pair."""
        indptr, adjacency = self.indptr, self.adjacency
        for v in range(len(self.labels)):
            for position in range(indptr[v], indptr[v + 1]):
                u = adjacency[position]
                if v < u:
                    yield (v, u)

    def induced_edges(self, indices: Iterable[int]) -> List[Tuple[int, int]]:
        """Edges of the subgraph induced by ``indices``, each once as ``(i, j)``
        with ``i < j``, in deterministic (sorted) order.

        Reads only the frozen flat arrays, so the result is guaranteed to
        describe this snapshot's epoch — the primitive the query service's
        subgraph-extraction endpoint is built on.
        """
        members = set(indices)
        indptr, adjacency = self.indptr, self.adjacency
        edges: List[Tuple[int, int]] = []
        for i in sorted(members):
            for j in adjacency[indptr[i]:indptr[i + 1]]:
                if j > i and j in members:
                    edges.append((i, j))
        return edges

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


def relabel_order(graph: Graph, relabel: Optional[str]) -> List[Vertex]:
    """Vertex enumeration order for a CSR build, per ``relabel`` strategy.

    * ``None`` / ``"none"`` — the graph's insertion order (the historical
      behavior).
    * ``"degree"`` — degree-descending, ties broken by insertion order.
      Hubs (and thus the most-gathered adjacency rows and ``seen`` slots)
      land at small indices, clustering the hot rows of skewed graphs.
    * ``"bfs"`` — breadth-first order seeded at the highest-degree vertex of
      each component (neighbors expanded degree-descending, ties by
      insertion order).  Neighboring vertices get nearby indices, which
      turns the frontier gathers of mesh-like graphs into near-sequential
      scans.

    The order is deterministic for any hashable vertex type — ties never
    compare vertex labels, only insertion positions.
    """
    vertices = list(graph.vertices())
    if relabel is None or relabel == "none":
        return vertices
    if relabel not in RELABEL_STRATEGIES:
        raise ParameterError(
            f"unknown relabel strategy {relabel!r}; expected one of "
            f"{RELABEL_STRATEGIES}"
        )
    position = {v: i for i, v in enumerate(vertices)}

    def rank(v: Vertex) -> Tuple[int, int]:
        """Sort key: degree-descending, ties by insertion position."""
        return (-graph.degree(v), position[v])

    by_degree = sorted(vertices, key=rank)
    if relabel == "degree":
        return by_degree

    order: List[Vertex] = []
    seen = set()
    for start in by_degree:
        if start in seen:
            continue
        seen.add(start)
        queue = deque((start,))
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in sorted(graph.neighbors(v), key=rank):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
    return order


def resolve_csr_threshold(min_vertices: Optional[int] = None) -> int:
    """Resolve the auto-backend size threshold.

    Precedence: explicit ``min_vertices`` keyword, then the
    ``KH_CORE_CSR_THRESHOLD`` environment variable, then
    :data:`DEFAULT_CSR_AUTO_THRESHOLD`.  An invalid keyword raises (it is a
    programming error); an invalid environment value warns and falls back to
    the default (see :func:`_env_threshold`).
    """
    if min_vertices is not None:
        if min_vertices < 0:
            raise ParameterError("the CSR auto-backend threshold must be >= 0")
        return min_vertices
    return _env_threshold(CSR_THRESHOLD_ENV_VAR, DEFAULT_CSR_AUTO_THRESHOLD)


def resolve_numpy_threshold(min_vertices: Optional[int] = None) -> int:
    """Resolve the minimum size for ``backend="auto"`` to prefer NumPy.

    Same precedence and hardening as :func:`resolve_csr_threshold`, reading
    ``KH_CORE_NUMPY_THRESHOLD`` and defaulting to
    :data:`DEFAULT_NUMPY_AUTO_THRESHOLD`.
    """
    if min_vertices is not None:
        if min_vertices < 0:
            raise ParameterError(
                "the NumPy auto-backend threshold must be >= 0")
        return min_vertices
    return _env_threshold(NUMPY_THRESHOLD_ENV_VAR,
                          DEFAULT_NUMPY_AUTO_THRESHOLD)


def resolve_native_threshold(min_vertices: Optional[int] = None) -> int:
    """Resolve the minimum size for ``backend="auto"`` to prefer native.

    Same precedence and hardening as :func:`resolve_csr_threshold`, reading
    ``KH_CORE_NATIVE_THRESHOLD`` and defaulting to
    :data:`DEFAULT_NATIVE_AUTO_THRESHOLD`.
    """
    if min_vertices is not None:
        if min_vertices < 0:
            raise ParameterError(
                "the native auto-backend threshold must be >= 0")
        return min_vertices
    return _env_threshold(NATIVE_THRESHOLD_ENV_VAR,
                          DEFAULT_NATIVE_AUTO_THRESHOLD)


def _edge_file_payload_estimate(path: str) -> int:
    """Rough CSR payload estimate for an edge-list file, from its size.

    A text edge line ("u v\\n") is 4+ bytes and contributes 16 bytes of
    adjacency, so the file's own size is a conservative same-order proxy —
    good enough for the coarse ram-vs-mmap ``storage="auto"`` decision,
    which only has to be right about orders of magnitude.
    """
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def csr_suitable(graph: Graph, min_vertices: Optional[int] = None) -> bool:
    """Return True if ``graph`` is "integer-friendly" for the auto backend.

    The CSR backend works for any hashable vertex type, but ``backend="auto"``
    only opts in when every vertex is a plain ``int`` (the common case for
    the synthetic generators and SNAP-style edge lists), where the relabeling
    layer is guaranteed cheap and lossless — and when the graph has at least
    ``min_vertices`` vertices, so tiny graphs can skip the snapshot build
    cost.  The threshold defaults to the ``KH_CORE_CSR_THRESHOLD``
    environment variable, falling back to
    :data:`DEFAULT_CSR_AUTO_THRESHOLD` (see :func:`resolve_csr_threshold`).
    Explicit ``backend="csr"`` requests bypass this gate entirely.
    """
    if graph.num_vertices < resolve_csr_threshold(min_vertices):
        return False
    return all(type(v) is int for v in graph.vertices())

"""Compressed sparse row (CSR) graph backend.

:class:`CSRGraph` is an immutable, int-relabeled snapshot of a
:class:`~repro.graph.graph.Graph`: vertices become consecutive indices
``0..n-1`` and adjacency is stored in two flat arrays,

* ``indptr`` — length ``n + 1``; the neighbors of vertex ``i`` occupy
  ``adjacency[indptr[i]:indptr[i + 1]]``,
* ``adjacency`` — length ``2·|E|``; neighbor indices, sorted per vertex.

A relabeling layer (``labels`` / ``index_of``) maps between original vertex
objects and indices, so any hashable vertex type works; graphs whose vertices
are already integers simply pay one dict lookup per translation at the API
boundary and nothing inside the traversal loops.

Both arrays are plain Python lists rather than ``array.array``: the hot
h-bounded BFS (:mod:`repro.traversal.array_bfs`) iterates neighbor *slices*,
and list slices hand back already-boxed ints, whereas ``array`` slices would
re-box every element on each visit.  The flat layout — not the element
container — is what buys the locality and the cheap slice-based neighbor
iteration.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.graph import Graph, Vertex

#: Minimum vertex count for ``backend="auto"`` to choose CSR when no explicit
#: threshold (keyword or ``KH_CORE_CSR_THRESHOLD`` env var) is given.  Zero
#: preserves the historical behavior: any integer-vertex graph opts in.
DEFAULT_CSR_AUTO_THRESHOLD = 0

#: Environment variable overriding :data:`DEFAULT_CSR_AUTO_THRESHOLD`.
CSR_THRESHOLD_ENV_VAR = "KH_CORE_CSR_THRESHOLD"

#: Minimum vertex count for ``backend="auto"`` to step up from the
#: pure-Python CSR engine to the vectorized NumPy engine (when NumPy is
#: importable).  Below this size the per-level NumPy dispatch overhead beats
#: the win from vectorized frontier expansion; the interpreted CSR loop is
#: faster on tiny graphs.
DEFAULT_NUMPY_AUTO_THRESHOLD = 512

#: Environment variable overriding :data:`DEFAULT_NUMPY_AUTO_THRESHOLD`.
NUMPY_THRESHOLD_ENV_VAR = "KH_CORE_NUMPY_THRESHOLD"

#: Cache-locality relabeling strategies accepted by
#: :meth:`CSRGraph.from_graph` (``None`` behaves like ``"none"``).
RELABEL_STRATEGIES = ("none", "degree", "bfs")


class CSRGraph:
    """Flat-array adjacency snapshot of an undirected :class:`Graph`.

    Instances are produced by :meth:`from_graph` and never mutated; the
    peeling algorithms express vertex deletions through "alive" masks instead
    of touching the structure (see :mod:`repro.core.backends`).

    Example
    -------
    >>> from repro.graph import Graph
    >>> csr = CSRGraph.from_graph(Graph([("a", "b"), ("b", "c")]))
    >>> csr.num_vertices, csr.num_edges
    (3, 2)
    >>> csr.neighbors_of_label("b") == {"a", "c"}
    True
    """

    __slots__ = ("indptr", "adjacency", "labels", "index_of",
                 "source_version")

    def __init__(self, indptr: List[int], adjacency: List[int],
                 labels: List[Vertex],
                 index_of: Optional[Dict[Vertex, int]] = None,
                 source_version: Optional[int] = None) -> None:
        self.indptr = indptr
        self.adjacency = adjacency
        self.labels = labels
        self.index_of: Dict[Vertex, int] = (
            index_of if index_of is not None
            else {v: i for i, v in enumerate(labels)})
        #: ``Graph.version`` of the source graph at snapshot time (None for
        #: hand-assembled instances).  Lets consumers detect snapshots taken
        #: before a mutation even when |V| and |E| happen to match.
        self.source_version = source_version

    @classmethod
    def from_graph(cls, graph: Graph,
                   relabel: Optional[str] = None) -> "CSRGraph":
        """Relabel ``graph`` to ``0..n-1`` and pack adjacency into flat arrays.

        By default, vertex order follows the graph's (deterministic)
        insertion order; neighbor indices are sorted per vertex, which keeps
        traversal order deterministic and slightly improves locality.

        ``relabel`` selects a cache-locality permutation instead (see
        :func:`relabel_order`): ``"degree"`` enumerates vertices in
        degree-descending order, ``"bfs"`` in a breadth-first order seeded at
        the highest-degree vertex of each component.  Either way the
        ``labels`` / ``index_of`` pair *is* the inverse mapping, so results
        expressed in label space (core numbers, h-degrees, counters) are
        unaffected — only the internal index enumeration (and therefore
        traversal order and memory-access pattern) changes.
        """
        labels = relabel_order(graph, relabel)
        index_of = {v: i for i, v in enumerate(labels)}
        indptr: List[int] = [0] * (len(labels) + 1)
        adjacency: List[int] = []
        for i, v in enumerate(labels):
            neighbors = sorted(index_of[u] for u in graph.neighbors(v))
            adjacency.extend(neighbors)
            indptr[i + 1] = len(adjacency)
        return cls(indptr, adjacency, labels, index_of,
                   source_version=graph.version)

    def rebuilt(self, graph: Graph,
                touched: Optional[Iterable[Vertex]] = None,
                relabel: Optional[str] = None) -> "CSRGraph":
        """Return a snapshot of ``graph`` reusing as much of this one as possible.

        ``touched`` is the set of vertex labels whose adjacency may differ
        from this snapshot (the endpoints of changed edges plus any new
        vertices); rows of untouched vertices are copied from the existing
        flat arrays without re-sorting, and the label/index mapping is reused
        verbatim.  New vertices are appended, so **indices of existing
        vertices are stable across the rebuild** — the property the dynamic
        maintenance engine relies on to keep handle-keyed state valid.
        (The delta path therefore preserves whatever enumeration order this
        snapshot was built with, relabeled or not.)

        Falls back to a full :meth:`from_graph` build when ``touched`` is
        ``None`` or when a vertex of this snapshot has been removed (index
        stability is impossible then); ``relabel`` is the permutation to
        re-apply on that path, so an engine's requested cache-locality
        layout survives the fallback.
        """
        if touched is None:
            return CSRGraph.from_graph(graph, relabel=relabel)
        touched_set = {v for v in touched if v in graph}
        if graph.num_vertices < len(self.labels) or any(
                label not in graph for label in self.labels):
            return CSRGraph.from_graph(graph, relabel=relabel)

        index_of = self.index_of
        added = [v for v in graph.vertices() if v not in index_of]
        if added:
            labels = self.labels + added
            index_of = dict(index_of)
            for offset, v in enumerate(added, start=len(self.labels)):
                index_of[v] = offset
            touched_set.update(added)
        else:
            labels = self.labels

        # Untouched rows are copied span-wise: one bulk slice per maximal
        # run of untouched rows (typically two spans around two touched
        # endpoints), with their indptr entries shifted by the span's
        # offset delta, instead of a Python-level loop over every row.
        old_indptr, old_adjacency = self.indptr, self.adjacency
        old_count = len(self.labels)
        indptr: List[int] = [0] * (len(labels) + 1)
        adjacency: List[int] = []
        next_row = 0

        def copy_span(stop: int) -> None:
            """Bulk-copy untouched old rows ``next_row .. stop - 1``."""
            nonlocal next_row
            if stop <= next_row:
                return
            delta = len(adjacency) - old_indptr[next_row]
            adjacency.extend(old_adjacency[old_indptr[next_row]:
                                           old_indptr[stop]])
            for j in range(next_row, stop):
                indptr[j + 1] = old_indptr[j + 1] + delta
            next_row = stop

        for i in sorted(index_of[v] for v in touched_set):
            copy_span(min(i, old_count))
            adjacency.extend(sorted(index_of[u]
                                    for u in graph.neighbors(labels[i])))
            indptr[i + 1] = len(adjacency)
            next_row = i + 1
        copy_span(old_count)
        return CSRGraph(indptr, adjacency, labels, index_of,
                        source_version=graph.version)

    # ------------------------------------------------------------------ #
    # queries (index space)
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return len(self.adjacency) // 2

    def degree(self, index: int) -> int:
        """Degree of the vertex at ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def neighbors(self, index: int) -> List[int]:
        """Neighbor indices of ``index`` (a fresh list; sorted)."""
        return self.adjacency[self.indptr[index]:self.indptr[index + 1]]

    def degrees(self) -> List[int]:
        """Degree of every vertex, indexed by vertex index."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self.labels))]

    # ------------------------------------------------------------------ #
    # relabeling layer
    # ------------------------------------------------------------------ #
    def index(self, label: Vertex) -> int:
        """Return the index of the original vertex ``label``."""
        try:
            return self.index_of[label]
        except KeyError:
            raise VertexNotFoundError(label) from None

    def label(self, index: int) -> Vertex:
        """Return the original vertex stored at ``index``."""
        return self.labels[index]

    def neighbors_of_label(self, label: Vertex) -> set:
        """Neighbor *labels* of an original vertex (convenience/testing)."""
        return {self.labels[i] for i in self.neighbors(self.index(label))}

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate each undirected edge once, as an (index, index) pair."""
        indptr, adjacency = self.indptr, self.adjacency
        for v in range(len(self.labels)):
            for position in range(indptr[v], indptr[v + 1]):
                u = adjacency[position]
                if v < u:
                    yield (v, u)

    def induced_edges(self, indices: Iterable[int]) -> List[Tuple[int, int]]:
        """Edges of the subgraph induced by ``indices``, each once as ``(i, j)``
        with ``i < j``, in deterministic (sorted) order.

        Reads only the frozen flat arrays, so the result is guaranteed to
        describe this snapshot's epoch — the primitive the query service's
        subgraph-extraction endpoint is built on.
        """
        members = set(indices)
        indptr, adjacency = self.indptr, self.adjacency
        edges: List[Tuple[int, int]] = []
        for i in sorted(members):
            for j in adjacency[indptr[i]:indptr[i + 1]]:
                if j > i and j in members:
                    edges.append((i, j))
        return edges

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


def relabel_order(graph: Graph, relabel: Optional[str]) -> List[Vertex]:
    """Vertex enumeration order for a CSR build, per ``relabel`` strategy.

    * ``None`` / ``"none"`` — the graph's insertion order (the historical
      behavior).
    * ``"degree"`` — degree-descending, ties broken by insertion order.
      Hubs (and thus the most-gathered adjacency rows and ``seen`` slots)
      land at small indices, clustering the hot rows of skewed graphs.
    * ``"bfs"`` — breadth-first order seeded at the highest-degree vertex of
      each component (neighbors expanded degree-descending, ties by
      insertion order).  Neighboring vertices get nearby indices, which
      turns the frontier gathers of mesh-like graphs into near-sequential
      scans.

    The order is deterministic for any hashable vertex type — ties never
    compare vertex labels, only insertion positions.
    """
    vertices = list(graph.vertices())
    if relabel is None or relabel == "none":
        return vertices
    if relabel not in RELABEL_STRATEGIES:
        raise ParameterError(
            f"unknown relabel strategy {relabel!r}; expected one of "
            f"{RELABEL_STRATEGIES}"
        )
    position = {v: i for i, v in enumerate(vertices)}

    def rank(v: Vertex) -> Tuple[int, int]:
        return (-graph.degree(v), position[v])

    by_degree = sorted(vertices, key=rank)
    if relabel == "degree":
        return by_degree

    order: List[Vertex] = []
    seen = set()
    for start in by_degree:
        if start in seen:
            continue
        seen.add(start)
        queue = deque((start,))
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in sorted(graph.neighbors(v), key=rank):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
    return order


def _env_threshold(env_var: str, default: int) -> int:
    """Parse a non-negative int threshold from the environment.

    Invalid values (non-integer or negative) *warn and fall back* to
    ``default`` instead of raising: a typo in a deployment environment
    should degrade to the default auto policy, not crash every
    decomposition entry point.
    """
    raw = os.environ.get(env_var)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"{env_var}={raw!r} is not an integer; falling back to the "
            f"default threshold ({default})",
            RuntimeWarning, stacklevel=3)
        return default
    if value < 0:
        warnings.warn(
            f"{env_var} must be >= 0, got {value}; falling back to the "
            f"default threshold ({default})",
            RuntimeWarning, stacklevel=3)
        return default
    return value


def resolve_csr_threshold(min_vertices: Optional[int] = None) -> int:
    """Resolve the auto-backend size threshold.

    Precedence: explicit ``min_vertices`` keyword, then the
    ``KH_CORE_CSR_THRESHOLD`` environment variable, then
    :data:`DEFAULT_CSR_AUTO_THRESHOLD`.  An invalid keyword raises (it is a
    programming error); an invalid environment value warns and falls back to
    the default (see :func:`_env_threshold`).
    """
    if min_vertices is not None:
        if min_vertices < 0:
            raise ParameterError("the CSR auto-backend threshold must be >= 0")
        return min_vertices
    return _env_threshold(CSR_THRESHOLD_ENV_VAR, DEFAULT_CSR_AUTO_THRESHOLD)


def resolve_numpy_threshold(min_vertices: Optional[int] = None) -> int:
    """Resolve the minimum size for ``backend="auto"`` to prefer NumPy.

    Same precedence and hardening as :func:`resolve_csr_threshold`, reading
    ``KH_CORE_NUMPY_THRESHOLD`` and defaulting to
    :data:`DEFAULT_NUMPY_AUTO_THRESHOLD`.
    """
    if min_vertices is not None:
        if min_vertices < 0:
            raise ParameterError(
                "the NumPy auto-backend threshold must be >= 0")
        return min_vertices
    return _env_threshold(NUMPY_THRESHOLD_ENV_VAR,
                          DEFAULT_NUMPY_AUTO_THRESHOLD)


def csr_suitable(graph: Graph, min_vertices: Optional[int] = None) -> bool:
    """Return True if ``graph`` is "integer-friendly" for the auto backend.

    The CSR backend works for any hashable vertex type, but ``backend="auto"``
    only opts in when every vertex is a plain ``int`` (the common case for
    the synthetic generators and SNAP-style edge lists), where the relabeling
    layer is guaranteed cheap and lossless — and when the graph has at least
    ``min_vertices`` vertices, so tiny graphs can skip the snapshot build
    cost.  The threshold defaults to the ``KH_CORE_CSR_THRESHOLD``
    environment variable, falling back to
    :data:`DEFAULT_CSR_AUTO_THRESHOLD` (see :func:`resolve_csr_threshold`).
    Explicit ``backend="csr"`` requests bypass this gate entirely.
    """
    if graph.num_vertices < resolve_csr_threshold(min_vertices):
        return False
    return all(type(v) is int for v in graph.vertices())

"""Compressed sparse row (CSR) graph backend.

:class:`CSRGraph` is an immutable, int-relabeled snapshot of a
:class:`~repro.graph.graph.Graph`: vertices become consecutive indices
``0..n-1`` and adjacency is stored in two flat arrays,

* ``indptr`` — length ``n + 1``; the neighbors of vertex ``i`` occupy
  ``adjacency[indptr[i]:indptr[i + 1]]``,
* ``adjacency`` — length ``2·|E|``; neighbor indices, sorted per vertex.

A relabeling layer (``labels`` / ``index_of``) maps between original vertex
objects and indices, so any hashable vertex type works; graphs whose vertices
are already integers simply pay one dict lookup per translation at the API
boundary and nothing inside the traversal loops.

Both arrays are plain Python lists rather than ``array.array``: the hot
h-bounded BFS (:mod:`repro.traversal.array_bfs`) iterates neighbor *slices*,
and list slices hand back already-boxed ints, whereas ``array`` slices would
re-box every element on each visit.  The flat layout — not the element
container — is what buys the locality and the cheap slice-based neighbor
iteration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import VertexNotFoundError
from repro.graph.graph import Graph, Vertex


class CSRGraph:
    """Flat-array adjacency snapshot of an undirected :class:`Graph`.

    Instances are produced by :meth:`from_graph` and never mutated; the
    peeling algorithms express vertex deletions through "alive" masks instead
    of touching the structure (see :mod:`repro.core.backends`).

    Example
    -------
    >>> from repro.graph import Graph
    >>> csr = CSRGraph.from_graph(Graph([("a", "b"), ("b", "c")]))
    >>> csr.num_vertices, csr.num_edges
    (3, 2)
    >>> csr.neighbors_of_label("b") == {"a", "c"}
    True
    """

    __slots__ = ("indptr", "adjacency", "labels", "index_of")

    def __init__(self, indptr: List[int], adjacency: List[int],
                 labels: List[Vertex]) -> None:
        self.indptr = indptr
        self.adjacency = adjacency
        self.labels = labels
        self.index_of: Dict[Vertex, int] = {v: i for i, v in enumerate(labels)}

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Relabel ``graph`` to ``0..n-1`` and pack adjacency into flat arrays.

        Vertex order follows the graph's (deterministic) insertion order;
        neighbor indices are sorted per vertex, which keeps traversal order
        deterministic and slightly improves locality.
        """
        labels = list(graph.vertices())
        index_of = {v: i for i, v in enumerate(labels)}
        indptr: List[int] = [0] * (len(labels) + 1)
        adjacency: List[int] = []
        for i, v in enumerate(labels):
            neighbors = sorted(index_of[u] for u in graph.neighbors(v))
            adjacency.extend(neighbors)
            indptr[i + 1] = len(adjacency)
        return cls(indptr, adjacency, labels)

    # ------------------------------------------------------------------ #
    # queries (index space)
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return len(self.adjacency) // 2

    def degree(self, index: int) -> int:
        """Degree of the vertex at ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def neighbors(self, index: int) -> List[int]:
        """Neighbor indices of ``index`` (a fresh list; sorted)."""
        return self.adjacency[self.indptr[index]:self.indptr[index + 1]]

    def degrees(self) -> List[int]:
        """Degree of every vertex, indexed by vertex index."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self.labels))]

    # ------------------------------------------------------------------ #
    # relabeling layer
    # ------------------------------------------------------------------ #
    def index(self, label: Vertex) -> int:
        """Return the index of the original vertex ``label``."""
        try:
            return self.index_of[label]
        except KeyError:
            raise VertexNotFoundError(label) from None

    def label(self, index: int) -> Vertex:
        """Return the original vertex stored at ``index``."""
        return self.labels[index]

    def neighbors_of_label(self, label: Vertex) -> set:
        """Neighbor *labels* of an original vertex (convenience/testing)."""
        return {self.labels[i] for i in self.neighbors(self.index(label))}

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate each undirected edge once, as an (index, index) pair."""
        indptr, adjacency = self.indptr, self.adjacency
        for v in range(len(self.labels)):
            for position in range(indptr[v], indptr[v + 1]):
                u = adjacency[position]
                if v < u:
                    yield (v, u)

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


def csr_suitable(graph: Graph) -> bool:
    """Return True if ``graph`` is "integer-friendly" for the auto backend.

    The CSR backend works for any hashable vertex type, but ``backend="auto"``
    only opts in when every vertex is a plain ``int`` (the common case for
    the synthetic generators and SNAP-style edge lists), where the relabeling
    layer is guaranteed cheap and lossless.
    """
    return all(type(v) is int for v in graph.vertices())

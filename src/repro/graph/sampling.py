"""Graph sampling utilities.

The paper's scalability experiment (Figure 5) samples subgraphs of increasing
size from the ``lj`` network by *snowball sampling*: pick a random seed vertex,
run a BFS from it, stop once the target number of vertices has been visited,
and return the induced subgraph.  :func:`snowball_sample` reproduces exactly
that procedure.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.errors import ParameterError
from repro.graph.graph import Graph


def snowball_sample(graph: Graph, target_size: int,
                    seed: Optional[int] = None) -> Graph:
    """Return the subgraph induced by a BFS-visited set of ``target_size`` vertices.

    This is the sampling procedure of the paper's §6.4: a random seed vertex
    is chosen, a BFS is run from it, and the BFS stops as soon as
    ``target_size`` vertices have been visited.  If the seed's connected
    component is smaller than ``target_size`` the BFS restarts from a new
    random unvisited vertex (so the requested size is always reached when the
    graph is large enough).
    """
    if target_size <= 0:
        raise ParameterError("target_size must be positive")
    vertices = list(graph.vertices())
    if target_size >= len(vertices):
        return graph.copy()

    rng = random.Random(seed)
    visited = set()
    remaining = set(vertices)
    while len(visited) < target_size and remaining:
        start = rng.choice(sorted(remaining, key=repr))
        queue = deque([start])
        visited.add(start)
        remaining.discard(start)
        while queue and len(visited) < target_size:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in visited:
                    visited.add(u)
                    remaining.discard(u)
                    queue.append(u)
                    if len(visited) >= target_size:
                        break
    return graph.subgraph(visited)


def random_vertex_sample(graph: Graph, target_size: int,
                         seed: Optional[int] = None) -> Graph:
    """Return the subgraph induced by ``target_size`` uniformly random vertices."""
    if target_size <= 0:
        raise ParameterError("target_size must be positive")
    vertices = sorted(graph.vertices(), key=repr)
    if target_size >= len(vertices):
        return graph.copy()
    rng = random.Random(seed)
    chosen = rng.sample(vertices, target_size)
    return graph.subgraph(chosen)


def random_edge_sample(graph: Graph, target_edges: int,
                       seed: Optional[int] = None) -> Graph:
    """Return a graph keeping ``target_edges`` uniformly random edges.

    All endpoints of the kept edges are retained; other vertices are dropped.
    """
    if target_edges <= 0:
        raise ParameterError("target_edges must be positive")
    edges = sorted(graph.edges(), key=repr)
    if target_edges >= len(edges):
        return graph.copy()
    rng = random.Random(seed)
    chosen = rng.sample(edges, target_edges)
    sampled = Graph()
    for u, v in chosen:
        sampled.add_edge(u, v)
    return sampled

"""Reading and writing graphs.

Two plain-text formats are supported:

* **edge list** — one edge per line, two whitespace-separated vertex ids.
  Lines starting with ``#`` or ``%`` are comments (the SNAP and KONECT
  conventions, matching the datasets the paper uses).
* **adjacency list** — one line per vertex: ``v: n1 n2 n3 ...``.

Vertex ids are read as integers when possible, otherwise kept as strings.
The shared dialect (comment prefixes, token parsing, isolated-vertex and
self-loop conventions) is defined once in :mod:`repro.graph.edgefile`; this
module keeps the convenient Graph-building entry points on top of it.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Union

from repro.errors import GraphFormatError
from repro.graph.edgefile import COMMENT_PREFIXES as _COMMENT_PREFIXES
from repro.graph.edgefile import parse_vertex as _parse_vertex
from repro.graph.graph import Graph

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_for_read(source: PathOrFile):
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target: PathOrFile):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def read_edge_list(source: PathOrFile, directed_as_undirected: bool = True) -> Graph:
    """Read a graph from an edge-list file or file-like object.

    Parameters
    ----------
    source:
        Path or open text file.
    directed_as_undirected:
        Kept for API clarity; edges are always stored undirected, so a
        directed edge list simply collapses reciprocal pairs.

    Raises
    ------
    GraphFormatError
        If a non-comment line does not contain at least two tokens.
    """
    handle, should_close = _open_for_read(source)
    graph = Graph()
    try:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            tokens = line.split()
            if len(tokens) == 1:
                # A bare vertex id denotes an isolated vertex (the convention
                # write_edge_list uses so round-trips preserve them).
                graph.add_vertex(_parse_vertex(tokens[0]))
                continue
            if len(tokens) < 2:
                raise GraphFormatError(
                    f"line {line_number}: expected 'u v', got {line!r}"
                )
            u, v = _parse_vertex(tokens[0]), _parse_vertex(tokens[1])
            if u == v:
                # Silently drop self-loops; they are meaningless for (k,h)-cores.
                graph.add_vertex(u)
                continue
            graph.add_edge(u, v)
    finally:
        if should_close:
            handle.close()
    return graph


def write_edge_list(graph: Graph, target: PathOrFile, header: bool = True) -> None:
    """Write ``graph`` as an edge list (one ``u v`` pair per line)."""
    handle, should_close = _open_for_write(target)
    try:
        if header:
            handle.write(
                f"# undirected graph: {graph.num_vertices} vertices, "
                f"{graph.num_edges} edges\n"
            )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
        for v in graph.vertices():
            if graph.degree(v) == 0:
                handle.write(f"{v}\n")  # isolated vertices: bare id line
    finally:
        if should_close:
            handle.close()


def read_adjacency_list(source: PathOrFile) -> Graph:
    """Read a graph in ``v: n1 n2 ...`` adjacency-list format."""
    handle, should_close = _open_for_read(source)
    graph = Graph()
    try:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            if ":" not in line:
                raise GraphFormatError(
                    f"line {line_number}: expected 'v: n1 n2 ...', got {line!r}"
                )
            head, _, tail = line.partition(":")
            v = _parse_vertex(head.strip())
            graph.add_vertex(v)
            for token in tail.split():
                u = _parse_vertex(token)
                if u != v:
                    graph.add_edge(v, u)
    finally:
        if should_close:
            handle.close()
    return graph


def write_adjacency_list(graph: Graph, target: PathOrFile) -> None:
    """Write ``graph`` in ``v: n1 n2 ...`` adjacency-list format."""
    handle, should_close = _open_for_write(target)
    try:
        for v in sorted(graph.vertices(), key=repr):
            neighbors = " ".join(str(u) for u in sorted(graph.neighbors(v), key=repr))
            handle.write(f"{v}: {neighbors}\n")
    finally:
        if should_close:
            handle.close()


def edges_from_pairs(pairs: Iterable) -> Graph:
    """Build a :class:`Graph` from an iterable of ``(u, v)`` pairs.

    Convenience wrapper mirroring :func:`read_edge_list` for in-memory data.
    """
    graph = Graph()
    for u, v in pairs:
        if u == v:
            graph.add_vertex(u)
        else:
            graph.add_edge(u, v)
    return graph

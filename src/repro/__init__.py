"""repro — Distance-generalized core decomposition ((k,h)-cores).

A from-scratch Python reproduction of *"Distance-generalized Core
Decomposition"* (Bonchi, Khan, Severini — SIGMOD 2019): the (k,h)-core
definition, the three exact decomposition algorithms (h-BZ, h-LB, h-LB+UB),
and the applications built on top of the decomposition (distance-h chromatic
number, maximum h-club, distance-h densest subgraph, distance-generalized
community search, and landmark selection for shortest-path estimation).

Quickstart
----------
>>> from repro import Graph, core_decomposition
>>> g = Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
>>> decomposition = core_decomposition(g, h=2)
>>> decomposition.degeneracy
3
"""

from repro.errors import (
    ReproError,
    GraphError,
    VertexNotFoundError,
    EdgeNotFoundError,
    ParameterError,
    InvalidDistanceThresholdError,
    GraphFormatError,
    DatasetNotFoundError,
    DatasetChecksumError,
    ResilienceError,
    WorkerPoolError,
    DeadlineExceededError,
    ServiceOverloadedError,
    FaultInjectedError,
    SolverTimeoutError,
    ExperimentError,
)
from repro.graph import (
    FrozenGraphView,
    Graph,
    SubgraphView,
    load_csr,
    stream_load,
)
from repro.core import (
    CoreDecomposition,
    core_decomposition,
    core_decomposition_with_report,
    classic_core_decomposition,
    h_bz,
    h_lb,
    h_lb_ub,
)
from repro.traversal import h_degree, h_neighborhood, power_graph
from repro.dynamic import DynamicKHCore, EdgeUpdate, read_update_stream
from repro.runtime import ExecutionContext

#: Single source of truth alongside pyproject.toml's ``version`` — keep the
#: two in lockstep when releasing.
__version__ = "0.11.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "ParameterError",
    "InvalidDistanceThresholdError",
    "GraphFormatError",
    "DatasetNotFoundError",
    "DatasetChecksumError",
    "ResilienceError",
    "WorkerPoolError",
    "DeadlineExceededError",
    "ServiceOverloadedError",
    "FaultInjectedError",
    "SolverTimeoutError",
    "ExperimentError",
    # graph
    "Graph",
    "SubgraphView",
    "FrozenGraphView",
    # out-of-core storage tier
    "load_csr",
    "stream_load",
    # core decomposition
    "CoreDecomposition",
    "core_decomposition",
    "core_decomposition_with_report",
    "classic_core_decomposition",
    "h_bz",
    "h_lb",
    "h_lb_ub",
    # traversal helpers
    "h_degree",
    "h_neighborhood",
    "power_graph",
    # dynamic maintenance
    "DynamicKHCore",
    "EdgeUpdate",
    "read_update_stream",
    # execution runtime
    "ExecutionContext",
]

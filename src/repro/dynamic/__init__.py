"""Dynamic (k,h)-core maintenance for streaming edge updates.

Public entry points:

* :class:`repro.dynamic.DynamicKHCore` — the maintenance engine: ingest
  edge insertions/deletions (:meth:`~DynamicKHCore.apply`,
  :meth:`~DynamicKHCore.apply_batch`) and query exact core indices at any
  point (:meth:`~DynamicKHCore.core_numbers`).
* Stream plumbing: :class:`EdgeUpdate`, :func:`read_update_stream`,
  :func:`write_update_stream`, :func:`random_update_stream`.
* Bookkeeping: :class:`DynamicStats`, :class:`UpdateSummary`.

See ``docs/architecture.md`` ("Dynamic maintenance") for the dirty-region
model and the fallback policy.
"""

from repro.dynamic.engine import (
    DEFAULT_FALLBACK_RATIO,
    DEFAULT_MAX_EXPANSIONS,
    DynamicKHCore,
)
from repro.dynamic.repeel import repeel_region
from repro.dynamic.stats import (
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_NOOP,
    DynamicStats,
    UpdateSummary,
)
from repro.dynamic.stream import (
    DELETE,
    INSERT,
    EdgeUpdate,
    iter_update_stream,
    random_update_stream,
    read_update_stream,
    write_update_stream,
)

__all__ = [
    "DynamicKHCore",
    "DEFAULT_FALLBACK_RATIO",
    "DEFAULT_MAX_EXPANSIONS",
    "repeel_region",
    "DynamicStats",
    "UpdateSummary",
    "MODE_INCREMENTAL",
    "MODE_FULL",
    "MODE_NOOP",
    "EdgeUpdate",
    "INSERT",
    "DELETE",
    "iter_update_stream",
    "read_update_stream",
    "write_update_stream",
    "random_update_stream",
]

"""Region re-peeling: recompute core indices inside a dirty region.

This is the computational kernel of the dynamic maintenance engine
(:mod:`repro.dynamic.engine`).  Given a *region* of vertices whose core
indices may have changed and a *shell* of surrounding vertices whose core
indices are assumed unchanged, :func:`repeel_region` re-runs the peeling on
``region ∪ shell`` only:

* Region vertices are bucketed by their exact h-degree inside the restricted
  universe and peeled bottom-up exactly like h-BZ, with the paper's
  distance-``h`` decrement shortcut (Algorithm 3, line 17) to avoid most
  h-degree recomputations.
* Shell vertices are **pinned**: each one is force-removed while the peeling
  index equals its (old) core index — the level at which the reference
  global peeling would have removed it.  They are never re-bucketed and never
  receive a new core index.

Why the restricted universe is sufficient: every path of length ``<= h``
from a region vertex ``w`` only traverses vertices at distance ``<= h - 1``
from ``w``, so all vertices that can ever appear in (or on a path to) the
h-neighborhood of a region vertex lie inside ``N_h[region]`` = region ∪
shell.  Vertices further out can neither contribute to nor subtract from any
region h-degree, at any peeling level.

The interleaving of forced shell removals and degree-triggered region pops
within one level is irrelevant for correctness: the set of vertices removed
by the end of level ``k`` is order-independent (the standard monotonicity
argument for peeling), and that set is all that level ``k + 1`` sees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.backends import Engine
from repro.core.buckets import BucketQueue
from repro.instrumentation import Counters, NULL_COUNTERS

Handle = object


def repeel_region(engine: Engine, h: int,
                  region: Iterable[Handle],
                  shell_levels: Dict[Handle, int],
                  counters: Counters = NULL_COUNTERS) -> Dict[Handle, int]:
    """Re-peel ``region`` against a frozen ``shell`` and return its new cores.

    Parameters
    ----------
    engine:
        Backend engine over the *current* graph
        (:class:`~repro.core.backends.DictEngine` or a refreshed
        :class:`~repro.core.backends.CSREngine`).
    h:
        Distance threshold.
    region:
        Handles whose core indices are recomputed.
    shell_levels:
        ``handle -> old core index`` for every vertex of
        ``N_h[region] \\ region``; each shell vertex is removed when the
        peeling index reaches its level.  Must be disjoint from ``region``.
    counters:
        Instrumentation sink.

    Returns
    -------
    dict
        ``handle -> new core index`` for every region handle.
    """
    remaining = set(region)
    if not remaining:
        return {}
    alive = engine.alive_subset(list(remaining) + list(shell_levels))

    degrees = engine.bulk_h_degrees(h, targets=remaining, alive=alive,
                                    counters=counters)
    buckets = BucketQueue(counters)
    for w, d in degrees.items():
        buckets.insert(w, d)

    shell_by_level: Dict[int, List[Handle]] = {}
    for x, level in shell_levels.items():
        shell_by_level.setdefault(level, []).append(x)

    new_core: Dict[Handle, int] = {}
    k = 0

    def remove_and_update(vertex: Handle) -> None:
        # The h-neighborhood is taken in the current alive universe before
        # the removal, exactly like the global peeling algorithms.
        neighborhood = engine.h_neighbors_with_distance(vertex, h, alive,
                                                        counters)
        alive.discard(vertex)
        for u, distance in neighborhood:
            if u not in remaining:
                continue  # shell vertices and already-peeled region vertices
            if distance < h:
                # Removal may have destroyed shortest paths through ``vertex``:
                # recompute from scratch (Algorithm 3, line 15).
                degrees[u] = engine.h_degree(u, h, alive, counters)
                counters.count_hdegree()
            else:
                # A neighbor at distance exactly h can only lose ``vertex``
                # itself, so a O(1) decrement suffices (line 17).
                degrees[u] -= 1
                counters.record_decrement()
            buckets.move(u, max(degrees[u], k))

    while remaining:
        vertex = buckets.pop_from(k)
        if vertex is not None:
            new_core[vertex] = k
            remaining.discard(vertex)
            remove_and_update(vertex)
            continue
        pending_shell = shell_by_level.get(k)
        if pending_shell:
            remove_and_update(pending_shell.pop())
            continue
        k += 1
    return new_core

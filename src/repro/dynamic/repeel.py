"""Region re-peeling: recompute core indices inside a dirty region.

This is the computational kernel of the dynamic maintenance engine
(:mod:`repro.dynamic.engine`).  Given a *region* of vertices whose core
indices may have changed and a *shell* of surrounding vertices whose core
indices are assumed unchanged, :func:`repeel_region` re-runs the peeling on
``region ∪ shell`` only:

* Region vertices are bucketed by their exact h-degree inside the restricted
  universe and peeled bottom-up exactly like h-BZ, with the paper's
  distance-``h`` decrement shortcut (Algorithm 3, line 17) to avoid most
  h-degree recomputations.
* Shell vertices are **pinned**: each one is force-removed while the peeling
  index equals its (old) core index — the level at which the reference
  global peeling would have removed it.  They are never re-bucketed and never
  receive a new core index.

The per-vertex bookkeeping (buckets + stored degrees) drives the shared
:class:`~repro.runtime.peel.PeelState` protocol — the same kernel state the
batch algorithms peel through, flat arrays on the CSR engine.

Why the restricted universe is sufficient: every path of length ``<= h``
from a region vertex ``w`` only traverses vertices at distance ``<= h - 1``
from ``w``, so all vertices that can ever appear in (or on a path to) the
h-neighborhood of a region vertex lie inside ``N_h[region]`` = region ∪
shell.  Vertices further out can neither contribute to nor subtract from any
region h-degree, at any peeling level.

The interleaving of forced shell removals and degree-triggered region pops
within one level is irrelevant for correctness: the set of vertices removed
by the end of level ``k`` is order-independent (the standard monotonicity
argument for peeling), and that set is all that level ``k + 1`` sees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.backends import Engine
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.peel import make_peel_state

Handle = object


def repeel_region(engine: Engine, h: int,
                  region: Iterable[Handle],
                  shell_levels: Dict[Handle, int],
                  counters: Counters = NULL_COUNTERS,
                  peel: str = "auto") -> Dict[Handle, int]:
    """Re-peel ``region`` against a frozen ``shell`` and return its new cores.

    Parameters
    ----------
    engine:
        Backend engine over the *current* graph
        (:class:`~repro.core.backends.DictEngine` or a refreshed
        :class:`~repro.core.backends.CSREngine`).
    h:
        Distance threshold.
    region:
        Handles whose core indices are recomputed.
    shell_levels:
        ``handle -> old core index`` for every vertex of
        ``N_h[region] \\ region``; each shell vertex is removed when the
        peeling index reaches its level.  Must be disjoint from ``region``.
    counters:
        Instrumentation sink.
    peel:
        Peel-state layout (:data:`repro.runtime.peel.PEEL_STATES`);
        ``"auto"`` selects the flat-array state on the CSR engine when the
        dirty universe is a sizable fraction of the graph, and the
        O(|region|)-footprint dict state for small regions (the common
        incremental case), where an O(n) array allocation would dominate.

    Returns
    -------
    dict
        ``handle -> new core index`` for every region handle.
    """
    remaining = set(region)
    if not remaining:
        return {}
    alive = engine.alive_subset(list(remaining) + list(shell_levels))

    degrees = engine.bulk_h_degrees(h, targets=remaining, alive=alive,
                                    counters=counters)
    if peel == "auto" and len(alive) * 4 < engine.num_nodes:
        # The array layout allocates O(n) buckets/degree buffers; a typical
        # dirty region is a few dozen vertices of a large graph, where that
        # allocation would dominate the re-peel (the exact cost the dynamic
        # engine exists to avoid).  Both layouts are observationally
        # identical, so below a quarter of the graph the hash-based state
        # with its O(|region|) footprint is the cheaper choice.
        peel = "dict"
    state = make_peel_state(engine, counters, peel=peel)
    state.fill_exact(degrees.items())

    shell_by_level: Dict[int, List[Handle]] = {}
    for x, level in shell_levels.items():
        shell_by_level.setdefault(level, []).append(x)

    new_core: Dict[Handle, int] = {}
    k = 0

    def remove_and_update(vertex: Handle) -> None:
        # The h-neighborhood is taken in the current alive universe before
        # the removal, exactly like the global peeling algorithms.
        neighborhood = engine.h_neighbors_with_distance(vertex, h, alive,
                                                        counters)
        alive.discard(vertex)
        for u, distance in neighborhood:
            if u not in remaining:
                continue  # shell vertices and already-peeled region vertices
            if distance < h:
                # Removal may have destroyed shortest paths through ``vertex``:
                # recompute from scratch (Algorithm 3, line 15).
                state.set_degree(u, engine.h_degree(u, h, alive, counters))
                counters.count_hdegree()
            else:
                # A neighbor at distance exactly h can only lose ``vertex``
                # itself, so a O(1) decrement suffices (line 17).
                state.decrement(u)
                counters.record_decrement()
            state.move_to(u, max(state.degree_of(u), k))

    while remaining:
        vertex = state.pop(k)
        if vertex is not None:
            new_core[vertex] = k
            remaining.discard(vertex)
            remove_and_update(vertex)
            continue
        pending_shell = shell_by_level.get(k)
        if pending_shell:
            remove_and_update(pending_shell.pop())
            continue
        k += 1
    return new_core

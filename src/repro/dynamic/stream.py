"""Edge-update streams: the wire format of the dynamic engine.

An update stream is a sequence of :class:`EdgeUpdate` records — ``("+", u,
v)`` for an insertion, ``("-", u, v)`` for a deletion.  The file format read
by :func:`read_update_stream` (and the ``kh-core stream`` CLI subcommand) is
one update per line::

    + 4 17
    - 4 9
    # comments and blank lines are ignored (% too, the SNAP convention)

:func:`random_update_stream` generates valid mixed streams against a live
graph; benchmarks, property tests and the streaming example all share it so
"a random update stream" means the same thing everywhere.
"""

from __future__ import annotations

import random
from typing import Iterator, List, NamedTuple, Optional, TextIO, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.graph import Graph, Vertex
from repro.graph.io import _parse_vertex

#: Operation codes.
INSERT = "+"
DELETE = "-"

_OP_ALIASES = {
    "+": INSERT, "a": INSERT, "add": INSERT, "i": INSERT, "insert": INSERT,
    "-": DELETE, "d": DELETE, "del": DELETE, "delete": DELETE,
    "r": DELETE, "remove": DELETE,
}


class EdgeUpdate(NamedTuple):
    """One streaming edge update."""

    op: str
    u: Vertex
    v: Vertex


def normalize_op(op: str) -> str:
    """Map an operation spelling to :data:`INSERT` / :data:`DELETE`.

    Raises :class:`~repro.errors.GraphFormatError` for unknown spellings.
    """
    try:
        return _OP_ALIASES[op.lower()]
    except (KeyError, AttributeError):
        raise GraphFormatError(
            f"unknown update operation {op!r}; expected one of "
            f"{sorted(set(_OP_ALIASES))}"
        ) from None


# Token parsing is shared with repro.graph.io so a stream replayed on top
# of a read edge list always refers to the same vertex objects.

def iter_update_stream(handle: TextIO) -> Iterator[EdgeUpdate]:
    """Yield updates from an open text stream, validating as it goes."""
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped[0] in "#%":
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise GraphFormatError(
                f"line {line_number}: expected 'op u v', got {stripped!r}"
            )
        op = normalize_op(parts[0])
        yield EdgeUpdate(op, _parse_vertex(parts[1]), _parse_vertex(parts[2]))


def read_update_stream(path: Union[str, "object"]) -> List[EdgeUpdate]:
    """Read a whole update-stream file into a list."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_update_stream(handle))


def write_update_stream(updates: List[EdgeUpdate], path) -> None:
    """Write updates in the one-per-line text format."""
    with open(path, "w", encoding="utf-8") as handle:
        for op, u, v in updates:
            handle.write(f"{op} {u} {v}\n")


def random_update_stream(graph: Graph, length: int,
                         insert_fraction: float = 0.5,
                         new_vertex_p: float = 0.0,
                         seed: Optional[int] = None) -> List[EdgeUpdate]:
    """Generate ``length`` valid updates, mutating a scratch copy of ``graph``.

    Each step flips a coin: with probability ``insert_fraction`` insert an
    edge that is currently absent (between existing vertices, or — with
    probability ``new_vertex_p`` — from a brand-new integer vertex), and
    otherwise delete an existing edge.  When the preferred operation is
    impossible (no edges left to delete, no missing pair to insert) the
    other one is used, so the stream is always applicable in order.
    ``graph`` itself is not modified.
    """
    rng = random.Random(seed)
    scratch = graph.copy()
    updates: List[EdgeUpdate] = []
    next_fresh = max((v for v in scratch.vertices() if isinstance(v, int)),
                     default=-1) + 1

    # Incrementally maintained pools (sorted once up front, then appended /
    # swap-removed) so generation is O(1)-ish per update instead of
    # re-materializing and re-sorting V and E every step.
    vertices: List[Vertex] = sorted(scratch.vertices(), key=repr)
    edges: List[Tuple[Vertex, Vertex]] = sorted(
        (tuple(sorted(edge, key=repr)) for edge in scratch.edges()),
        key=repr)
    edge_pos = {edge: i for i, edge in enumerate(edges)}

    def pool_add_edge(u: Vertex, v: Vertex) -> None:
        key = tuple(sorted((u, v), key=repr))
        edge_pos[key] = len(edges)
        edges.append(key)

    def pool_remove_edge(u: Vertex, v: Vertex) -> None:
        key = tuple(sorted((u, v), key=repr))
        position = edge_pos.pop(key)
        last = edges.pop()
        if last != key:
            edges[position] = last
            edge_pos[last] = position

    def random_missing_pair() -> Optional[EdgeUpdate]:
        if new_vertex_p and rng.random() < new_vertex_p:
            nonlocal next_fresh
            fresh = next_fresh
            next_fresh += 1
            if vertices:
                anchor = rng.choice(vertices)
            else:
                # Empty graph: mint a second fresh vertex as the anchor (and
                # advance past it, so no later step can self-pair with it).
                anchor = next_fresh
                next_fresh += 1
            return EdgeUpdate(INSERT, fresh, anchor)
        if len(vertices) < 2:
            return None
        for _ in range(64):
            u, v = rng.sample(vertices, 2)
            if not scratch.has_edge(u, v):
                return EdgeUpdate(INSERT, u, v)
        return None

    def random_present_edge() -> Optional[EdgeUpdate]:
        if not edges:
            return None
        u, v = rng.choice(edges)
        return EdgeUpdate(DELETE, u, v)

    for _ in range(length):
        if rng.random() < insert_fraction:
            update = random_missing_pair() or random_present_edge()
        else:
            update = random_present_edge() or random_missing_pair()
        if update is None:
            break
        updates.append(update)
        if update.op == INSERT:
            if update.u not in scratch:
                vertices.append(update.u)
            if update.v not in scratch:
                vertices.append(update.v)
            scratch.add_edge(update.u, update.v)
            pool_add_edge(update.u, update.v)
        else:
            scratch.remove_edge(update.u, update.v)
            pool_remove_edge(update.u, update.v)
    return updates

"""Bookkeeping types for the dynamic maintenance engine.

:class:`DynamicStats` accumulates engine-lifetime counters (how often the
incremental path ran versus the full-recomputation fallback, how large the
dirty regions were) and :class:`UpdateSummary` describes what a single
``apply`` / ``apply_batch`` call did.  Both are plain data — the work
counters of the underlying traversals live in the shared
:class:`~repro.instrumentation.Counters` sink, as everywhere else in the
library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable

#: ``UpdateSummary.mode`` values.
MODE_INCREMENTAL = "incremental"
MODE_FULL = "full"
MODE_NOOP = "noop"


@dataclass
class DynamicStats:
    """Lifetime counters of one :class:`~repro.dynamic.DynamicKHCore`.

    Attributes
    ----------
    updates_applied:
        Edge insertions/deletions that actually changed the graph.
    noop_updates:
        Updates skipped because they changed nothing (inserting an existing
        edge).
    batches:
        Number of ``apply`` / ``apply_batch`` calls that reached the
        maintenance machinery.
    incremental_repeels:
        Batches resolved by re-peeling a dirty region.
    full_recomputes:
        Batches resolved by the full-recomputation fallback (region above
        threshold, or too many expansion rounds).
    region_expansions:
        Fixed-point rounds that had to grow the dirty region because a
        changed core touched the region boundary.
    external_resyncs:
        Full recomputations forced by out-of-band mutations of the
        underlying graph (detected through the graph's version counter).
    last_region_size / last_universe_size:
        Region (recomputed vertices) and universe (region + frozen shell)
        sizes of the most recent incremental re-peel.
    peak_universe_size:
        Largest universe any incremental re-peel has used.
    vertices_repeeled:
        Total region vertices re-peeled across all incremental batches.
    cores_changed:
        Total vertices whose core index actually changed.
    """

    updates_applied: int = 0
    noop_updates: int = 0
    batches: int = 0
    incremental_repeels: int = 0
    full_recomputes: int = 0
    region_expansions: int = 0
    external_resyncs: int = 0
    last_region_size: int = 0
    last_universe_size: int = 0
    peak_universe_size: int = 0
    vertices_repeeled: int = 0
    cores_changed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (suitable for JSON or report tables)."""
        return {
            "updates_applied": self.updates_applied,
            "noop_updates": self.noop_updates,
            "batches": self.batches,
            "incremental_repeels": self.incremental_repeels,
            "full_recomputes": self.full_recomputes,
            "region_expansions": self.region_expansions,
            "external_resyncs": self.external_resyncs,
            "last_region_size": self.last_region_size,
            "last_universe_size": self.last_universe_size,
            "peak_universe_size": self.peak_universe_size,
            "vertices_repeeled": self.vertices_repeeled,
            "cores_changed": self.cores_changed,
        }


@dataclass(frozen=True)
class UpdateSummary:
    """What one ``apply`` / ``apply_batch`` call did.

    ``mode`` is :data:`MODE_INCREMENTAL`, :data:`MODE_FULL` or
    :data:`MODE_NOOP`; the size fields are zero unless the incremental path
    ran.

    ``changed_vertices`` is the *exact* set of vertices whose core index
    differs from before the batch (vertices created by the batch count as
    changed; ``cores_changed == len(changed_vertices)``).  This is the
    dirty-region output the persistent core index rides: an incremental
    refresh rewrites only these rows.
    """

    mode: str
    applied: int = 0
    skipped: int = 0
    region_size: int = 0
    universe_size: int = 0
    expansions: int = 0
    cores_changed: int = 0
    reason: str = ""
    changed_vertices: FrozenSet[Hashable] = field(default_factory=frozenset)

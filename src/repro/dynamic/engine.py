"""`DynamicKHCore`: exact (k,h)-core maintenance under streaming edge updates.

The batch algorithms (h-BZ / h-LB / h-LB+UB) recompute the whole
decomposition from an immutable snapshot.  For evolving graphs that is
wasteful: toggling one edge ``(u, v)`` can only change the h-neighborhood
structure of vertices within distance ``h`` of ``u`` or ``v``, and core
index changes propagate only through overlapping h-neighborhoods.  The
engine exploits that locality:

1. **Seed.**  Collect the dirty seeds — ``{u, v} ∪ N_h(u) ∪ N_h(v)`` for
   every update, measured in the graph state where the edge exists (after an
   insertion, before a deletion).  Only seeded vertices see the toggled edge
   inside their h-ball, so only they can be *directly* affected.
2. **Re-peel.**  Re-run the peeling on the region only, against a frozen
   shell of surrounding vertices pinned at their old core levels
   (:func:`repro.dynamic.repeel.repeel_region`).
3. **Expand to a fixed point.**  If any vertex whose core changed has
   h-neighbors outside the region, those neighbors' cores can no longer be
   trusted: grow the region by the h-neighborhoods of all changed vertices
   and re-peel.  At convergence every changed vertex is buried strictly
   inside the region, so every frozen assumption has been verified and the
   maintained indices equal a from-scratch decomposition.
4. **Fall back.**  When the dirty region exceeds
   ``fallback_ratio · |V|`` (or the fixed point needs too many rounds —
   both symptoms that locality has broken down, e.g. a bridge edge into a
   dense hub), recompute from scratch with the configured batch algorithm.
   The fallback is a correctness-neutral performance policy.

The engine owns its graph: apply updates through :meth:`apply` /
:meth:`apply_batch`.  Out-of-band mutations of the underlying
:class:`~repro.graph.graph.Graph` are detected through its version counter
and resolved by a full recomputation on the next query (counted in
``stats.external_resyncs``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.backends import CSREngine, Engine, resolved_backend_name
from repro.core.decomposition import ALGORITHMS, core_decomposition
from repro.runtime.context import ExecutionContext
from repro.core.result import CoreDecomposition
from repro.dynamic.repeel import repeel_region
from repro.dynamic.stats import (
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_NOOP,
    DynamicStats,
    UpdateSummary,
)
from repro.dynamic.stream import DELETE, INSERT, EdgeUpdate, normalize_op
from repro.graph.csr import CSRGraph
from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    InvalidDistanceThresholdError,
    ParameterError,
)
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.bfs import h_bounded_neighbors

#: Default fraction of |V| the dirty universe may reach before the engine
#: falls back to full recomputation.
DEFAULT_FALLBACK_RATIO = 0.35

#: Default cap on fixed-point expansion rounds per batch.
DEFAULT_MAX_EXPANSIONS = 4


class DynamicKHCore:
    """Maintain exact (k,h)-core indices of an evolving graph.

    Parameters
    ----------
    graph:
        Initial graph (taken by reference and owned by the engine; a fresh
        empty graph when omitted).
    h:
        Distance threshold (``h >= 1``).
    backend:
        ``"dict"``, ``"csr"``, ``"numpy"``, ``"native"`` or ``"auto"`` —
        resolved once at construction and kept for the engine's lifetime.
        The CSR-family backends (``csr`` plus the vectorized ``numpy`` and
        compiled ``native`` engines) delta-rebuild their snapshot after
        each batch (touched rows only), the dict backend reads the live
        graph.
    relabel:
        Optional cache-locality vertex permutation (``"degree"`` / ``"bfs"``)
        applied whenever a CSR-family snapshot is built; maintained cores
        are label-space and unaffected.
    storage:
        Storage tier for CSR-family snapshots (``"auto"`` / ``"ram"`` /
        ``"mmap"`` — see :mod:`repro.graph.storage`).  Dynamic maintenance
        still keeps the live dict graph in RAM; this only controls where
        the peeling snapshots spill.
    algorithm:
        Batch algorithm used for the initial decomposition and every full
        recomputation (``"auto"`` dispatches as in
        :func:`repro.core.core_decomposition`).
    fallback_ratio:
        Dirty-region size threshold, as a fraction of ``|V|``, above which
        a batch is resolved by full recomputation instead of an incremental
        re-peel.  The frozen shell around the region is not counted: shell
        vertices cost one forced removal each, while region vertices carry
        the peeling and expansion work.  ``1.0`` never falls back on size;
        ``0.0`` always does.
    max_expansions:
        Maximum fixed-point expansion rounds before giving up and falling
        back.
    num_workers / executor / partition_size:
        Forwarded to the batch algorithm on full recomputations
        (``num_threads`` is the deprecated legacy spelling of
        ``num_workers``).
    counters:
        Optional shared instrumentation sink for all traversal work.
    initial_cores:
        Optional warm start: the exact ``vertex -> core index`` mapping of
        ``graph`` for this ``h``, adopted verbatim instead of running the
        initial decomposition.  The caller vouches for exactness (the
        persistent index refresher passes its checksum-validated stored
        layers); a wrong mapping silently corrupts every later answer.  The
        mapping must cover exactly the graph's vertex set.

    Example
    -------
    >>> from repro.graph.generators import cycle_graph
    >>> engine = DynamicKHCore(cycle_graph(6), h=2)
    >>> engine.core_number(0)
    4
    >>> summary = engine.delete_edge(0, 1)
    >>> engine.core_number(3)
    2
    """

    def __init__(self, graph: Optional[Graph] = None, h: int = 2,
                 backend: str = "auto",
                 algorithm: str = "auto",
                 fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
                 max_expansions: int = DEFAULT_MAX_EXPANSIONS,
                 num_threads: Optional[int] = None,
                 partition_size: int = 1,
                 counters: Optional[Counters] = None,
                 executor: str = "thread",
                 num_workers: Optional[int] = None,
                 relabel: Optional[str] = None,
                 storage: str = "auto",
                 initial_cores: Optional[Dict[Vertex, int]] = None) -> None:
        if not isinstance(h, int) or isinstance(h, bool) or h < 1:
            raise InvalidDistanceThresholdError(h)
        # Backend names are validated by resolved_backend_name below.
        if algorithm not in ALGORITHMS:
            raise ParameterError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        if not 0.0 <= fallback_ratio <= 1.0:
            raise ParameterError("fallback_ratio must be in [0, 1]")
        if max_expansions < 0:
            raise ParameterError("max_expansions must be >= 0")

        self.graph = graph if graph is not None else Graph()
        self.h = h
        self.algorithm = algorithm
        self.fallback_ratio = fallback_ratio
        self.max_expansions = max_expansions
        self.partition_size = partition_size
        self.counters = counters if counters is not None else NULL_COUNTERS
        self.stats = DynamicStats()

        #: Backend name fixed at construction
        #: ("dict", "csr", "numpy" or "native").
        self.backend = resolved_backend_name(self.graph, backend)
        self.executor = executor
        self.relabel = relabel
        self.storage = storage
        #: The execution context owns the peeling engine (and any worker
        #: pool it spins up) for the engine's whole lifetime; rebuilt only
        #: if the graph object itself is swapped out from under us.
        self._context = ExecutionContext(self.graph, backend=self.backend,
                                         executor=executor,
                                         num_workers=num_workers,
                                         num_threads=num_threads,
                                         counters=self.counters,
                                         relabel=relabel,
                                         storage=storage)
        self.num_workers = self._context.num_workers
        self._core: Dict[Vertex, int] = {}
        self._synced_version: int = -1
        if initial_cores is not None:
            if set(initial_cores) != set(self.graph.vertices()):
                raise ParameterError(
                    "initial_cores must cover exactly the graph's vertex set")
            self._core = dict(initial_cores)
            self._synced_version = self.graph.version
        else:
            self._full_recompute(initial=True)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def core_numbers(self) -> Dict[Vertex, int]:
        """Current ``vertex -> core index`` mapping (a defensive copy).

        The returned dict is a snapshot: subsequent :meth:`apply` /
        :meth:`apply_batch` calls (which update the engine's internal map in
        place during incremental re-peels) never mutate it.  Consumers that
        cache decompositions across updates — the query service above all —
        depend on this guarantee, and a regression test pins it.
        """
        self._resync_if_mutated_externally()
        return dict(self._core)

    def csr_snapshot(self) -> "CSRGraph":
        """Immutable CSR snapshot of the current graph state.

        When the engine runs a CSR-family backend whose snapshot is current
        (the steady state right after :meth:`apply_batch`), this is a
        zero-copy reference grab: :class:`~repro.graph.csr.CSRGraph`
        instances are never mutated — ``refresh`` swaps in a new object —
        and the ``source_version`` stamp proves freshness.  The dict
        backend (or a stale snapshot) pays one full build.  This is the
        structure-publication primitive of :mod:`repro.serve`: the snapshot
        stays internally consistent no matter what later updates do.
        """
        self._resync_if_mutated_externally()
        context = self._context
        if context is not None and isinstance(context.engine, CSREngine):
            csr = context.engine.csr
            if csr.source_version == self.graph.version:
                return csr
        return CSRGraph.from_graph(self.graph, relabel=self.relabel)

    def core_number(self, v: Vertex) -> int:
        """Current core index of one vertex (raises KeyError if absent)."""
        self._resync_if_mutated_externally()
        return self._core[v]

    def decomposition(self) -> CoreDecomposition:
        """Wrap the current indices in a :class:`CoreDecomposition` view.

        The core index is a defensive copy (like :meth:`core_numbers`), but
        the wrapped ``graph`` is the engine's **live** graph: structure
        queries (``core_subgraph`` etc.) made after further updates mix old
        cores with new structure.  Callers that need a fully frozen epoch
        should use :meth:`csr_snapshot` alongside :meth:`core_numbers`, as
        the query service does.
        """
        self._resync_if_mutated_externally()
        return CoreDecomposition(self.graph, self.h, dict(self._core),
                                 algorithm="dynamic")

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateSummary:
        """Insert one edge (no-op if present) and maintain the cores."""
        return self.apply(INSERT, u, v)

    def delete_edge(self, u: Vertex, v: Vertex) -> UpdateSummary:
        """Delete one edge (must exist) and maintain the cores."""
        return self.apply(DELETE, u, v)

    def apply(self, op: str, u: Vertex, v: Vertex) -> UpdateSummary:
        """Apply a single edge update; see :meth:`apply_batch`."""
        return self.apply_batch([(op, u, v)])

    def apply_batch(self,
                    updates: Iterable[Union[EdgeUpdate, Tuple[str, Vertex,
                                                              Vertex]]]
                    ) -> UpdateSummary:
        """Apply a batch of edge updates and restore exact core indices.

        Each update is ``(op, u, v)`` with ``op`` one of the spellings
        accepted by :func:`repro.dynamic.stream.normalize_op` (``"+"`` /
        ``"-"`` canonically).  Inserting an existing edge is a counted
        no-op; deleting a missing edge raises
        :class:`~repro.errors.EdgeNotFoundError` *before* any update of the
        batch has been applied, so a failed batch leaves the engine
        unchanged.  Self-loop insertions are rejected the same way.

        Returns an :class:`~repro.dynamic.stats.UpdateSummary` describing
        whether the batch was resolved incrementally, by the
        full-recomputation fallback, or was a no-op.
        """
        self._resync_if_mutated_externally()
        normalized = [EdgeUpdate(normalize_op(op), u, v)
                      for op, u, v in updates]
        self._validate_batch(normalized)

        seeds: Set[Vertex] = set()
        touched: Set[Vertex] = set()
        applied = 0
        skipped = 0
        had_insertions = False
        for op, u, v in normalized:
            if op == INSERT:
                if self.graph.has_edge(u, v):
                    skipped += 1
                    continue
                self.graph.add_edge(u, v)
                # Seeds are measured with the edge present: after an insert.
                self._collect_seeds(seeds, u, v)
                had_insertions = True
            else:
                # ... and before a delete.
                self._collect_seeds(seeds, u, v)
                self.graph.remove_edge(u, v)
            touched.update((u, v))
            applied += 1

        self.stats.updates_applied += applied
        self.stats.noop_updates += skipped
        if not applied:
            self._synced_version = self.graph.version
            return UpdateSummary(mode=MODE_NOOP, skipped=skipped,
                                 reason="no structural change")
        self.stats.batches += 1

        summary = self._maintain(seeds, touched, applied, skipped,
                                 had_insertions)
        self._synced_version = self.graph.version
        return summary

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _validate_batch(self, updates: Sequence[EdgeUpdate]) -> None:
        """Fail fast on updates that would abort the batch midway.

        Simulates presence/absence of the touched edges so that deleting an
        edge inserted earlier in the same batch (and vice versa) validates
        correctly.
        """
        present: Dict[frozenset, bool] = {}
        for op, u, v in updates:
            if u == v and op == INSERT:
                # Graph.add_edge would reject it; surface it pre-mutation.
                raise GraphError(
                    f"self-loops are not supported (vertex {u!r})")
            key = frozenset((u, v))
            exists = present.get(key, self.graph.has_edge(u, v))
            if op == DELETE and not exists:
                raise EdgeNotFoundError(u, v)
            present[key] = op == INSERT

    def _collect_seeds(self, seeds: Set[Vertex], u: Vertex,
                       v: Vertex) -> None:
        """Add ``{u, v} ∪ N_h(u) ∪ N_h(v)`` (current graph) to ``seeds``.

        Seed collection always walks the live dict graph — cheap, and
        independent of whether the peeling backend snapshot is current.
        """
        h = self.h
        seeds.add(u)
        seeds.add(v)
        seeds.update(h_bounded_neighbors(self.graph, u, h,
                                         counters=self.counters))
        seeds.update(h_bounded_neighbors(self.graph, v, h,
                                         counters=self.counters))

    def _maintain(self, seeds: Set[Vertex], touched: Set[Vertex],
                  applied: int, skipped: int,
                  had_insertions: bool) -> UpdateSummary:
        """Resolve one applied batch: incremental re-peel or fallback."""
        n = self.graph.num_vertices
        limit = int(self.fallback_ratio * n)
        if len(seeds) > limit:
            return self._full_recompute(
                touched=touched, applied=applied, skipped=skipped,
                reason=f"seed region {len(seeds)} > limit {limit}")

        result = self._incremental_repeel(seeds, touched, limit,
                                          had_insertions)
        if result is None:
            return self._full_recompute(
                touched=touched, applied=applied, skipped=skipped,
                reason="dirty region exceeded limit during expansion")
        region_size, universe_size, expansions, changed = result
        self.stats.incremental_repeels += 1
        self.stats.region_expansions += expansions
        self.stats.last_region_size = region_size
        self.stats.last_universe_size = universe_size
        self.stats.peak_universe_size = max(self.stats.peak_universe_size,
                                            universe_size)
        self.stats.vertices_repeeled += region_size
        self.stats.cores_changed += len(changed)
        return UpdateSummary(mode=MODE_INCREMENTAL, applied=applied,
                             skipped=skipped, region_size=region_size,
                             universe_size=universe_size,
                             expansions=expansions,
                             cores_changed=len(changed),
                             changed_vertices=frozenset(changed))

    def _rise_closure(self, engine: Engine, region: Set[object],
                      limit: int,
                      ball_cache: Dict[object, List[object]]
                      ) -> Optional[Set[object]]:
        """Close ``region`` over every vertex whose core could *increase*.

        A frozen shell is only sound if no shell vertex's core can change.
        Deletion cascades are caught by the diff-driven expansion (a fall
        always chain-links back to a detected fall inside the region), but
        a *rise* can hide entirely: a new cycle through two shell vertices
        pinned at their old cores never registers a diff.  The escape hatch
        is the maximality of the old decomposition: any set of vertices
        that rises must chain back — riser to riser, each within distance
        ``h`` of the next — to an inserted edge, and every riser ``x``
        necessarily satisfies ``deg^h(x) > core_old(x)`` in the new graph
        (a core index never exceeds the full-graph h-degree).  Flooding
        from the seeds through vertices passing that test therefore covers
        every possible riser.  Returns the closed region, or ``None`` once
        it exceeds ``limit`` (caller falls back).
        """
        h = self.h
        counters = self.counters
        old_core = self._core
        tested: Dict[object, Optional[List[object]]] = {}

        def riser_ball(handle: object) -> Optional[List[object]]:
            """The h-ball of ``handle`` if it may rise, else None (cached).

            One BFS serves both purposes: its size is the full-graph
            h-degree (the rise test) and its members are the next flood
            frontier.
            """
            if handle in tested:
                return tested[handle]
            ball = ball_cache.get(handle)
            if ball is None:
                ball = engine.h_neighborhood(handle, h, None, counters)
                ball_cache[handle] = ball
            old = old_core.get(engine.label(handle), -1)
            result = ball if len(ball) > old else None
            tested[handle] = result
            return result

        frontier: List[object] = []
        for w in region:
            ball = engine.h_neighborhood(w, h, None, counters)
            ball_cache[w] = ball
            frontier.extend(ball)
        while frontier:
            grown: List[object] = []
            for x in frontier:
                if x in region:
                    continue
                ball = riser_ball(x)
                if ball is not None:
                    region.add(x)
                    if len(region) > limit:
                        # Bail before paying a BFS for every remaining
                        # frontier entry: the fallback is already decided.
                        return None
                    grown.extend(ball)
            frontier = grown
        return region

    def _incremental_repeel(self, seeds: Set[Vertex], touched: Set[Vertex],
                            limit: int, had_insertions: bool
                            ) -> Optional[Tuple[int, int, int, Set[Vertex]]]:
        """Run the seed → (rise-close) → re-peel → expand fixed point.

        Returns ``(region_size, universe_size, expansions, changed_labels)``
        on success — ``changed_labels`` being the exact set of vertices
        whose core index changed — or ``None`` when the region outgrew
        ``limit`` (caller falls back to full recomputation).
        """
        engine = self._refreshed_engine(touched)
        h = self.h
        counters = self.counters
        old_core = self._core

        # Full-graph h-balls, memoized for the duration of the batch: the
        # graph does not change between here and the commit, and the rise
        # closure, the shell computation and the diff expansion all ask for
        # the same balls.
        ball_cache: Dict[object, List[object]] = {}

        def full_ball(handle: object) -> List[object]:
            ball = ball_cache.get(handle)
            if ball is None:
                ball = engine.h_neighborhood(handle, h, None, counters)
                ball_cache[handle] = ball
            return ball

        region: Set[object] = {engine.handle_of(v) for v in seeds
                               if v in self.graph}
        if had_insertions:
            closed = self._rise_closure(engine, region, limit, ball_cache)
            if closed is None:
                return None
            region = closed
        expansions = 0
        while True:
            # Shell: N_h[region] \ region, pinned at old core levels.  A
            # region member without an old core is a vertex created by this
            # batch; it is always treated as changed below.
            if len(region) > limit:
                return None
            shell_levels: Dict[object, int] = {}
            for w in region:
                for x in full_ball(w):
                    if x not in region and x not in shell_levels:
                        shell_levels[x] = old_core[engine.label(x)]
            universe = len(region) + len(shell_levels)

            new_core = repeel_region(engine, h, region, shell_levels,
                                     counters)

            changed = [w for w in region
                       if old_core.get(engine.label(w)) != new_core[w]]
            grow: Set[object] = set()
            for w in changed:
                for x in full_ball(w):
                    if x not in region:
                        grow.add(x)
            if not grow:
                changed_labels = {engine.label(w) for w in changed}
                for w in region:
                    old_core[engine.label(w)] = new_core[w]
                return len(region), universe, expansions, changed_labels
            if expansions >= self.max_expansions:
                return None
            expansions += 1
            region |= grow

    def close(self) -> None:
        """Tear down the owned execution context (worker pools, shared memory).

        Idempotent; the engine rebuilds its context transparently if used
        again afterwards.
        """
        context, self._context = self._context, None
        if context is not None:
            context.close()

    def _refreshed_engine(self, touched: Optional[Set[Vertex]]) -> Engine:
        """Return the peeling engine, snapshot brought up to date."""
        context = self._context
        if context is None or context.engine.graph is not self.graph:
            if context is not None:
                context.close()
            self._context = context = ExecutionContext(
                self.graph, backend=self.backend, executor=self.executor,
                num_workers=self.num_workers, counters=self.counters,
                relabel=self.relabel, storage=self.storage)
        elif isinstance(context.engine, CSREngine):
            context.engine.refresh(touched)
        return context.engine

    def _resync_if_mutated_externally(self) -> None:
        """Recompute everything if the graph changed behind our back."""
        if self._synced_version != self.graph.version:
            self.stats.external_resyncs += 1
            self._full_recompute()

    def _full_recompute(self, initial: bool = False,
                        touched: Optional[Set[Vertex]] = None,
                        applied: int = 0, skipped: int = 0,
                        reason: str = "") -> UpdateSummary:
        """From-scratch decomposition with the configured batch algorithm."""
        self._refreshed_engine(touched)
        result = core_decomposition(self.graph, self.h,
                                    algorithm=self.algorithm,
                                    partition_size=self.partition_size,
                                    counters=self.counters,
                                    context=self._context)
        previous = self._core
        self._core = dict(result.core_index)
        self._synced_version = self.graph.version
        if initial:
            changed: frozenset = frozenset()
        else:
            # Vertices whose core moved, vertices created by the batch, and
            # vertices that vanished (external remove_vertex) all count.
            changed = frozenset(
                {v for v, k in self._core.items() if previous.get(v) != k}
                | {v for v in previous if v not in self._core})
        if not initial:
            self.stats.full_recomputes += 1
            self.stats.cores_changed += len(changed)
        return UpdateSummary(mode=MODE_FULL, applied=applied,
                             skipped=skipped, cores_changed=len(changed),
                             reason=reason or "full recomputation",
                             changed_vertices=changed)

    def __repr__(self) -> str:
        return (f"DynamicKHCore(h={self.h}, backend={self.backend!r}, "
                f"|V|={self.graph.num_vertices}, "
                f"|E|={self.graph.num_edges}, "
                f"updates={self.stats.updates_applied})")

"""Command-line interface: decompose an edge-list file.

Usage::

    python -m repro input.edges --h 2                 # print core indices
    python -m repro input.edges --h 3 --algorithm h-LB+UB --output cores.txt
    python -m repro input.edges --h 2 --summary       # only aggregate stats
    python -m repro --demo --h 2                      # run on a built-in demo graph

The input format is a plain edge list (one ``u v`` pair per line, ``#``/``%``
comments allowed — the SNAP convention).  The output is one ``vertex core``
pair per line, or a short summary with ``--summary``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core import core_decomposition_with_report
from repro.errors import ReproError
from repro.graph import Graph, read_edge_list
from repro.graph.generators import relaxed_caveman_graph


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distance-generalized ((k,h)-core) decomposition of an edge list.",
    )
    parser.add_argument("input", nargs="?", help="edge-list file (u v per line)")
    parser.add_argument("--demo", action="store_true",
                        help="use a built-in demo graph instead of an input file")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    parser.add_argument("--algorithm", default="auto",
                        choices=("auto", "classic", "naive", "h-BZ", "h-LB", "h-LB+UB"),
                        help="decomposition algorithm (default: auto)")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "dict", "csr"),
                        help="graph backend for the generalized algorithms: "
                             "dict (reference), csr (flat-array, faster), or "
                             "auto (csr for integer-vertex graphs)")
    parser.add_argument("--partition-size", type=int, default=1,
                        help="partition size S for h-LB+UB (default: 1)")
    parser.add_argument("--threads", type=int, default=1,
                        help="threads for bulk h-degree computation (default: 1)")
    parser.add_argument("--output", help="write 'vertex core' lines to this file")
    parser.add_argument("--summary", action="store_true",
                        help="print only aggregate statistics")
    return parser


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.demo:
        return relaxed_caveman_graph(8, 8, 0.15, seed=0)
    if not args.input:
        raise ReproError("either an input file or --demo is required")
    return read_edge_list(args.input)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        graph = _load_graph(args)
        report = core_decomposition_with_report(
            graph, args.h, algorithm=args.algorithm,
            dataset_name=args.input or "demo",
            partition_size=args.partition_size, num_threads=args.threads,
            backend=args.backend)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    result = report.result
    print(f"# graph: {graph.num_vertices} vertices, {graph.num_edges} edges", file=sys.stderr)
    print(f"# algorithm: {result.algorithm}, h = {args.h}", file=sys.stderr)
    print(f"# time: {report.seconds:.3f}s, h-BFS visits: {report.visits}", file=sys.stderr)
    print(f"# h-degeneracy: {result.degeneracy}, distinct cores: {result.num_distinct_cores}",
          file=sys.stderr)

    if args.summary:
        sizes = result.core_sizes()
        for k in sorted(sizes):
            print(f"core {k}: {sizes[k]} vertices")
        return 0

    lines = [f"{vertex} {core}" for vertex, core in
             sorted(result.core_index.items(), key=lambda item: repr(item[0]))]
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"# wrote {len(lines)} lines to {args.output}", file=sys.stderr)
    else:
        for line in lines:
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: decompose an edge-list file, or replay a stream.

Usage::

    python -m repro input.edges --h 2                 # print core indices
    python -m repro input.edges --h 3 --algorithm h-LB+UB --output cores.txt
    python -m repro input.edges --h 2 --summary       # only aggregate stats
    python -m repro input.edges --h 2 --workers 4 --executor process
    python -m repro --demo --h 2                      # run on a built-in demo graph
    python -m repro stream updates.txt --h 2          # replay an edge stream
    python -m repro stream updates.txt --graph input.edges --batch-size 32
    python -m repro serve input.edges --h 2 --port 8742   # online queries
    python -m repro index build input.edges --db g.khidx  # persistent index
    python -m repro index query g.khidx spectrum --v 3
    python -m repro index refresh g.khidx updates.txt
    python -m repro datasets export jazz jazz.edges       # stable fixtures
    python -m repro datasets fetch caHe                   # real SNAP graph
    python -m repro load big.edges --out big.khcsr        # out-of-core build
    python -m repro big.khcsr --h 2 --summary             # decompose it
    python -m repro doctor /data --json                   # reclaim crash debris

The input format is a plain edge list (one ``u v`` pair per line, ``#``/``%``
comments allowed — the SNAP convention) or a ``.khcsr`` CSR block file
built by the ``load`` subcommand (opened memory-mapped, so graphs larger
than RAM decompose without ever being expanded into dicts).  The output is
one ``vertex core`` pair per line, or a short summary with ``--summary``.

The ``load`` subcommand streams a large edge list into a ``.khcsr`` block
file with bounded memory (two-pass external-sort pipeline — see
``docs/scaling.md``); ``--json`` reports load statistics including the
process peak RSS, which the out-of-core benchmark asserts against.

The ``stream`` subcommand replays an edge-update stream (one ``op u v`` line
per update, ``op`` being ``+`` or ``-``) through the dynamic maintenance
engine (:class:`repro.dynamic.DynamicKHCore`), starting from an optional
base graph, and prints the final core indices plus maintenance statistics.

The ``serve`` subcommand (``python -m repro serve input.edges --h 2
--port 8742``) keeps a warm dynamic engine resident and answers
core-number / core-subgraph / spectrum / top-community queries over
HTTP/JSON while ``POST /update`` batches stream in — see
:mod:`repro.serve`.

The ``index`` subcommand family manages the persistent core-spectrum
index (:mod:`repro.index`): ``index build`` precomputes cores for an
h-range into an SQLite store, ``index query`` answers lookups straight
from it (JSON on stdout), ``index refresh`` applies an update stream
incrementally, and ``index stats`` reports store metadata.  The
``datasets`` subcommands list the registry and export byte-stable
edge-list fixtures.

The ``doctor`` subcommand sweeps crash debris: orphaned ``/dev/shm``
segments whose owning process died, ``.khcsr`` block files stuck in the
*building* state, and interrupted index builds — see
:mod:`repro.resilience.janitor` and ``docs/operations.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Hashable, Optional, Sequence

from repro.core import core_decomposition_with_report
from repro.core.backends import resolved_backend_name
from repro.dynamic import DynamicKHCore, read_update_stream
from repro.errors import ReproError
from repro.graph import Graph, read_edge_list
from repro.graph.generators import relaxed_caveman_graph
from repro.graph.storage import BLOCK_SUFFIX
from repro.runtime import ExecutionContext, resolve_worker_count


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the (default) decompose command."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distance-generalized ((k,h)-core) decomposition of an edge list.",
        epilog="Use 'python -m repro stream --help' for the streaming "
               "replay mode, 'python -m repro serve --help' for the "
               "HTTP/JSON query service.",
    )
    parser.add_argument("input", nargs="?", help="edge-list file (u v per line)")
    parser.add_argument("--demo", action="store_true",
                        help="use a built-in demo graph instead of an input file")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    parser.add_argument("--algorithm", default="auto",
                        choices=("auto", "classic", "naive", "h-BZ", "h-LB", "h-LB+UB"),
                        help="decomposition algorithm (default: auto)")
    _add_backend_arguments(parser)
    parser.add_argument("--storage-dir", default=None,
                        help="directory for storage=mmap block files "
                             "(default: the system temp dir)")
    parser.add_argument("--partition-size", type=int, default=1,
                        help="partition size S for h-LB+UB (default: 1)")
    parser.add_argument("--threads", type=int, default=None,
                        help="deprecated legacy alias for --workers")
    parser.add_argument("--workers", type=int, default=None,
                        help="workers for the bulk h-degree passes "
                             "(default: 1)")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process"),
                        help="scheduler for the bulk h-degree passes: "
                             "serial, thread (GIL-bound), or process "
                             "(shared-memory multiprocessing; scales with "
                             "real cores)")
    parser.add_argument("--output", help="write 'vertex core' lines to this file")
    parser.add_argument("--summary", action="store_true",
                        help="print only aggregate statistics")
    parser.add_argument("--verbose", action="store_true",
                        help="print extra diagnostics (e.g. the resolved backend)")
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``stream`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro stream",
        description="Replay an edge-update stream through the dynamic "
                    "(k,h)-core maintenance engine.",
    )
    parser.add_argument("updates",
                        help="update-stream file ('+ u v' / '- u v' per line)")
    parser.add_argument("--graph", dest="graph",
                        help="edge-list file with the initial graph "
                             "(default: start from an empty graph)")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    _add_backend_arguments(parser)
    parser.add_argument("--batch-size", type=int, default=1,
                        help="apply updates in batches of this size "
                             "(default: 1 = one maintenance round per update)")
    parser.add_argument("--fallback-ratio", type=float, default=None,
                        help="dirty-region fraction of |V| above which a "
                             "batch falls back to full recomputation "
                             "(default: engine default)")
    parser.add_argument("--output", help="write 'vertex core' lines to this file")
    parser.add_argument("--summary", action="store_true",
                        help="print only aggregate statistics")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-batch progress and the resolved backend")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve (k,h)-core queries over HTTP/JSON from a "
                    "resident dynamic maintenance engine.",
    )
    parser.add_argument("input", nargs="?",
                        help="edge-list file with the graph to load")
    parser.add_argument("--demo", action="store_true",
                        help="serve a built-in demo graph instead of an "
                             "input file")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    _add_backend_arguments(parser)
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8742,
                        help="TCP port; 0 binds an ephemeral port "
                             "(default: 8742)")
    parser.add_argument("--fallback-ratio", type=float, default=None,
                        help="dirty-region fraction of |V| above which an "
                             "update batch falls back to full recomputation "
                             "(default: engine default)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="maximum updates accepted per POST /update "
                             "batch (default: 1024)")
    parser.add_argument("--index", dest="index_path", default=None,
                        help="attach a persistent core index (built with "
                             "'index build' from the same graph); spectrum "
                             "and off-h point queries are served from it "
                             "while the graph is unmodified")
    parser.add_argument("--workers", type=int, default=None,
                        help="workers for full-recompute bulk passes")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process"),
                        help="scheduler for full-recompute bulk passes")
    parser.add_argument("--request-deadline", type=float, default=None,
                        help="per-request wall-clock budget in seconds; "
                             "slow reads get 408, slow handlers 503, both "
                             "with Retry-After (default: no deadline)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="update batches allowed to queue behind the "
                             "writer before new ones are shed with 503 "
                             "(default: 64)")
    parser.add_argument("--repeel-budget", type=float, default=None,
                        help="writer watchdog: an incremental re-peel "
                             "slower than this many seconds pins the "
                             "engine to full recomputes (default: off)")
    parser.add_argument("--grace", type=float, default=5.0,
                        help="seconds to wait for in-flight connections "
                             "to drain on SIGTERM/SIGINT (default: 5)")
    parser.add_argument("--verbose", action="store_true",
                        help="print the resolved backend and engine "
                             "configuration")
    return parser


def build_load_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``load`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro load",
        description="Stream an edge-list file into an on-disk CSR block "
                    "file (.khcsr) with bounded memory, ready for "
                    "memory-mapped decomposition.",
    )
    parser.add_argument("input", help="edge-list file (u v per line)")
    parser.add_argument("--out", default=None,
                        help="block file to write (default: <input>.khcsr)")
    parser.add_argument("--max-ram-bytes", type=int, default=None,
                        help="peak-RSS budget for the loader's working "
                             "state; smaller budgets spill more but the "
                             "output is byte-identical (default: 64 MiB)")
    parser.add_argument("--tmp-dir", default=None,
                        help="directory for build scratch files "
                             "(default: alongside the output)")
    parser.add_argument("--external-relabel", action="store_true",
                        help="force the fully external relabel path even "
                             "when the rank table would fit the budget")
    parser.add_argument("--json", action="store_true",
                        help="print load statistics as JSON on stdout "
                             "(includes the process peak RSS in KiB)")
    return parser


def load_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro load``."""
    # Deferred import: the loader stack is only needed by this subcommand.
    import resource

    from repro.graph.stream_load import stream_load_with_stats

    parser = build_load_parser()
    args = parser.parse_args(list(argv))
    out_path = args.out or (args.input + BLOCK_SUFFIX)
    started = time.perf_counter()
    try:
        csr, stats = stream_load_with_stats(
            args.input, out_path=out_path,
            max_ram_bytes=args.max_ram_bytes, tmp_dir=args.tmp_dir,
            external_relabel=True if args.external_relabel else None)
        csr.close()
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if args.json:
        return _print_json({
            "out": out_path,
            "vertices": stats.vertices,
            "edges": stats.edges,
            "lines": stats.lines,
            "self_loops": stats.self_loops,
            "duplicate_edges": stats.duplicate_edges,
            "identity_labels": stats.identity_labels,
            "external_relabel": stats.external_relabel,
            "spill_runs": stats.spill_runs,
            "seconds": elapsed,
            "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        })
    print(f"# wrote {out_path}: {stats.vertices} vertices, "
          f"{stats.edges} edges in {elapsed:.3f}s "
          f"({stats.spill_runs} spill runs)", file=sys.stderr)
    return 0


def build_doctor_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``doctor`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro doctor",
        description="Reclaim crash debris: orphaned shared-memory "
                    "segments, .khcsr block files stuck in the building "
                    "state, and interrupted index builds.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to sweep for .khcsr / "
                             ".khidx debris (directories recurse)")
    parser.add_argument("--shm-dir", default=None,
                        help="shared-memory mount to sweep for orphaned "
                             "kh-core segments (default: /dev/shm when "
                             "present)")
    parser.add_argument("--min-age", type=float, default=60.0,
                        help="only reclaim artifacts older than this many "
                             "seconds, so in-progress builds are never "
                             "swept (default: 60)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be reclaimed without "
                             "deleting anything")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON on stdout")
    return parser


def doctor_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro doctor``."""
    # Deferred import: the janitor pulls in the storage/sqlite stacks.
    from repro.resilience.janitor import run_doctor

    parser = build_doctor_parser()
    args = parser.parse_args(list(argv))
    try:
        report = run_doctor(args.paths, shm_dir=args.shm_dir,
                            min_age=args.min_age, apply=not args.dry_run)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        return _print_json(report.as_dict())
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(f"# scanned {report.segments_checked} shm segment(s), "
          f"{report.blocks_checked} block file(s), "
          f"{report.indexes_checked} index(es)", file=sys.stderr)
    print(f"# {verb} {len(report.reclaimed_segments)} segment(s), "
          f"{len(report.reclaimed_blocks)} block(s), "
          f"{len(report.reclaimed_indexes)} index(es); "
          f"recovered {len(report.recovered_indexes)} WAL(s)",
          file=sys.stderr)
    for path in (report.reclaimed_segments + report.reclaimed_blocks
                 + report.reclaimed_indexes):
        print(path)
    return 0


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "dict", "csr", "numpy", "native"),
                        help="graph backend for the generalized algorithms: "
                             "dict (reference), csr (flat-array, faster), "
                             "numpy (vectorized kernels; needs the optional "
                             "NumPy extra), native (compiled GIL-releasing "
                             "kernels; needs the optional Numba extra), or "
                             "auto (the fastest installed engine for large "
                             "integer-vertex graphs, csr below the size "
                             "thresholds)")
    parser.add_argument("--csr-threshold", type=int, default=None,
                        help="minimum vertex count for backend=auto to pick "
                             "csr (default: KH_CORE_CSR_THRESHOLD env var, "
                             "then 0)")
    parser.add_argument("--relabel", default=None,
                        choices=("none", "degree", "bfs"),
                        help="cache-locality vertex relabeling applied at "
                             "CSR build time (degree: hubs first, bfs: "
                             "neighbors clustered); results are unaffected, "
                             "only the internal index order changes")
    parser.add_argument("--storage", default="auto",
                        choices=("auto", "ram", "mmap"),
                        help="where the CSR snapshot arrays live: ram "
                             "(in-process), mmap (an on-disk block file, "
                             "for graphs larger than RAM), or auto (mmap "
                             "above the KH_CORE_MMAP_THRESHOLD payload "
                             "size, ram below)")


def _load_graph(args: argparse.Namespace, mutable: bool = False):
    """Load the graph named by ``args`` (demo, edge list, or block file).

    A ``.khcsr`` input (built by the ``load`` subcommand) is opened
    memory-mapped and wrapped in a read-only
    :class:`~repro.graph.views.FrozenGraphView` — decomposition and index
    builds run on it directly without expanding the graph into dicts.
    Commands that mutate the graph (``stream``, ``serve``) pass
    ``mutable=True`` and reject block files with a clear error.
    """
    if args.demo:
        return relaxed_caveman_graph(8, 8, 0.15, seed=0)
    if not args.input:
        raise ReproError("either an input file or --demo is required")
    if args.input.endswith(BLOCK_SUFFIX):
        if mutable:
            raise ReproError(
                f"{args.input}: CSR block files are read-only snapshots; "
                "this command needs a mutable graph — pass the original "
                "edge-list file instead")
        from repro.graph.storage import load_csr
        from repro.graph.views import FrozenGraphView

        return FrozenGraphView(load_csr(args.input))
    return read_edge_list(args.input)


def _emit_core_lines(core_index, output: Optional[str]) -> int:
    """Print or write ``vertex core`` lines; returns the process exit code."""
    lines = [f"{vertex} {core}" for vertex, core in
             sorted(core_index.items(), key=lambda item: repr(item[0]))]
    if output:
        try:
            with open(output, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"# wrote {len(lines)} lines to {output}", file=sys.stderr)
    else:
        for line in lines:
            print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` (and the ``kh-core`` script).

    The ``stream``, ``serve``, ``index``, ``datasets`` and ``load``
    subcommands are
    dispatched on the first token rather than through argparse subparsers,
    because the default command's optional positional input would otherwise
    be ambiguous.  Consequence: an edge-list file literally named after a
    subcommand must be passed with a path prefix (``./stream``).
    """
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "stream":
        return stream_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "index":
        return index_main(argv[1:])
    if argv and argv[0] == "datasets":
        return datasets_main(argv[1:])
    if argv and argv[0] == "load":
        return load_main(argv[1:])
    if argv and argv[0] == "doctor":
        return doctor_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        graph = _load_graph(args)
        backend = resolved_backend_name(graph, args.backend,
                                        csr_threshold=args.csr_threshold)
        # One shared shim handles the legacy spelling (--threads) exactly
        # like the library handles num_threads=.
        workers = resolve_worker_count(args.workers, args.threads,
                                       old="--threads", new="--workers")
        with ExecutionContext(graph, backend=backend,
                              executor=args.executor,
                              num_workers=workers,
                              csr_threshold=args.csr_threshold,
                              relabel=args.relabel,
                              storage=args.storage,
                              storage_dir=args.storage_dir) as context:
            report = core_decomposition_with_report(
                graph, args.h, algorithm=args.algorithm,
                dataset_name=args.input or "demo",
                partition_size=args.partition_size, context=context)
            resilience = context.resilience
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    result = report.result
    print(f"# graph: {graph.num_vertices} vertices, {graph.num_edges} edges", file=sys.stderr)
    print(f"# algorithm: {result.algorithm}, h = {args.h}", file=sys.stderr)
    if args.verbose:
        print(f"# backend: {backend} (requested: {args.backend})", file=sys.stderr)
        print(f"# executor: {args.executor}, workers: {workers}",
              file=sys.stderr)
        if resilience is not None:
            print(f"# resilience: {resilience.summary()}", file=sys.stderr)
    print(f"# time: {report.seconds:.3f}s, h-BFS visits: {report.visits}", file=sys.stderr)
    print(f"# h-degeneracy: {result.degeneracy}, distinct cores: {result.num_distinct_cores}",
          file=sys.stderr)

    if args.summary:
        sizes = result.core_sizes()
        for k in sorted(sizes):
            print(f"core {k}: {sizes[k]} vertices")
        return 0

    return _emit_core_lines(result.core_index, args.output)


def stream_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro stream``."""
    parser = build_stream_parser()
    args = parser.parse_args(list(argv))
    try:
        if args.graph and args.graph.endswith(BLOCK_SUFFIX):
            raise ReproError(
                f"{args.graph}: CSR block files are read-only snapshots; "
                "stream replay needs a mutable graph — pass the original "
                "edge-list file instead")
        graph = read_edge_list(args.graph) if args.graph else Graph()
        updates = read_update_stream(args.updates)
        engine_kwargs = {}
        if args.fallback_ratio is not None:
            engine_kwargs["fallback_ratio"] = args.fallback_ratio
        backend = resolved_backend_name(graph, args.backend,
                                        csr_threshold=args.csr_threshold)
        engine = DynamicKHCore(graph, h=args.h, backend=backend,
                               relabel=args.relabel, storage=args.storage,
                               **engine_kwargs)
        if args.verbose:
            print(f"# backend: {backend} (requested: {args.backend})",
                  file=sys.stderr)
            print(f"# initial graph: {graph.num_vertices} vertices, "
                  f"{graph.num_edges} edges", file=sys.stderr)

        batch_size = max(1, args.batch_size)
        started = time.perf_counter()
        for offset in range(0, len(updates), batch_size):
            summary = engine.apply_batch(updates[offset:offset + batch_size])
            if args.verbose:
                print(f"# batch {offset // batch_size}: mode={summary.mode} "
                      f"applied={summary.applied} "
                      f"region={summary.region_size} "
                      f"cores_changed={summary.cores_changed}",
                      file=sys.stderr)
        elapsed = time.perf_counter() - started
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    stats = engine.stats
    print(f"# replayed {stats.updates_applied} updates "
          f"({stats.noop_updates} no-ops) in {elapsed:.3f}s", file=sys.stderr)
    print(f"# final graph: {engine.graph.num_vertices} vertices, "
          f"{engine.graph.num_edges} edges", file=sys.stderr)
    print(f"# maintenance: {stats.incremental_repeels} incremental, "
          f"{stats.full_recomputes} full recomputations, "
          f"peak dirty universe {stats.peak_universe_size}", file=sys.stderr)

    if args.summary:
        sizes = engine.decomposition().core_sizes()
        for k in sorted(sizes):
            print(f"core {k}: {sizes[k]} vertices")
        return 0
    return _emit_core_lines(engine.core_numbers(), args.output)


def serve_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro serve``."""
    # Deferred import: the serve package pulls in asyncio plumbing the
    # batch commands never need.
    from repro.serve import CoreService, run_app

    parser = build_serve_parser()
    args = parser.parse_args(list(argv))
    try:
        graph = _load_graph(args, mutable=True)
        backend = resolved_backend_name(graph, args.backend,
                                        csr_threshold=args.csr_threshold)
        service_kwargs = {}
        if args.max_batch is not None:
            service_kwargs["max_batch"] = args.max_batch
        if args.index_path is not None:
            service_kwargs["index_path"] = args.index_path
        if args.max_pending is not None:
            service_kwargs["max_pending"] = args.max_pending
        if args.repeel_budget is not None:
            service_kwargs["repeel_budget"] = args.repeel_budget
        service = CoreService(graph, h=args.h, backend=backend,
                              relabel=args.relabel, storage=args.storage,
                              fallback_ratio=args.fallback_ratio,
                              executor=args.executor,
                              num_workers=args.workers,
                              name=args.input or "demo",
                              **service_kwargs)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.verbose:
        print(f"# backend: {backend} (requested: {args.backend})",
              file=sys.stderr)
        print(f"# graph: {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges, h = {args.h}", file=sys.stderr)

    def announce(server) -> None:
        print(f"# serving on http://{server.host}:{server.port}",
              file=sys.stderr, flush=True)

    try:
        drained = asyncio.run(run_app(
            service, host=args.host, port=args.port, ready=announce,
            request_deadline=args.request_deadline,
            install_signal_handlers=True, grace=args.grace))
        if drained is not None:
            # Signal-triggered graceful shutdown: the drain completed and a
            # final epoch was published before we got here.
            snapshot = service.snapshot
            print(f"# drained {drained} in-flight connection(s); final "
                  f"epoch generation={snapshot.generation}",
                  file=sys.stderr)
    except KeyboardInterrupt:
        print("# shutting down", file=sys.stderr)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        service.close()
    return 0


def build_index_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``index`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="python -m repro index",
        description="Manage a persistent (k,h)-core spectrum index: "
                    "precompute cores for an h-range into an SQLite store, "
                    "query it without recomputation, and keep it fresh "
                    "under edge updates.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build", help="precompute the core spectrum of a graph into a store")
    build.add_argument("input", nargs="?",
                       help="edge-list file with the graph to index")
    build.add_argument("--demo", action="store_true",
                       help="index a built-in demo graph instead of a file")
    build.add_argument("--db", dest="db", default=None,
                       help="index file to create "
                            "(default: <input>.khidx)")
    build.add_argument("--h-values", default="1,2,3",
                       help="comma-separated distance thresholds to "
                            "persist (default: 1,2,3)")
    build.add_argument("--force", action="store_true",
                       help="overwrite an existing index file")
    build.add_argument("--source", default=None,
                       help="free-form provenance string stored in the "
                            "index metadata (default: the input path)")

    query = commands.add_parser(
        "query", help="answer a core query from the index (JSON on stdout)")
    query.add_argument("db", help="index file built with 'index build'")
    query.add_argument("what",
                       choices=("core-number", "spectrum", "threshold",
                                "core", "shell", "sizes", "order", "diff"),
                       help="query kind: core-number (--v --h), "
                            "spectrum (--v), threshold (--v --k), "
                            "core/shell (--k --h), sizes/order (--h), "
                            "diff (--from --to [--h])")
    query.add_argument("--v", dest="vertex", default=None,
                       help="vertex label (parsed as int when possible)")
    query.add_argument("--k", dest="k", type=int, default=None,
                       help="core index k")
    query.add_argument("--h", dest="h", type=int, default=None,
                       help="distance threshold h")
    query.add_argument("--from", dest="epoch_a", type=int, default=None,
                       help="diff window start epoch (exclusive)")
    query.add_argument("--to", dest="epoch_b", type=int, default=None,
                       help="diff window end epoch (inclusive; default: "
                            "the current epoch)")

    refresh = commands.add_parser(
        "refresh", help="apply an edge-update stream to the index "
                        "incrementally")
    refresh.add_argument("db", help="index file built with 'index build'")
    refresh.add_argument("updates",
                         help="update-stream file ('+ u v' / '- u v' per "
                              "line)")
    refresh.add_argument("--batch-size", type=int, default=64,
                         help="refresh in batches of this many updates "
                              "(default: 64)")
    refresh.add_argument("--staleness-ratio", type=float, default=None,
                         help="dirty-row fraction of the store above which "
                              "a batch triggers a full rebuild "
                              "(default: 0.5)")
    refresh.add_argument("--backend", default="auto",
                         choices=("auto", "dict", "csr", "numpy", "native"),
                         help="graph backend for the maintenance engines")
    refresh.add_argument("--fallback-ratio", type=float, default=None,
                         help="per-engine dirty-region fraction above which "
                              "a batch falls back to full recomputation")
    refresh.add_argument("--verbose", action="store_true",
                         help="print one line per refreshed batch")

    stats = commands.add_parser(
        "stats", help="print index metadata and row counts as JSON")
    stats.add_argument("db", help="index file built with 'index build'")
    stats.add_argument("--verify", action="store_true",
                       help="also run the deep row-scan checksum "
                            "verification")
    return parser


def build_datasets_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``datasets`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="python -m repro datasets",
        description="List the synthetic stand-in datasets, export them as "
                    "deterministic edge-list files, and fetch the paper's "
                    "real public graphs into a local cache.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="print the registered dataset names")

    export = commands.add_parser(
        "export", help="write a dataset as a byte-stable sorted edge list")
    export.add_argument("name", help="dataset name (see 'datasets list')")
    export.add_argument("output", help="edge-list file to write")
    export.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"),
                        help="dataset scale (default: small)")
    export.add_argument("--seed", type=int, default=0,
                        help="generator seed (default: 0)")

    fetch = commands.add_parser(
        "fetch", help="download (once) a real public dataset and print the "
                      "cached edge-list path")
    fetch.add_argument("name",
                       help="real dataset name (see 'datasets list')")
    fetch.add_argument("--cache-dir", default=None,
                       help="cache root (default: KH_CORE_DATA_DIR or "
                            "~/.cache/kh-core-datasets)")
    fetch.add_argument("--refresh", action="store_true",
                       help="re-download even when a cached archive exists "
                            "(still checksum-verified)")
    fetch.add_argument("--normalize", action="store_true",
                       help="also write the canonical sorted form and "
                            "print its path (materializes the graph in "
                            "RAM; for small/medium datasets)")
    return parser


def _parse_cli_vertex(text: str) -> Hashable:
    """Vertex labels on the command line: int when possible, else str.

    Mirrors :func:`repro.graph.io.read_edge_list`, so labels given with
    ``--v`` match labels read from an edge-list file.
    """
    try:
        return int(text)
    except ValueError:
        return text


def _print_json(payload: object) -> int:
    print(json.dumps(payload, indent=2, sort_keys=True, default=repr))
    return 0


def index_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro index``."""
    # Deferred import: sqlite plumbing the batch commands never need.
    from repro.index import CoreIndexReader, build_index, refresh_index

    parser = build_index_parser()
    args = parser.parse_args(list(argv))
    try:
        if args.command == "build":
            graph = _load_graph(args)
            db = args.db or ((args.input or "demo") + ".khidx")
            try:
                h_values = tuple(int(tok) for tok in
                                 args.h_values.split(",") if tok.strip())
            except ValueError:
                raise ReproError(
                    f"--h-values must be comma-separated integers, got "
                    f"{args.h_values!r}")
            report = build_index(
                graph, db, h_values=h_values,
                source=args.source or args.input or "demo",
                overwrite=args.force)
            return _print_json(report.as_dict())

        if args.command == "query":
            with CoreIndexReader(args.db) as reader:
                return _print_json(_run_index_query(reader, args))

        if args.command == "refresh":
            updates = read_update_stream(args.updates)
            refresh_kwargs = {}
            if args.staleness_ratio is not None:
                refresh_kwargs["staleness_ratio"] = args.staleness_ratio
            summaries = refresh_index(
                args.db, updates, batch_size=args.batch_size,
                backend=args.backend,
                fallback_ratio=args.fallback_ratio, **refresh_kwargs)
            if args.verbose:
                for i, summary in enumerate(summaries):
                    print(f"# batch {i}: mode={summary.mode} "
                          f"epoch={summary.epoch} "
                          f"applied={summary.applied} "
                          f"dirty_rows={summary.dirty_rows}",
                          file=sys.stderr)
            return _print_json([s.as_dict() for s in summaries])

        # args.command == "stats"
        with CoreIndexReader(args.db, verify=args.verify) as reader:
            return _print_json(reader.stats())
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_index_query(reader, args: argparse.Namespace) -> object:
    """Dispatch one ``index query`` invocation to the reader method."""
    def need(name: str, value) -> object:
        if value is None:
            raise ReproError(
                f"'index query {args.what}' requires --{name}")
        return value

    if args.what == "core-number":
        vertex = _parse_cli_vertex(need("v", args.vertex))
        return {"vertex": args.vertex, "h": args.h,
                "core": reader.core_number(vertex, need("h", args.h))}
    if args.what == "spectrum":
        vertex = _parse_cli_vertex(need("v", args.vertex))
        return {"vertex": args.vertex,
                "spectrum": dict(reader.spectrum(vertex))}
    if args.what == "threshold":
        vertex = _parse_cli_vertex(need("v", args.vertex))
        return {"vertex": args.vertex, "k": args.k,
                "min_h": reader.membership_threshold(vertex,
                                                     need("k", args.k))}
    if args.what == "core":
        members = reader.core_members(need("k", args.k), need("h", args.h))
        return {"k": args.k, "h": args.h, "size": len(members),
                "members": members}
    if args.what == "shell":
        members = reader.shell(need("k", args.k), need("h", args.h))
        return {"k": args.k, "h": args.h, "size": len(members),
                "members": members}
    if args.what == "sizes":
        return {"h": args.h, "sizes": reader.core_sizes(need("h", args.h)),
                "degeneracy": reader.degeneracy(args.h)}
    if args.what == "order":
        return {"h": args.h,
                "order": reader.removal_order(need("h", args.h))}
    # args.what == "diff"
    epoch_b = args.epoch_b if args.epoch_b is not None else reader.current_epoch
    changes = reader.diff(need("from", args.epoch_a), epoch_b, h=args.h)
    return {"from": args.epoch_a, "to": epoch_b, "h": args.h,
            "changes": {repr(v): {"old": old, "new": new}
                        for v, (old, new) in sorted(changes.items(),
                                                    key=lambda kv: repr(kv[0]))}}


def datasets_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro datasets``."""
    from repro.datasets import (
        REAL_DATASET_NAMES,
        available_datasets,
        dataset_spec,
        export_edge_list,
        fetch_dataset,
    )

    parser = build_datasets_parser()
    args = parser.parse_args(list(argv))
    try:
        if args.command == "list":
            for name in available_datasets():
                spec = dataset_spec(name)
                real = "[real]" if name in REAL_DATASET_NAMES else ""
                print(f"{name:6s} {spec.family:14s} "
                      f"{spec.description} {real}".rstrip())
            return 0
        if args.command == "fetch":
            path = fetch_dataset(args.name, cache_dir=args.cache_dir,
                                 refresh=args.refresh,
                                 normalize=args.normalize)
            print(path)
            return 0
        # args.command == "export"
        graph = export_edge_list(args.name, args.output, scale=args.scale,
                                 seed=args.seed)
        print(f"# wrote {args.output}: {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges", file=sys.stderr)
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: decompose an edge-list file, or replay a stream.

Usage::

    python -m repro input.edges --h 2                 # print core indices
    python -m repro input.edges --h 3 --algorithm h-LB+UB --output cores.txt
    python -m repro input.edges --h 2 --summary       # only aggregate stats
    python -m repro input.edges --h 2 --workers 4 --executor process
    python -m repro --demo --h 2                      # run on a built-in demo graph
    python -m repro stream updates.txt --h 2          # replay an edge stream
    python -m repro stream updates.txt --graph input.edges --batch-size 32
    python -m repro serve input.edges --h 2 --port 8742   # online queries

The input format is a plain edge list (one ``u v`` pair per line, ``#``/``%``
comments allowed — the SNAP convention).  The output is one ``vertex core``
pair per line, or a short summary with ``--summary``.

The ``stream`` subcommand replays an edge-update stream (one ``op u v`` line
per update, ``op`` being ``+`` or ``-``) through the dynamic maintenance
engine (:class:`repro.dynamic.DynamicKHCore`), starting from an optional
base graph, and prints the final core indices plus maintenance statistics.

The ``serve`` subcommand (``python -m repro serve input.edges --h 2
--port 8742``) keeps a warm dynamic engine resident and answers
core-number / core-subgraph / spectrum / top-community queries over
HTTP/JSON while ``POST /update`` batches stream in — see
:mod:`repro.serve`.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import Optional, Sequence

from repro.core import core_decomposition_with_report
from repro.core.backends import resolved_backend_name
from repro.dynamic import DynamicKHCore, read_update_stream
from repro.errors import ReproError
from repro.graph import Graph, read_edge_list
from repro.graph.generators import relaxed_caveman_graph
from repro.runtime import ExecutionContext, resolve_worker_count


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the (default) decompose command."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distance-generalized ((k,h)-core) decomposition of an edge list.",
        epilog="Use 'python -m repro stream --help' for the streaming "
               "replay mode, 'python -m repro serve --help' for the "
               "HTTP/JSON query service.",
    )
    parser.add_argument("input", nargs="?", help="edge-list file (u v per line)")
    parser.add_argument("--demo", action="store_true",
                        help="use a built-in demo graph instead of an input file")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    parser.add_argument("--algorithm", default="auto",
                        choices=("auto", "classic", "naive", "h-BZ", "h-LB", "h-LB+UB"),
                        help="decomposition algorithm (default: auto)")
    _add_backend_arguments(parser)
    parser.add_argument("--partition-size", type=int, default=1,
                        help="partition size S for h-LB+UB (default: 1)")
    parser.add_argument("--threads", type=int, default=None,
                        help="deprecated legacy alias for --workers")
    parser.add_argument("--workers", type=int, default=None,
                        help="workers for the bulk h-degree passes "
                             "(default: 1)")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process"),
                        help="scheduler for the bulk h-degree passes: "
                             "serial, thread (GIL-bound), or process "
                             "(shared-memory multiprocessing; scales with "
                             "real cores)")
    parser.add_argument("--output", help="write 'vertex core' lines to this file")
    parser.add_argument("--summary", action="store_true",
                        help="print only aggregate statistics")
    parser.add_argument("--verbose", action="store_true",
                        help="print extra diagnostics (e.g. the resolved backend)")
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``stream`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro stream",
        description="Replay an edge-update stream through the dynamic "
                    "(k,h)-core maintenance engine.",
    )
    parser.add_argument("updates",
                        help="update-stream file ('+ u v' / '- u v' per line)")
    parser.add_argument("--graph", dest="graph",
                        help="edge-list file with the initial graph "
                             "(default: start from an empty graph)")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    _add_backend_arguments(parser)
    parser.add_argument("--batch-size", type=int, default=1,
                        help="apply updates in batches of this size "
                             "(default: 1 = one maintenance round per update)")
    parser.add_argument("--fallback-ratio", type=float, default=None,
                        help="dirty-region fraction of |V| above which a "
                             "batch falls back to full recomputation "
                             "(default: engine default)")
    parser.add_argument("--output", help="write 'vertex core' lines to this file")
    parser.add_argument("--summary", action="store_true",
                        help="print only aggregate statistics")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-batch progress and the resolved backend")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve (k,h)-core queries over HTTP/JSON from a "
                    "resident dynamic maintenance engine.",
    )
    parser.add_argument("input", nargs="?",
                        help="edge-list file with the graph to load")
    parser.add_argument("--demo", action="store_true",
                        help="serve a built-in demo graph instead of an "
                             "input file")
    parser.add_argument("--h", type=int, default=2, dest="h",
                        help="distance threshold h (default: 2)")
    _add_backend_arguments(parser)
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8742,
                        help="TCP port; 0 binds an ephemeral port "
                             "(default: 8742)")
    parser.add_argument("--fallback-ratio", type=float, default=None,
                        help="dirty-region fraction of |V| above which an "
                             "update batch falls back to full recomputation "
                             "(default: engine default)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="maximum updates accepted per POST /update "
                             "batch (default: 1024)")
    parser.add_argument("--workers", type=int, default=None,
                        help="workers for full-recompute bulk passes")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process"),
                        help="scheduler for full-recompute bulk passes")
    parser.add_argument("--verbose", action="store_true",
                        help="print the resolved backend and engine "
                             "configuration")
    return parser


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "dict", "csr", "numpy"),
                        help="graph backend for the generalized algorithms: "
                             "dict (reference), csr (flat-array, faster), "
                             "numpy (vectorized kernels; needs the optional "
                             "NumPy extra), or auto (numpy for large "
                             "integer-vertex graphs when available, csr "
                             "below the size threshold)")
    parser.add_argument("--csr-threshold", type=int, default=None,
                        help="minimum vertex count for backend=auto to pick "
                             "csr (default: KH_CORE_CSR_THRESHOLD env var, "
                             "then 0)")
    parser.add_argument("--relabel", default=None,
                        choices=("none", "degree", "bfs"),
                        help="cache-locality vertex relabeling applied at "
                             "CSR build time (degree: hubs first, bfs: "
                             "neighbors clustered); results are unaffected, "
                             "only the internal index order changes")


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.demo:
        return relaxed_caveman_graph(8, 8, 0.15, seed=0)
    if not args.input:
        raise ReproError("either an input file or --demo is required")
    return read_edge_list(args.input)


def _emit_core_lines(core_index, output: Optional[str]) -> int:
    """Print or write ``vertex core`` lines; returns the process exit code."""
    lines = [f"{vertex} {core}" for vertex, core in
             sorted(core_index.items(), key=lambda item: repr(item[0]))]
    if output:
        try:
            with open(output, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"# wrote {len(lines)} lines to {output}", file=sys.stderr)
    else:
        for line in lines:
            print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` (and the ``kh-core`` script).

    The ``stream`` and ``serve`` subcommands are dispatched on the first
    token rather than through argparse subparsers, because the default
    command's optional positional input would otherwise be ambiguous.
    Consequence: an edge-list file literally named ``stream`` or ``serve``
    must be passed as ``./stream`` / ``./serve``.
    """
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "stream":
        return stream_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        graph = _load_graph(args)
        backend = resolved_backend_name(graph, args.backend,
                                        csr_threshold=args.csr_threshold)
        # One shared shim handles the legacy spelling (--threads) exactly
        # like the library handles num_threads=.
        workers = resolve_worker_count(args.workers, args.threads,
                                       old="--threads", new="--workers")
        with ExecutionContext(graph, backend=backend,
                              executor=args.executor,
                              num_workers=workers,
                              csr_threshold=args.csr_threshold,
                              relabel=args.relabel) as context:
            report = core_decomposition_with_report(
                graph, args.h, algorithm=args.algorithm,
                dataset_name=args.input or "demo",
                partition_size=args.partition_size, context=context)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    result = report.result
    print(f"# graph: {graph.num_vertices} vertices, {graph.num_edges} edges", file=sys.stderr)
    print(f"# algorithm: {result.algorithm}, h = {args.h}", file=sys.stderr)
    if args.verbose:
        print(f"# backend: {backend} (requested: {args.backend})", file=sys.stderr)
        print(f"# executor: {args.executor}, workers: {workers}",
              file=sys.stderr)
    print(f"# time: {report.seconds:.3f}s, h-BFS visits: {report.visits}", file=sys.stderr)
    print(f"# h-degeneracy: {result.degeneracy}, distinct cores: {result.num_distinct_cores}",
          file=sys.stderr)

    if args.summary:
        sizes = result.core_sizes()
        for k in sorted(sizes):
            print(f"core {k}: {sizes[k]} vertices")
        return 0

    return _emit_core_lines(result.core_index, args.output)


def stream_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro stream``."""
    parser = build_stream_parser()
    args = parser.parse_args(list(argv))
    try:
        graph = read_edge_list(args.graph) if args.graph else Graph()
        updates = read_update_stream(args.updates)
        engine_kwargs = {}
        if args.fallback_ratio is not None:
            engine_kwargs["fallback_ratio"] = args.fallback_ratio
        backend = resolved_backend_name(graph, args.backend,
                                        csr_threshold=args.csr_threshold)
        engine = DynamicKHCore(graph, h=args.h, backend=backend,
                               relabel=args.relabel, **engine_kwargs)
        if args.verbose:
            print(f"# backend: {backend} (requested: {args.backend})",
                  file=sys.stderr)
            print(f"# initial graph: {graph.num_vertices} vertices, "
                  f"{graph.num_edges} edges", file=sys.stderr)

        batch_size = max(1, args.batch_size)
        started = time.perf_counter()
        for offset in range(0, len(updates), batch_size):
            summary = engine.apply_batch(updates[offset:offset + batch_size])
            if args.verbose:
                print(f"# batch {offset // batch_size}: mode={summary.mode} "
                      f"applied={summary.applied} "
                      f"region={summary.region_size} "
                      f"cores_changed={summary.cores_changed}",
                      file=sys.stderr)
        elapsed = time.perf_counter() - started
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    stats = engine.stats
    print(f"# replayed {stats.updates_applied} updates "
          f"({stats.noop_updates} no-ops) in {elapsed:.3f}s", file=sys.stderr)
    print(f"# final graph: {engine.graph.num_vertices} vertices, "
          f"{engine.graph.num_edges} edges", file=sys.stderr)
    print(f"# maintenance: {stats.incremental_repeels} incremental, "
          f"{stats.full_recomputes} full recomputations, "
          f"peak dirty universe {stats.peak_universe_size}", file=sys.stderr)

    if args.summary:
        sizes = engine.decomposition().core_sizes()
        for k in sorted(sizes):
            print(f"core {k}: {sizes[k]} vertices")
        return 0
    return _emit_core_lines(engine.core_numbers(), args.output)


def serve_main(argv: Sequence[str]) -> int:
    """Entry point for ``python -m repro serve``."""
    # Deferred import: the serve package pulls in asyncio plumbing the
    # batch commands never need.
    from repro.serve import CoreService, run_app

    parser = build_serve_parser()
    args = parser.parse_args(list(argv))
    try:
        graph = _load_graph(args)
        backend = resolved_backend_name(graph, args.backend,
                                        csr_threshold=args.csr_threshold)
        service_kwargs = {}
        if args.max_batch is not None:
            service_kwargs["max_batch"] = args.max_batch
        service = CoreService(graph, h=args.h, backend=backend,
                              relabel=args.relabel,
                              fallback_ratio=args.fallback_ratio,
                              executor=args.executor,
                              num_workers=args.workers,
                              name=args.input or "demo",
                              **service_kwargs)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.verbose:
        print(f"# backend: {backend} (requested: {args.backend})",
              file=sys.stderr)
        print(f"# graph: {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges, h = {args.h}", file=sys.stderr)

    def announce(server) -> None:
        print(f"# serving on http://{server.host}:{server.port}",
              file=sys.stderr, flush=True)

    try:
        asyncio.run(run_app(service, host=args.host, port=args.port,
                            ready=announce))
    except KeyboardInterrupt:
        print("# shutting down", file=sys.stderr)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

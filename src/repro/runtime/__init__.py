"""Execution runtime: context, worker shims, and peel-state layouts.

One layer that owns *how* a decomposition runs — engine resolution, executor
selection, worker-pool lifecycle, counters, close/ownership semantics, and
the peel-state layout — so the algorithms only describe *what* they compute.
See :class:`repro.runtime.ExecutionContext` for the entry point and
:mod:`repro.runtime.peel` for the flat-array peel kernel state.
"""

from repro.runtime.context import ExecutionContext, scoped_context
from repro.runtime.peel import (
    PEEL_STATES,
    ArrayCoreMap,
    ArrayPeelState,
    DictPeelState,
    PeelState,
    make_core_map,
    make_peel_state,
    resolve_peel_kind,
)
from repro.runtime.workers import resolve_worker_count, warn_legacy_workers

__all__ = [
    "ExecutionContext",
    "scoped_context",
    "PEEL_STATES",
    "ArrayCoreMap",
    "ArrayPeelState",
    "DictPeelState",
    "PeelState",
    "make_core_map",
    "make_peel_state",
    "resolve_peel_kind",
    "resolve_worker_count",
    "warn_legacy_workers",
]

"""`ExecutionContext`: one object owning how a decomposition executes.

Before this module, every entry point (``h_bz`` / ``h_lb`` / ``h_lb_ub``,
the bounds, the facade, the dynamic engine, the CLI) separately re-threaded
the ``backend=`` / ``executor=`` / worker-count keywords and re-implemented
the same engine-ownership dance (``owned = isinstance(backend, str)`` …
``finally: engine.close()``).  The context collapses all of that into one
place:

* **Engine resolution** — ``backend`` may be a name (``"dict"`` / ``"csr"``
  / ``"auto"``) or a pre-built engine; the context resolves it exactly once
  and remembers whether it owns the result.
* **Executor + workers** — the scheduler name and worker count for the bulk
  h-degree passes, validated once, with the legacy ``num_threads`` spelling
  funneled through the single deprecation shim
  (:mod:`repro.runtime.workers`).
* **Counters** — the instrumentation sink every phase records into.
* **Peel-state layout** — ``peel="auto"`` selects the flat-array peel state
  on the CSR engine and the dict state otherwise; benchmarks force
  ``peel="dict"`` on CSR to measure the array kernel against its hash-based
  twin.
* **Close/ownership semantics** — :meth:`close` tears down engines the
  context resolved itself (process pools, shared-memory exports) and *never*
  touches a caller-supplied engine; the context is a context manager, so
  the ``try/finally`` boilerplate disappears from the algorithms.

Algorithms accept ``context=`` and otherwise build a scoped context from
their legacy keywords via :func:`scoped_context`, which is what keeps the
historical kwargs API working unchanged on top of the runtime layer.

The imports from :mod:`repro.core` are deliberately deferred into the
methods: ``repro.core``'s own modules import this package at load time, and
resolving engines lazily keeps ``import repro.runtime`` acyclic no matter
which side is imported first.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ParameterError
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.peel import (
    PEEL_STATES,
    make_core_map,
    make_peel_state,
)
from repro.runtime.workers import resolve_worker_count


class ExecutionContext:
    """Owns engine, executor, worker pool lifecycle and counters — once.

    Parameters
    ----------
    graph:
        The graph every phase of the computation runs against.
    backend:
        Backend name (``"dict"`` / ``"csr"`` / ``"numpy"`` / ``"native"`` /
        ``"auto"``) or a pre-built engine.  Name-resolved engines are
        *owned*: :meth:`close` tears them down.  A supplied engine is
        borrowed and never closed.  ``"auto"`` prefers the compiled native
        engine when Numba is importable and the graph clears the
        ``KH_CORE_NATIVE_THRESHOLD`` size gate, then the vectorized NumPy
        engine above ``KH_CORE_NUMPY_THRESHOLD``, stepping down to the
        interpreted CSR engine (and ultimately the dict engine)
        transparently.
    executor:
        Scheduler for the bulk h-degree passes (``"serial"`` / ``"thread"``
        / ``"process"``).
    num_workers:
        Worker count for the selected executor.  The legacy ``num_threads``
        keyword is still accepted (with a :class:`DeprecationWarning`);
        ``num_workers`` wins when both are given.
    counters:
        Instrumentation sink shared by every phase run under this context.
    peel:
        Peel-state layout: ``"auto"`` (array on CSR, dict otherwise),
        ``"dict"``, or ``"array"`` (CSR only).
    csr_threshold:
        Minimum vertex count for ``backend="auto"`` to pick CSR (defaults to
        the ``KH_CORE_CSR_THRESHOLD`` environment variable).
    relabel:
        Optional cache-locality vertex permutation applied when the context
        builds a CSR-family engine from a name: ``"degree"`` (hubs first)
        or ``"bfs"`` (neighbors clustered).  Label-space results are
        unaffected; the dict engine ignores it.
    storage:
        Storage tier for context-built CSR snapshots (``"auto"`` / ``"ram"``
        / ``"mmap"`` — see :mod:`repro.graph.storage`).  ``"auto"`` stays in
        RAM below the ``KH_CORE_MMAP_THRESHOLD`` gate and spills giant
        snapshots to a memory-mapped temp block file; ``"mmap"`` forces the
        spill.  A :class:`~repro.graph.views.FrozenGraphView` input reuses
        its embedded snapshot regardless.
    storage_dir:
        Directory for mmap spill files (default: the system temp dir).

    Example
    -------
    >>> from repro.graph.generators import cycle_graph
    >>> from repro.runtime import ExecutionContext
    >>> from repro.core import h_lb
    >>> graph = cycle_graph(8)
    >>> with ExecutionContext(graph, backend="csr") as ctx:
    ...     h_lb(graph, 2, context=ctx).degeneracy
    4
    """

    __slots__ = ("graph", "engine", "executor", "num_workers", "counters",
                 "peel", "owns_engine", "closed")

    def __init__(self, graph, backend="auto", executor: str = "thread",
                 num_workers: Optional[int] = None,
                 counters: Counters = NULL_COUNTERS,
                 peel: str = "auto",
                 csr_threshold: Optional[int] = None,
                 relabel: Optional[str] = None,
                 storage: str = "auto",
                 storage_dir: Optional[str] = None,
                 num_threads: Optional[int] = None) -> None:
        from repro.core.backends import resolve_engine
        from repro.core.parallel import _validate_executor

        _validate_executor(executor)
        if peel not in PEEL_STATES:
            raise ParameterError(
                f"unknown peel state {peel!r}; expected one of {PEEL_STATES}"
            )
        self.graph = graph
        self.executor = executor
        self.num_workers = resolve_worker_count(num_workers, num_threads)
        self.counters = counters
        self.peel = peel
        self.engine = resolve_engine(graph, backend, csr_threshold,
                                     relabel=relabel, storage=storage,
                                     storage_dir=storage_dir)
        #: True when the context resolved the engine from a name and is
        #: therefore responsible for tearing it down; False for
        #: caller-supplied engines, which :meth:`close` never touches.
        self.owns_engine = isinstance(backend, str)
        self.closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Tear down an owned engine (worker pools, shared memory); idempotent.

        A caller-supplied engine is left untouched — the caller owns its
        lifecycle (this is the single place that rule is implemented).
        """
        if self.closed:
            return
        self.closed = True
        if self.owns_engine:
            self.engine.close()

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # execution surface
    # ------------------------------------------------------------------ #
    @property
    def backend_name(self) -> str:
        """Concrete backend name of the resolved engine."""
        return self.engine.name

    @property
    def resilience(self):
        """The engine's :class:`ResilienceReport`, or ``None``.

        Only CSR-family engines (which can dispatch to the supervised
        process pool) carry one; dict engines expose their process
        delegate's report when they have promoted.
        """
        return getattr(self.engine, "resilience", None)

    def bulk_h_degrees(self, h: int, targets=None, alive=None,
                       counters: Optional[Counters] = None):
        """Bulk h-degree pass through the context's engine + executor."""
        return self.engine.bulk_h_degrees(
            h, targets=targets, alive=alive,
            num_workers=self.num_workers,
            counters=self.counters if counters is None else counters,
            executor=self.executor)

    def make_peel_state(self, counters: Optional[Counters] = None):
        """Fresh peel state in the context's configured layout."""
        return make_peel_state(
            self.engine,
            self.counters if counters is None else counters,
            peel=self.peel)

    def make_core_map(self):
        """Fresh core-index map matching the configured peel layout."""
        return make_core_map(self.engine, peel=self.peel)

    def sink(self, counters: Counters = NULL_COUNTERS) -> Counters:
        """The counters an algorithm should record into.

        An explicitly supplied non-null ``counters`` wins over the
        context's own sink, preserving the historical keyword behavior.
        """
        return counters if counters is not NULL_COUNTERS else self.counters

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"ExecutionContext(backend={self.engine.name!r}, "
                f"executor={self.executor!r}, "
                f"num_workers={self.num_workers}, peel={self.peel!r}, "
                f"owns_engine={self.owns_engine}, {state})")


@contextmanager
def scoped_context(graph, context: Optional[ExecutionContext] = None,
                   backend="auto", executor: str = "thread",
                   num_workers: Optional[int] = None,
                   num_threads: Optional[int] = None,
                   counters: Counters = NULL_COUNTERS,
                   peel: str = "auto",
                   storage: str = "auto",
                   storage_dir: Optional[str] = None
                   ) -> Iterator[ExecutionContext]:
    """Yield ``context`` if supplied, else a fresh context closed on exit.

    This is the shim every legacy entry point runs on: the historical
    ``backend=`` / ``executor=`` / ``num_workers=`` (and deprecated
    ``num_threads=``) keywords construct a context scoped to the call, while
    a caller-supplied ``context`` is passed through **without** being closed
    — its owner decides when the pools die.
    """
    if context is not None:
        if context.graph is not graph:
            raise ParameterError(
                "the supplied execution context was built for a different "
                "graph"
            )
        if context.closed:
            raise ParameterError("the supplied execution context is closed")
        yield context
        return
    fresh = ExecutionContext(graph, backend=backend, executor=executor,
                             num_workers=num_workers,
                             num_threads=num_threads,
                             counters=counters, peel=peel,
                             storage=storage, storage_dir=storage_dir)
    try:
        yield fresh
    finally:
        fresh.close()

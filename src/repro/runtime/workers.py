"""The single worker-count deprecation shim.

Historically the entry points disagreed about what the worker-count keyword
was called: ``core_decomposition`` grew ``num_workers`` when workers stopped
being threads, while ``h_bz`` / ``h_lb_ub`` / the ``engine_*`` bound helpers
and the engines' ``bulk_h_degrees`` still said ``num_threads`` (and the CLI
said ``--threads``).  Every entry point now accepts ``num_workers`` and
funnels the legacy spelling through :func:`resolve_worker_count`, so the
deprecation message, the precedence rule (``num_workers`` wins when both are
given) and the default live in exactly one place.

This module deliberately imports nothing from the rest of the package: it is
safe to import from any layer (engines, algorithms, CLI) without creating an
import cycle.
"""

from __future__ import annotations

import warnings
from typing import Optional


def warn_legacy_workers(old: str = "num_threads",
                        new: str = "num_workers",
                        stacklevel: int = 3) -> None:
    """Emit the one shared :class:`DeprecationWarning` for legacy spellings."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(workers are not necessarily threads)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_worker_count(num_workers: Optional[int] = None,
                         num_threads: Optional[int] = None,
                         default: int = 1,
                         old: str = "num_threads",
                         new: str = "num_workers",
                         stacklevel: int = 4) -> int:
    """Return the effective worker count from the old and new keywords.

    ``num_workers`` wins when both are given (the precedence
    :func:`repro.core.core_decomposition` has always used); a non-``None``
    ``num_threads`` triggers the deprecation warning either way, because the
    caller spelled out the legacy keyword.
    """
    if num_threads is not None:
        warn_legacy_workers(old=old, new=new, stacklevel=stacklevel)
        if num_workers is None:
            return num_threads
    return num_workers if num_workers is not None else default

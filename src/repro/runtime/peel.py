"""Peel-state structures: the mutable bookkeeping behind every peeling loop.

Every peeling algorithm in the repository (h-BZ, the shared ``core_decomp``
kernel of h-LB / h-LB+UB, the upper-bound peeling of Algorithm 5, and the
dynamic engine's region re-peel) maintains the same four pieces of state per
queued vertex:

* its current **bucket key** (a lower bound on, or the exact value of, its
  current h-degree),
* its **stored degree** (exact current h-degree, when known),
* a **lower-bound flag** (``True`` while the bucket key is only a bound and
  the true h-degree has not been computed yet), and
* membership in the queue at all (peeled vertices leave it).

Before this module existed each loop re-implemented that bookkeeping with a
:class:`~repro.core.buckets.BucketQueue` plus two or three per-vertex dicts.
:class:`DictPeelState` and :class:`ArrayPeelState` package the whole bundle
behind one small protocol (:class:`PeelState`) with two interchangeable
layouts:

* :class:`DictPeelState` — hash-based, works for any hashable handle (the
  dict engine's labels).  Buckets are insertion-ordered dicts used as
  ordered sets, popped LIFO.
* :class:`ArrayPeelState` — flat ``array('q')`` / ``bytearray`` state
  indexed by dense integer handles (the CSR engine's vertex indices).
  Buckets are intrusive doubly-linked lists threaded through ``nxt`` /
  ``prv`` arrays: insert, move and pop are a handful of integer stores, no
  hashing anywhere.

Both implementations pop **the most recently inserted vertex** of a bucket
(the array lists push-front and pop-head; the dict buckets ``popitem()``),
so driving them with identical operation sequences yields identical removal
orders — which in turn makes h-degree recomputation counts identical.  The
test suite relies on this to assert that the two layouts are observationally
equivalent, not merely "both correct".

Selection is automatic: :func:`make_peel_state` picks the array layout on a
CSR engine and the dict layout otherwise.  The execution context
(:class:`repro.runtime.context.ExecutionContext`) exposes the same choice as
its ``peel=`` knob so benchmarks can force the dict layout onto the CSR
engine and measure exactly what the flat-array state buys.
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ParameterError
from repro.instrumentation import Counters, NULL_COUNTERS

Handle = Union[int, Hashable]

#: Peel-state layouts accepted by :func:`make_peel_state` (and the execution
#: context's ``peel=`` parameter).
PEEL_STATES = ("auto", "dict", "array")

#: ``key_of`` / linked-list sentinel in :class:`ArrayPeelState`.
_ABSENT = -1


class DictPeelState:
    """Hash-based peel state for arbitrary hashable handles.

    Buckets are insertion-ordered dicts used as ordered sets; ``pop`` removes
    the most recently inserted vertex (``dict.popitem``), mirroring the
    push-front / pop-head discipline of :class:`ArrayPeelState`.
    """

    name = "dict"

    __slots__ = ("_buckets", "_key", "_degree", "_lb", "_counters")

    def __init__(self, counters: Counters = NULL_COUNTERS) -> None:
        self._buckets: Dict[int, Dict[Handle, None]] = {}
        self._key: Dict[Handle, int] = {}
        self._degree: Dict[Handle, int] = {}
        self._lb: Dict[Handle, bool] = {}
        self._counters = counters

    def __len__(self) -> int:
        return len(self._key)

    def __contains__(self, vertex: Handle) -> bool:
        return vertex in self._key

    def insert(self, vertex: Handle, key: int, lb: bool = False) -> None:
        """Queue ``vertex`` at bucket ``key`` (it must not be queued)."""
        if vertex in self._key:
            raise ValueError(f"handle {vertex!r} is already queued")
        if key < 0:
            raise ValueError("bucket keys must be non-negative")
        self._buckets.setdefault(key, {})[vertex] = None
        self._key[vertex] = key
        self._lb[vertex] = lb

    def pop(self, key: int) -> Optional[Handle]:
        """Dequeue and return the newest vertex of bucket ``key`` (or None)."""
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        vertex, _ = bucket.popitem()
        if not bucket:
            del self._buckets[key]
        del self._key[vertex]
        return vertex

    def move_to(self, vertex: Handle, key: int) -> None:
        """Move a queued ``vertex`` to bucket ``key`` (no-op if already there)."""
        current = self._key.get(vertex)
        if current is None:
            raise KeyError(f"handle {vertex!r} is not queued")
        if current == key:
            return
        if key < 0:
            raise ValueError("bucket keys must be non-negative")
        bucket = self._buckets[current]
        del bucket[vertex]
        if not bucket:
            del self._buckets[current]
        self._buckets.setdefault(key, {})[vertex] = None
        self._key[vertex] = key
        self._counters.record_bucket_move()

    def key_of(self, vertex: Handle) -> int:
        """Current bucket key of a queued ``vertex``."""
        return self._key[vertex]

    def degree_of(self, vertex: Handle) -> int:
        """Stored exact h-degree of ``vertex``."""
        return self._degree[vertex]

    def set_degree(self, vertex: Handle, degree: int) -> None:
        self._degree[vertex] = degree

    def decrement(self, vertex: Handle) -> int:
        """Decrease the stored degree by one and return the new value."""
        degree = self._degree[vertex] - 1
        self._degree[vertex] = degree
        return degree

    def is_lb(self, vertex: Handle) -> bool:
        """True while the bucket key of ``vertex`` is only a lower bound."""
        return self._lb.get(vertex, False)

    def set_lb(self, vertex: Handle, flag: bool) -> None:
        self._lb[vertex] = flag

    def fill_exact(self, pairs: Iterable[Tuple[Handle, int]]) -> None:
        """Bulk-insert ``(vertex, degree)`` pairs keyed at their exact degree."""
        degree_map = self._degree
        for vertex, degree in pairs:
            self.insert(vertex, degree)
            degree_map[vertex] = degree

    def fill_lb(self, pairs: Iterable[Tuple[Handle, int]]) -> None:
        """Bulk-insert ``(vertex, bound)`` pairs keyed at a lower bound."""
        for vertex, bound in pairs:
            self.insert(vertex, bound, lb=True)


class ArrayPeelState:
    """Flat-array peel state for dense integer handles (the CSR engine).

    Buckets are intrusive doubly-linked lists over pre-allocated ``array('q')``
    storage: ``heads[key]`` is the newest queued handle of bucket ``key``
    (push-front, pop-head), ``nxt`` / ``prv`` thread the list through the
    handle space, ``key_of[v]`` doubles as the queued test (-1 = not queued),
    ``degrees[v]`` is the stored exact h-degree and ``lb[v]`` the
    lower-bound flag.  Every operation is O(1) with no hashing.

    The public array attributes are deliberately exposed: the specialized
    CSR peel kernels (:mod:`repro.core.peeling`, :mod:`repro.core.bounds`)
    bind them to locals and update them directly in their inner loops.
    """

    name = "array"

    __slots__ = ("heads", "nxt", "prv", "key_of_", "degrees", "lb",
                 "_count", "_counters")

    def __init__(self, num_handles: int,
                 counters: Counters = NULL_COUNTERS) -> None:
        n = num_handles
        # Bucket keys are h-degrees / core bounds, hence <= n in every
        # caller; pop()/insert() still guard and grow for safety.
        self.heads = array("q", [_ABSENT]) * (n + 1)
        self.nxt = array("q", [_ABSENT]) * n
        self.prv = array("q", [_ABSENT]) * n
        self.key_of_ = array("q", [_ABSENT]) * n
        self.degrees = array("q", bytes(8 * n))
        self.lb = bytearray(n)
        self._count = 0
        self._counters = counters

    def __len__(self) -> int:
        return self._count

    def __contains__(self, vertex: int) -> bool:
        return self.key_of_[vertex] != _ABSENT

    def _ensure_key(self, key: int) -> None:
        heads = self.heads
        if key >= len(heads):
            heads.extend([_ABSENT] * (key + 1 - len(heads)))

    def insert(self, vertex: int, key: int, lb: bool = False) -> None:
        """Queue ``vertex`` at bucket ``key`` (it must not be queued)."""
        if self.key_of_[vertex] != _ABSENT:
            raise ValueError(f"handle {vertex!r} is already queued")
        if key < 0:
            raise ValueError("bucket keys must be non-negative")
        self._ensure_key(key)
        head = self.heads[key]
        self.nxt[vertex] = head
        self.prv[vertex] = _ABSENT
        if head != _ABSENT:
            self.prv[head] = vertex
        self.heads[key] = vertex
        self.key_of_[vertex] = key
        self.lb[vertex] = 1 if lb else 0
        self._count += 1

    def pop(self, key: int) -> Optional[int]:
        """Dequeue and return the newest vertex of bucket ``key`` (or None)."""
        heads = self.heads
        if key >= len(heads):
            return None
        vertex = heads[key]
        if vertex == _ABSENT:
            return None
        follower = self.nxt[vertex]
        heads[key] = follower
        if follower != _ABSENT:
            self.prv[follower] = _ABSENT
        self.key_of_[vertex] = _ABSENT
        self._count -= 1
        return vertex

    def _unlink(self, vertex: int, key: int) -> None:
        before, after = self.prv[vertex], self.nxt[vertex]
        if before != _ABSENT:
            self.nxt[before] = after
        else:
            self.heads[key] = after
        if after != _ABSENT:
            self.prv[after] = before

    def move_to(self, vertex: int, key: int) -> None:
        """Move a queued ``vertex`` to bucket ``key`` (no-op if already there)."""
        current = self.key_of_[vertex]
        if current == _ABSENT:
            raise KeyError(f"handle {vertex!r} is not queued")
        if current == key:
            return
        if key < 0:
            raise ValueError("bucket keys must be non-negative")
        self._unlink(vertex, current)
        self._ensure_key(key)
        head = self.heads[key]
        self.nxt[vertex] = head
        self.prv[vertex] = _ABSENT
        if head != _ABSENT:
            self.prv[head] = vertex
        self.heads[key] = vertex
        self.key_of_[vertex] = key
        self._counters.record_bucket_move()

    def key_of(self, vertex: int) -> int:
        """Current bucket key of a queued ``vertex``."""
        key = self.key_of_[vertex]
        if key == _ABSENT:
            raise KeyError(f"handle {vertex!r} is not queued")
        return key

    def degree_of(self, vertex: int) -> int:
        """Stored exact h-degree of ``vertex``."""
        return self.degrees[vertex]

    def set_degree(self, vertex: int, degree: int) -> None:
        self.degrees[vertex] = degree

    def decrement(self, vertex: int) -> int:
        """Decrease the stored degree by one and return the new value."""
        degree = self.degrees[vertex] - 1
        self.degrees[vertex] = degree
        return degree

    def is_lb(self, vertex: int) -> bool:
        """True while the bucket key of ``vertex`` is only a lower bound."""
        return bool(self.lb[vertex])

    def set_lb(self, vertex: int, flag: bool) -> None:
        self.lb[vertex] = 1 if flag else 0

    def _fill(self, pairs: Iterable[Tuple[int, int]], lb_flag: int,
              store_degree: bool) -> None:
        """Bulk push-front loop with the arrays bound to locals."""
        heads = self.heads
        nxt = self.nxt
        prv = self.prv
        key_of = self.key_of_
        degrees = self.degrees
        lb = self.lb
        count = 0
        for vertex, key in pairs:
            if key_of[vertex] != _ABSENT:
                raise ValueError(f"handle {vertex!r} is already queued")
            if key < 0:
                raise ValueError("bucket keys must be non-negative")
            if key >= len(heads):
                self._ensure_key(key)
                heads = self.heads
            head = heads[key]
            nxt[vertex] = head
            prv[vertex] = _ABSENT
            if head != _ABSENT:
                prv[head] = vertex
            heads[key] = vertex
            key_of[vertex] = key
            lb[vertex] = lb_flag
            if store_degree:
                degrees[vertex] = key
            count += 1
        self._count += count

    def fill_exact(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Bulk-insert ``(vertex, degree)`` pairs keyed at their exact degree."""
        self._fill(pairs, 0, True)

    def fill_lb(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Bulk-insert ``(vertex, bound)`` pairs keyed at a lower bound."""
        self._fill(pairs, 1, False)


PeelState = Union[DictPeelState, ArrayPeelState]


class ArrayCoreMap:
    """Dict-like core-index map over dense integer handles.

    A flat ``array('q')`` with -1 marking "not assigned"; supports the small
    mapping subset the peel kernels and ``CSREngine.to_labels`` use
    (``in`` / ``[]`` / ``get`` / ``setdefault`` / ``items`` / ``values``).
    """

    __slots__ = ("_values", "_count")

    def __init__(self, num_handles: int) -> None:
        self._values = array("q", [_ABSENT]) * num_handles
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, vertex: int) -> bool:
        return self._values[vertex] != _ABSENT

    def __getitem__(self, vertex: int) -> int:
        value = self._values[vertex]
        if value == _ABSENT:
            raise KeyError(vertex)
        return value

    def __setitem__(self, vertex: int, core: int) -> None:
        if self._values[vertex] == _ABSENT:
            self._count += 1
        self._values[vertex] = core

    def get(self, vertex: int, default: Optional[int] = None) -> Optional[int]:
        value = self._values[vertex]
        return default if value == _ABSENT else value

    def setdefault(self, vertex: int, default: int) -> int:
        value = self._values[vertex]
        if value == _ABSENT:
            self[vertex] = default
            return default
        return value

    def items(self) -> Iterator[Tuple[int, int]]:
        return ((i, value) for i, value in enumerate(self._values)
                if value != _ABSENT)

    def keys(self) -> Iterator[int]:
        return (i for i, value in enumerate(self._values) if value != _ABSENT)

    def values(self) -> List[int]:
        return [value for value in self._values if value != _ABSENT]

    def to_dict(self) -> Dict[int, int]:
        return dict(self.items())


def resolve_peel_kind(engine, peel: str = "auto") -> str:
    """Return the concrete layout (``"dict"`` / ``"array"``) for ``engine``."""
    from repro.core.backends import CSREngine

    if peel not in PEEL_STATES:
        raise ParameterError(
            f"unknown peel state {peel!r}; expected one of {PEEL_STATES}"
        )
    if peel == "auto":
        return "array" if isinstance(engine, CSREngine) else "dict"
    if peel == "array" and not isinstance(engine, CSREngine):
        raise ParameterError(
            "peel='array' requires the CSR engine (its handles index the "
            "flat arrays); the dict engine peels through peel='dict'"
        )
    return peel


def make_peel_state(engine, counters: Counters = NULL_COUNTERS,
                    peel: str = "auto") -> PeelState:
    """Build the peel state matching ``engine`` (or the forced ``peel`` kind)."""
    if resolve_peel_kind(engine, peel) == "array":
        return ArrayPeelState(engine.num_nodes, counters)
    return DictPeelState(counters)


def make_core_map(engine, peel: str = "auto"):
    """Build the core-index map matching the peel layout for ``engine``."""
    if resolve_peel_kind(engine, peel) == "array":
        return ArrayCoreMap(engine.num_nodes)
    return {}

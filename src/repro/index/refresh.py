"""Incremental refresh of a persistent core index under edge updates.

:class:`IndexRefresher` keeps one :class:`~repro.dynamic.DynamicKHCore`
engine per persisted threshold warm over the stored graph and rides their
dirty-region output: after a batch, each engine's
``UpdateSummary.changed_vertices`` names exactly the rows whose core index
moved, and the refresher rewrites *only those rows* — plus the toggled
edges, new vertices, an appended delta-log entry per changed row, and the
incrementally-maintained XOR checksums — in one WAL transaction.

When a batch dirties more than ``staleness_ratio`` of all core rows the
incremental machinery stops paying: the refresher falls back to a full
rebuild (from-scratch spectrum, fresh removal orders, reset delta log),
the exact analogue of the dynamic engine's own full-recompute fallback one
layer down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.dynamic.engine import DynamicKHCore
from repro.dynamic.stats import UpdateSummary
from repro.dynamic.stream import INSERT, EdgeUpdate, normalize_op
from repro.errors import IndexMismatchError
from repro.index.build import write_full_state
from repro.index.store import (
    KIND_REBUILD,
    KIND_REFRESH,
    CoreIndexStore,
    core_token,
    edge_token,
    encode_label,
    graph_checksum,
    token_crc,
    vertex_token,
)

Vertex = Hashable

#: Fraction of all core rows (|V| · |H|) one batch may dirty before the
#: refresher abandons row rewrites and rebuilds the whole index.
DEFAULT_STALENESS_RATIO = 0.5

#: ``RefreshSummary.mode`` values.
MODE_INCREMENTAL = "incremental"
MODE_REBUILD = "rebuild"
MODE_NOOP = "noop"


@dataclass
class RefreshSummary:
    """What one refreshed batch did to the store."""

    mode: str
    epoch: int
    applied: int = 0
    skipped: int = 0
    dirty_rows: int = 0
    total_rows: int = 0
    seconds: float = 0.0
    dirty_by_h: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "epoch": self.epoch,
            "applied": self.applied,
            "skipped": self.skipped,
            "dirty_rows": self.dirty_rows,
            "total_rows": self.total_rows,
            "seconds": self.seconds,
            "dirty_by_h": {str(h): n for h, n in sorted(self.dirty_by_h.items())},
        }


class IndexRefresher:
    """Writable session that keeps one index exact under edge updates.

    Parameters
    ----------
    path:
        An existing, complete index database.
    backend / fallback_ratio / relabel:
        Forwarded to every per-threshold :class:`DynamicKHCore` engine.
    staleness_ratio:
        See :data:`DEFAULT_STALENESS_RATIO`.

    The refresher validates at attach time that the stored structure
    checksum matches the graph it reconstructs — a store whose edges and
    checksum disagree raises before any update is accepted.
    """

    def __init__(
        self,
        path: str,
        backend: str = "auto",
        staleness_ratio: float = DEFAULT_STALENESS_RATIO,
        fallback_ratio: Optional[float] = None,
        relabel: Optional[str] = None,
    ) -> None:
        if not 0.0 <= staleness_ratio <= 1.0:
            raise ValueError("staleness_ratio must be in [0, 1]")
        self.store = CoreIndexStore.open_rw(path)
        self.staleness_ratio = staleness_ratio
        self.graph = self.store.load_graph()
        if graph_checksum(self.graph) != self.store.stored_graph_checksum:
            self.store.close()
            raise IndexMismatchError(
                f"index {path!r}: stored structure does not match its own "
                "checksum; run verify/rebuild"
            )
        self._vids = self.store.load_vids()
        self._next_vid = self.store.max_vid() + 1
        engine_kwargs: Dict[str, Any] = {"backend": backend, "relabel": relabel}
        if fallback_ratio is not None:
            engine_kwargs["fallback_ratio"] = fallback_ratio
        #: One maintenance engine per persisted threshold.  Each owns a
        #: private copy of the graph (a DynamicKHCore mutates its graph),
        #: and all copies see every batch, so they stay in lockstep.  The
        #: engines warm-start from the persisted layers — the store already
        #: holds the exact decomposition of the graph just validated above,
        #: so recomputing it at attach time would be pure waste.
        labels = {vid: label for label, vid in self._vids.items()}
        self.engines: Dict[int, DynamicKHCore] = {
            h: DynamicKHCore(
                self.graph.copy(),
                h=h,
                initial_cores={
                    labels[vid]: core for vid, core in self.store.load_layer(h)
                },
                **engine_kwargs,
            )
            for h in self.store.h_values
        }
        self.refreshes = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------ #
    # the one entry point
    # ------------------------------------------------------------------ #
    def apply_batch(
        self, updates: Iterable[Tuple[str, Vertex, Vertex]]
    ) -> RefreshSummary:
        """Apply one update batch to every engine and the store.

        Validation mirrors :meth:`DynamicKHCore.apply_batch`: a bad update
        (deleting a missing edge, inserting a self-loop) aborts the whole
        batch before anything — engines or store — has changed.
        """
        started = time.perf_counter()
        normalized = [EdgeUpdate(normalize_op(op), u, v) for op, u, v in updates]
        toggled_edges, new_vertices, applied, skipped = self._net_effect(normalized)

        # Engines validate identical graphs against identical updates, so
        # either every apply_batch succeeds or the first raises before any
        # engine (all copies still identical) has been mutated.
        summaries = {
            h: engine.apply_batch(normalized) for h, engine in self.engines.items()
        }
        self._apply_to_mirror(toggled_edges, new_vertices)

        if not applied:
            return RefreshSummary(
                mode=MODE_NOOP,
                epoch=self.store.current_epoch,
                skipped=skipped,
                total_rows=self._total_rows(),
                seconds=time.perf_counter() - started,
            )

        dirty_by_h = {h: len(s.changed_vertices) for h, s in summaries.items()}
        dirty_rows = sum(dirty_by_h.values())
        total_rows = self._total_rows()
        if dirty_rows > self.staleness_ratio * total_rows:
            report = write_full_state(self.store, self.graph, KIND_REBUILD)
            # The rebuild reassigned every vid; refresh the local mapping.
            self._vids = self.store.load_vids()
            self._next_vid = self.store.max_vid() + 1
            self.rebuilds += 1
            return RefreshSummary(
                mode=MODE_REBUILD,
                epoch=report.epoch,
                applied=applied,
                skipped=skipped,
                dirty_rows=report.rows_written,
                total_rows=total_rows,
                seconds=time.perf_counter() - started,
                dirty_by_h=dirty_by_h,
            )

        epoch = self._write_incremental(
            summaries, toggled_edges, new_vertices, dirty_rows, started
        )
        self.refreshes += 1
        return RefreshSummary(
            mode=MODE_INCREMENTAL,
            epoch=epoch,
            applied=applied,
            skipped=skipped,
            dirty_rows=dirty_rows,
            total_rows=total_rows,
            seconds=time.perf_counter() - started,
            dirty_by_h=dirty_by_h,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _net_effect(
        self, updates: Sequence[EdgeUpdate]
    ) -> Tuple[List[Tuple[Vertex, Vertex, bool]], List[Vertex], int, int]:
        """Pre-compute the batch's net structural effect on the mirror.

        Returns ``(toggled_edges, new_vertices, applied, skipped)`` where
        ``toggled_edges`` holds ``(u, v, present_after)`` for every edge
        whose final presence differs from its initial one.  Computed before
        anything mutates, against the same state the engines validate.
        """
        graph = self.graph
        initial: Dict[frozenset, bool] = {}
        final: Dict[frozenset, bool] = {}
        endpoints: Dict[frozenset, Tuple[Vertex, Vertex]] = {}
        applied = 0
        skipped = 0
        for op, u, v in updates:
            key = frozenset((u, v))
            if key not in initial:
                initial[key] = graph.has_edge(u, v)
                final[key] = initial[key]
                endpoints[key] = (u, v)
            if op == INSERT:
                if final[key]:
                    skipped += 1
                    continue
                final[key] = True
            else:
                final[key] = False
            applied += 1
        toggled = [
            (*endpoints[key], final[key])
            for key in initial
            if initial[key] != final[key]
        ]
        seen_new: Dict[Vertex, None] = {}
        for op, u, v in updates:
            for w in (u, v):
                if w not in graph and w not in seen_new:
                    seen_new[w] = None
        return toggled, list(seen_new), applied, skipped

    def _apply_to_mirror(
        self,
        toggled: Sequence[Tuple[Vertex, Vertex, bool]],
        new_vertices: Sequence[Vertex],
    ) -> None:
        for w in new_vertices:
            self.graph.add_vertex(w)
        for u, v, present in toggled:
            if present:
                self.graph.add_edge(u, v)
            elif self.graph.has_edge(u, v):
                self.graph.remove_edge(u, v)

    def _total_rows(self) -> int:
        return self.graph.num_vertices * len(self.engines)

    def _write_incremental(
        self,
        summaries: Dict[int, UpdateSummary],
        toggled: Sequence[Tuple[Vertex, Vertex, bool]],
        new_vertices: Sequence[Vertex],
        dirty_rows: int,
        started: float,
    ) -> int:
        """Rewrite exactly the dirty rows in one transaction."""
        store = self.store
        conn = store.connection
        graph_digest = store.stored_graph_checksum

        for w in new_vertices:
            vid = self._next_vid
            self._next_vid += 1
            label = encode_label(w)
            conn.execute(
                "INSERT INTO vertices (vid, label) VALUES (?, ?)", (vid, label)
            )
            self._vids[w] = vid
            graph_digest ^= token_crc(vertex_token(label))

        for u, v, present in toggled:
            i, j = self._vids[u], self._vids[v]
            if i > j:
                i, j = j, i
            if present:
                conn.execute(
                    "INSERT OR REPLACE INTO edges (u, v) VALUES (?, ?)", (i, j)
                )
            else:
                conn.execute("DELETE FROM edges WHERE u = ? AND v = ?", (i, j))
            # XOR toggles the token either way — insert and delete are the
            # same checksum operation.
            graph_digest ^= token_crc(edge_token(encode_label(u), encode_label(v)))

        epoch = store.current_epoch + 1
        for h, summary in summaries.items():
            changed = summary.changed_vertices
            if not changed:
                continue
            engine = self.engines[h]
            layer_row = conn.execute(
                "SELECT checksum, degeneracy FROM layers WHERE h = ?", (h,)
            ).fetchone()
            digest = layer_row[0]
            for w in sorted(changed, key=repr):
                vid = self._vids[w]
                label = encode_label(w)
                old_row = conn.execute(
                    "SELECT core FROM cores WHERE h = ? AND vid = ?",
                    (h, vid),
                ).fetchone()
                old_core = old_row[0] if old_row else None
                new_core = engine.core_number(w)
                conn.execute(
                    "INSERT OR REPLACE INTO cores (h, vid, core) VALUES (?, ?, ?)",
                    (h, vid, new_core),
                )
                conn.execute(
                    "INSERT INTO deltas (epoch, h, vid, old_core, new_core) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (epoch, h, vid, old_core, new_core),
                )
                if old_core is not None:
                    digest ^= token_crc(core_token(label, old_core))
                digest ^= token_crc(core_token(label, new_core))
            max_row = conn.execute(
                "SELECT MAX(core) FROM cores WHERE h = ?", (h,)
            ).fetchone()
            degeneracy = max_row[0] or 0
            conn.execute(
                "UPDATE layers SET checksum = ?, degeneracy = ? WHERE h = ?",
                (digest, degeneracy, h),
            )

        store.set_meta("graph_checksum", str(graph_digest))
        return store.commit_epoch(
            KIND_REFRESH,
            self.graph.num_vertices,
            self.graph.num_edges,
            dirty_rows,
            time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for engine in self.engines.values():
            engine.close()
        self.store.close()

    def __enter__(self) -> "IndexRefresher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"IndexRefresher(path={self.store.path!r}, "
            f"h_values={list(self.engines)}, "
            f"refreshes={self.refreshes}, rebuilds={self.rebuilds})"
        )


def refresh_index(
    path: str,
    updates: Sequence[Tuple[str, Vertex, Vertex]],
    batch_size: int = 64,
    backend: str = "auto",
    staleness_ratio: float = DEFAULT_STALENESS_RATIO,
    fallback_ratio: Optional[float] = None,
) -> List[RefreshSummary]:
    """Refresh the index at ``path`` with an update stream, in batches.

    Convenience wrapper used by ``kh-core index refresh``: one
    :class:`IndexRefresher` session, ``updates`` applied in order in
    batches of ``batch_size``, summaries returned per batch.
    """
    batch_size = max(1, batch_size)
    summaries: List[RefreshSummary] = []
    with IndexRefresher(
        path,
        backend=backend,
        staleness_ratio=staleness_ratio,
        fallback_ratio=fallback_ratio,
    ) as refresher:
        for offset in range(0, len(updates), batch_size):
            summaries.append(
                refresher.apply_batch(updates[offset : offset + batch_size])
            )
    return summaries

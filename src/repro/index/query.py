"""Index-served (k,h)-core queries: pure SQLite reads, no peeling.

:class:`CoreIndexReader` opens a built index read-only, validates it, and
answers the repeated-query classes of the serving mix straight from the
tables:

========================  =================================================
query                     index plan
========================  =================================================
``core_number(v, h)``     one ``cores`` primary-key probe
``spectrum(v)``           one probe per configured h (a vertex "column")
``membership_threshold``  ``MIN(h)`` aggregate over the vertex's column —
                          valid because ``core_h(v)`` is non-decreasing in h
``core_members(k, h)``    range scan of the ``(h, core)`` covering index
``shell(k, h)``           equality scan of the same index
``core_sizes(h)``         one ``GROUP BY core`` + cumulative sum
``removal_order(h)``      ordered scan of ``orders`` (build epochs only)
``diff(a, b, h)``         fold of the ``deltas`` log over ``(a, b]``
========================  =================================================

Every method validates its parameters and raises the library's error types;
a reader never silently serves from a store that failed validation, and the
removal orders refuse to be served stale (see
:class:`~repro.errors.StaleIndexError`).
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import (
    CoreIndexError,
    IndexCorruptionError,
    ParameterError,
    StaleIndexError,
    VertexNotFoundError,
)
from repro.graph.graph import Graph
from repro.index.store import (
    BUSY_RETRIES,
    KIND_REBUILD,
    CoreIndexStore,
    configure_connection,
    decode_label,
    encode_label,
    graph_checksum,
    is_busy_error,
)

Vertex = Hashable


class CoreIndexReader:
    """Read-only, validated handle on a persistent core index.

    Parameters
    ----------
    path:
        Index database created by :func:`repro.index.build.build_index`.
    verify:
        Also run the deep row-scan checksum verification at open time
        (:meth:`CoreIndexStore.verify`); cheap validation (schema, status,
        metadata) always runs.

    The reader is thread-safe: one connection guarded by a lock, which the
    query service relies on when index reads run on its reader pool.
    """

    def __init__(self, path: str, verify: bool = False) -> None:
        self.path = path
        try:
            conn = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, check_same_thread=False
            )
        except sqlite3.Error as error:
            raise IndexCorruptionError(
                f"cannot open index {path!r}: {error}"
            ) from error
        configure_connection(conn)
        self._store = CoreIndexStore(path, conn)
        self._lock = threading.Lock()
        try:
            self._store.validate()
            if verify:
                with self._lock:
                    self._store.verify()
            self.h_values: Tuple[int, ...] = self._store.h_values
            self.current_epoch: int = self._store.current_epoch
            self.graph_checksum: int = self._store.stored_graph_checksum
        except IndexCorruptionError:
            self._store.close()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "CoreIndexReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _execute(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        """Run one query with bounded SQLITE_BUSY retries.

        The connection-level busy timeout already makes SQLite wait out a
        concurrent refresh/checkpoint; the retry loop on top means a read
        only fails on *sustained* contention, and then as a
        :class:`CoreIndexError` (retryable) rather than being
        misclassified as corruption.  The ``sqlite.busy`` fault site lets
        chaos tests drive this loop deterministically.
        """
        with self._lock:
            delay = 0.01
            for attempt in range(BUSY_RETRIES + 1):
                try:
                    from repro.resilience.faults import should_fire

                    if should_fire("sqlite.busy"):
                        raise sqlite3.OperationalError("database is locked")
                    return self._store.connection.execute(
                        sql, params
                    ).fetchall()
                except sqlite3.OperationalError as error:
                    if not is_busy_error(error):
                        raise IndexCorruptionError(
                            f"index {self.path!r} failed mid-query: {error}"
                        ) from error
                    if attempt >= BUSY_RETRIES:
                        raise CoreIndexError(
                            f"index {self.path!r} stayed locked after "
                            f"{attempt + 1} attempts: {error}"
                        ) from error
                    time.sleep(delay)
                    delay = min(delay * 2, 0.25)
                except sqlite3.Error as error:
                    raise IndexCorruptionError(
                        f"index {self.path!r} failed mid-query: {error}"
                    ) from error
            raise AssertionError("unreachable")

    # ------------------------------------------------------------------ #
    # parameter guards
    # ------------------------------------------------------------------ #
    def _check_h(self, h: int) -> int:
        if h not in self.h_values:
            raise ParameterError(
                f"h={h} is not in this index (persisted thresholds: "
                f"{list(self.h_values)})"
            )
        return h

    def _vid(self, vertex: Vertex) -> int:
        rows = self._execute(
            "SELECT vid FROM vertices WHERE label = ?", (encode_label(vertex),)
        )
        if not rows:
            raise VertexNotFoundError(vertex)
        return rows[0][0]

    # ------------------------------------------------------------------ #
    # point and column queries
    # ------------------------------------------------------------------ #
    def core_number(self, vertex: Vertex, h: int) -> int:
        """Core index of ``vertex`` at threshold ``h`` (one PK probe)."""
        self._check_h(h)
        vid = self._vid(vertex)
        rows = self._execute("SELECT core FROM cores WHERE h = ? AND vid = ?", (h, vid))
        if not rows:
            raise IndexCorruptionError(
                f"index {self.path!r} has vertex {vertex!r} but no core row "
                f"for h={h}"
            )
        return rows[0][0]

    def spectrum(self, vertex: Vertex) -> List[Tuple[int, int]]:
        """``(h, core_h(vertex))`` for every persisted threshold."""
        vid = self._vid(vertex)
        rows = self._execute(
            "SELECT h, core FROM cores WHERE vid = ? ORDER BY h", (vid,)
        )
        return [(h, core) for h, core in rows]

    def membership_threshold(self, vertex: Vertex, k: int) -> Optional[int]:
        """Smallest persisted ``h`` with ``vertex ∈ (k,h)-core``, else None.

        Monotonicity (``core_h(v)`` non-decreasing in h) makes this a
        single aggregate over the vertex's column.
        """
        if k < 0:
            raise ParameterError("the core index k must be >= 0")
        vid = self._vid(vertex)
        rows = self._execute(
            "SELECT MIN(h) FROM cores WHERE vid = ? AND core >= ?",
            (vid, k),
        )
        return rows[0][0] if rows and rows[0][0] is not None else None

    # ------------------------------------------------------------------ #
    # membership / shell scans
    # ------------------------------------------------------------------ #
    def core_members(self, k: int, h: int) -> List[Vertex]:
        """Vertices of the (k,h)-core, sorted by ``repr`` (range scan)."""
        if k < 0:
            raise ParameterError("the core index k must be >= 0")
        self._check_h(h)
        rows = self._execute(
            "SELECT v.label FROM cores c JOIN vertices v ON v.vid = c.vid "
            "WHERE c.h = ? AND c.core >= ?",
            (h, k),
        )
        return sorted((decode_label(label) for (label,) in rows), key=repr)

    def shell(self, k: int, h: int) -> List[Vertex]:
        """Vertices whose core index is exactly ``k`` (equality scan)."""
        if k < 0:
            raise ParameterError("the core index k must be >= 0")
        self._check_h(h)
        rows = self._execute(
            "SELECT v.label FROM cores c JOIN vertices v ON v.vid = c.vid "
            "WHERE c.h = ? AND c.core = ?",
            (h, k),
        )
        return sorted((decode_label(label) for (label,) in rows), key=repr)

    def core_sizes(self, h: int) -> Dict[int, int]:
        """``{k: |C_k|}`` for k = 0 .. degeneracy (one GROUP BY)."""
        self._check_h(h)
        rows = self._execute(
            "SELECT core, COUNT(*) FROM cores WHERE h = ? "
            "GROUP BY core ORDER BY core DESC",
            (h,),
        )
        degeneracy = rows[0][0] if rows else 0
        sizes: Dict[int, int] = {}
        running = 0
        by_core = dict(rows)
        for k in range(degeneracy, -1, -1):
            running += by_core.get(k, 0)
            sizes[k] = running
        return dict(sorted(sizes.items()))

    def core_map(self, h: int) -> Dict[Vertex, int]:
        """The full ``vertex -> core`` layer at threshold ``h``."""
        self._check_h(h)
        rows = self._execute(
            "SELECT v.label, c.core FROM cores c "
            "JOIN vertices v ON v.vid = c.vid WHERE c.h = ?",
            (h,),
        )
        return {decode_label(label): core for label, core in rows}

    def degeneracy(self, h: int) -> int:
        """Largest non-empty core index at threshold ``h``."""
        self._check_h(h)
        rows = self._execute("SELECT degeneracy FROM layers WHERE h = ?", (h,))
        if not rows:
            raise IndexCorruptionError(
                f"index {self.path!r} is missing the h={h} layer row"
            )
        return rows[0][0]

    # ------------------------------------------------------------------ #
    # orders, diffs, metadata
    # ------------------------------------------------------------------ #
    def removal_order(self, h: int) -> List[Vertex]:
        """The persisted peeling order for ``h``.

        Raises :class:`~repro.errors.StaleIndexError` after an incremental
        refresh: dirty-row rewrites keep the cores exact but cannot produce
        a global peeling order, so orders are only served from build or
        rebuild epochs.
        """
        self._check_h(h)
        orders_epoch = int(self._store.get_meta("orders_epoch") or 0)
        current = int(self._store.get_meta("current_epoch") or 0)
        if orders_epoch != current:
            raise StaleIndexError(
                f"removal orders were persisted at epoch {orders_epoch} but "
                f"the index is at epoch {current} after incremental "
                "refreshes; rebuild the index to restore them"
            )
        rows = self._execute(
            "SELECT v.label FROM orders o JOIN vertices v ON v.vid = o.vid "
            "WHERE o.h = ? ORDER BY o.pos",
            (h,),
        )
        if not rows:
            has_order = self._execute("SELECT has_order FROM layers WHERE h = ?", (h,))
            if has_order and not has_order[0][0]:
                raise CoreIndexError(
                    f"the h={h} layer was built by an algorithm that does "
                    "not record a removal order"
                )
        return [decode_label(label) for (label,) in rows]

    def diff(
        self, epoch_a: int, epoch_b: int, h: Optional[int] = None
    ) -> Dict[Vertex, Tuple[Optional[int], int]]:
        """Net core changes over ``(epoch_a, epoch_b]`` from the delta log.

        Returns ``{vertex: (old_core, new_core)}`` restricted to threshold
        ``h`` when given (``old_core`` is None for vertices created in the
        window).  Without ``h``, a vertex is reported when *any* persisted
        layer has a net change, valued at the smallest such threshold —
        layers are always folded separately, never conflated.  Raises if
        the window crosses a rebuild epoch — a wholesale rewrite keeps no
        per-row history.
        """
        if epoch_a > epoch_b:
            raise ParameterError("diff needs epoch_a <= epoch_b")
        current = int(self._store.get_meta("current_epoch") or 0)
        if epoch_b > current or epoch_a < 0:
            raise ParameterError(
                f"epoch range ({epoch_a}, {epoch_b}] is outside the index "
                f"history (current epoch {current})"
            )
        rebuilds = self._execute(
            "SELECT epoch FROM epochs WHERE kind = ? AND epoch > ? "
            "AND epoch <= ?",
            (KIND_REBUILD, epoch_a, epoch_b),
        )
        if rebuilds:
            raise CoreIndexError(
                f"diff range ({epoch_a}, {epoch_b}] crosses rebuild epoch "
                f"{rebuilds[0][0]}, which reset the delta log"
            )
        if h is not None:
            self._check_h(h)
            rows = self._execute(
                "SELECT d.h, d.vid, v.label, d.old_core, d.new_core "
                "FROM deltas d JOIN vertices v ON v.vid = d.vid "
                "WHERE d.h = ? AND d.epoch > ? AND d.epoch <= ? "
                "ORDER BY d.epoch",
                (h, epoch_a, epoch_b),
            )
        else:
            rows = self._execute(
                "SELECT d.h, d.vid, v.label, d.old_core, d.new_core "
                "FROM deltas d JOIN vertices v ON v.vid = d.vid "
                "WHERE d.epoch > ? AND d.epoch <= ? "
                "ORDER BY d.epoch",
                (epoch_a, epoch_b),
            )
        first_old: Dict[Tuple[int, int], Optional[int]] = {}
        last_new: Dict[Tuple[int, int], int] = {}
        labels: Dict[int, Vertex] = {}
        for row_h, vid, label, old_core, new_core in rows:
            key = (vid, row_h)
            if key not in first_old:
                first_old[key] = old_core
                if vid not in labels:
                    labels[vid] = decode_label(label)
            last_new[key] = new_core
        changes: Dict[int, Tuple[Optional[int], int]] = {}
        for vid, row_h in sorted(first_old):
            if vid in changes:
                continue
            old, new = first_old[(vid, row_h)], last_new[(vid, row_h)]
            if old != new:
                changes[vid] = (old, new)
        return {labels[vid]: pair for vid, pair in changes.items()}

    def epochs(self) -> List[Dict[str, object]]:
        """The epoch history, oldest first."""
        rows = self._execute(
            "SELECT epoch, kind, created_at, graph_checksum, num_vertices, "
            "num_edges, dirty_rows, seconds FROM epochs ORDER BY epoch"
        )
        keys = (
            "epoch",
            "kind",
            "created_at",
            "graph_checksum",
            "num_vertices",
            "num_edges",
            "dirty_rows",
            "seconds",
        )
        return [dict(zip(keys, row)) for row in rows]

    def stats(self) -> Dict[str, object]:
        """Metadata summary (the ``kh-core index stats`` payload)."""
        store = self._store
        counts = {
            table: self._execute(f"SELECT COUNT(*) FROM {table}")[0][0]
            for table in ("vertices", "edges", "cores", "orders", "deltas")
        }
        return {
            "path": self.path,
            "h_values": list(self.h_values),
            "schema_version": int(store.get_meta("schema_version") or 0),
            "engine_version": store.get_meta("engine_version"),
            "source": store.get_meta("source"),
            "status": store.get_meta("status"),
            "current_epoch": int(store.get_meta("current_epoch") or 0),
            "orders_epoch": int(store.get_meta("orders_epoch") or 0),
            "graph_checksum": self.graph_checksum,
            "rows": counts,
            "epochs": self.epochs(),
        }

    def verify(self) -> None:
        """Deep row-scan verification (checksums; raises on corruption)."""
        with self._lock:
            self._store.verify()

    def matches_graph(self, graph: Graph) -> bool:
        """True iff the index's stored structure checksum matches ``graph``."""
        return graph_checksum(graph) == self.graph_checksum

    def __repr__(self) -> str:
        return (
            f"CoreIndexReader(path={self.path!r}, "
            f"h_values={list(self.h_values)}, "
            f"epoch={self.current_epoch})"
        )

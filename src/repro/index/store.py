"""SQLite-backed columnar store for the persistent (k,h)-core spectrum index.

The store persists, for one graph, the full core *spectrum* — ``vertex × h
→ core index`` for a configured range of distance thresholds — together
with the removal orders, the graph structure itself, and per-epoch
metadata.  Everything a query needs is a table read: point lookups hit the
``cores`` primary key, shell drill-downs ride the ``(h, core)`` covering
index, membership thresholds are a one-row aggregate over a vertex's
column, and snapshot diffs fold the append-only ``deltas`` log.

Design notes
------------
* **Stdlib only.**  ``sqlite3`` ships with CPython; WAL journaling plus
  batched ``executemany`` makes bulk loads fast without any dependency.
* **Current state + delta log.**  The ``cores`` table always holds the
  *current* epoch (so reads never reconstruct), while every incremental
  refresh appends ``(epoch, h, vid, old, new)`` rows to ``deltas`` —
  cross-epoch diff queries replay the log instead of storing full copies.
* **Self-verifying.**  Each layer carries an order-independent
  XOR-of-CRC32 checksum over its rows and the graph carries one over its
  vertices and edges.  The XOR form is incrementally updatable (toggle a
  token in, toggle it out), so refreshes maintain exact checksums in O(dirty)
  and :meth:`CoreIndexStore.verify` can recompute them from the rows at any
  time.  A build keeps ``status = 'building'`` until its final commit, so an
  interrupted build can never be mistaken for a complete index.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.errors import CoreIndexError, IndexCorruptionError
from repro.graph.graph import Graph

Vertex = Hashable

#: Bump when the table layout changes; readers refuse other versions.
SCHEMA_VERSION = 1

#: ``meta.status`` values — anything but ``complete`` is unreadable.
STATUS_BUILDING = "building"
STATUS_COMPLETE = "complete"

#: ``epochs.kind`` values.
KIND_BUILD = "build"
KIND_REFRESH = "refresh"
KIND_REBUILD = "rebuild"

#: Rows per ``executemany`` batch during bulk loads.
BATCH_ROWS = 4096

#: How long (ms) a connection waits on SQLITE_BUSY before erroring —
#: override with ``KH_CORE_SQLITE_BUSY_TIMEOUT_MS``.
DEFAULT_BUSY_TIMEOUT_MS = 5000

#: Bounded in-library retries layered on top of the busy timeout.
BUSY_RETRIES = 5


def busy_timeout_ms() -> int:
    """Configured SQLITE_BUSY wait in milliseconds."""
    raw = os.environ.get("KH_CORE_SQLITE_BUSY_TIMEOUT_MS", "").strip()
    try:
        return max(0, int(raw)) if raw else DEFAULT_BUSY_TIMEOUT_MS
    except ValueError:
        return DEFAULT_BUSY_TIMEOUT_MS


def configure_connection(conn: sqlite3.Connection) -> None:
    """Apply the busy-timeout pragma every store/reader connection needs.

    Concurrent refresh (writer) + serving (readers) is a supported
    deployment; without a busy timeout a reader polling during a WAL
    checkpoint surfaces ``sqlite3.OperationalError: database is locked``.
    """
    conn.execute(f"PRAGMA busy_timeout={busy_timeout_ms()}")


def is_busy_error(error: sqlite3.OperationalError) -> bool:
    """Whether an operational error is SQLITE_BUSY/SQLITE_LOCKED contention."""
    message = str(error).lower()
    return "locked" in message or "busy" in message


def run_with_busy_retry(operation, description: str):
    """Run ``operation`` with bounded retries on lock contention.

    The busy timeout already makes SQLite wait; this loop adds
    :data:`BUSY_RETRIES` backed-off attempts on top so a transient
    writer/checkpoint overlap never surfaces to callers, while a genuinely
    wedged database still fails with a :class:`CoreIndexError` naming the
    operation.
    """
    delay = 0.01
    for attempt in range(BUSY_RETRIES + 1):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not is_busy_error(error) or attempt >= BUSY_RETRIES:
                if is_busy_error(error):
                    raise CoreIndexError(
                        f"{description} stayed locked after "
                        f"{attempt + 1} attempts: {error}"
                    ) from error
                raise
            time.sleep(delay)
            delay = min(delay * 2, 0.25)
    raise AssertionError("unreachable")

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE vertices (
    vid   INTEGER PRIMARY KEY,
    label TEXT NOT NULL UNIQUE
);
CREATE TABLE edges (
    u INTEGER NOT NULL,
    v INTEGER NOT NULL,
    PRIMARY KEY (u, v)
) WITHOUT ROWID;
CREATE TABLE cores (
    h    INTEGER NOT NULL,
    vid  INTEGER NOT NULL,
    core INTEGER NOT NULL,
    PRIMARY KEY (h, vid)
) WITHOUT ROWID;
CREATE INDEX idx_cores_by_core ON cores (h, core);
CREATE TABLE orders (
    h   INTEGER NOT NULL,
    pos INTEGER NOT NULL,
    vid INTEGER NOT NULL,
    PRIMARY KEY (h, pos)
) WITHOUT ROWID;
CREATE TABLE layers (
    h          INTEGER PRIMARY KEY,
    checksum   INTEGER NOT NULL,
    degeneracy INTEGER NOT NULL,
    has_order  INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE epochs (
    epoch          INTEGER PRIMARY KEY,
    kind           TEXT NOT NULL,
    created_at     TEXT NOT NULL,
    graph_checksum INTEGER NOT NULL,
    num_vertices   INTEGER NOT NULL,
    num_edges      INTEGER NOT NULL,
    dirty_rows     INTEGER NOT NULL,
    seconds        REAL NOT NULL
);
CREATE TABLE deltas (
    epoch    INTEGER NOT NULL,
    h        INTEGER NOT NULL,
    vid      INTEGER NOT NULL,
    old_core INTEGER,
    new_core INTEGER NOT NULL
);
CREATE INDEX idx_deltas_by_h ON deltas (h, epoch);
"""


# --------------------------------------------------------------------- #
# label codec
# --------------------------------------------------------------------- #
def _jsonable(value: Vertex) -> object:
    """Tuples become lists (JSON has no tuples); scalars pass through."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _from_jsonable(value: object) -> Vertex:
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def encode_label(vertex: Vertex) -> str:
    """Canonical JSON encoding of a vertex label (ints, strings, tuples).

    The encoding is injective on the supported label types — ``5`` and
    ``"5"`` encode differently — so the ``vertices.label`` UNIQUE constraint
    means what it says.
    """
    try:
        return json.dumps(_jsonable(vertex), sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        raise CoreIndexError(
            f"vertex label {vertex!r} is not JSON-encodable; the persistent "
            "index supports int, string and (nested) tuple labels"
        ) from None


def decode_label(encoded: str) -> Vertex:
    """Inverse of :func:`encode_label` (lists come back as tuples)."""
    return _from_jsonable(json.loads(encoded))


# --------------------------------------------------------------------- #
# order-independent, incrementally-updatable checksums
# --------------------------------------------------------------------- #
def token_crc(token: str) -> int:
    """CRC32 of one checksum token."""
    return crc32(token.encode("utf-8"))


def core_token(label: str, core: int) -> str:
    """Checksum token of one ``cores`` row (``label`` already encoded)."""
    return f"c|{label}|{core}"


def vertex_token(label: str) -> str:
    """Checksum token of one ``vertices`` row."""
    return f"v|{label}"


def edge_token(label_u: str, label_v: str) -> str:
    """Checksum token of one undirected edge (endpoint order normalized)."""
    a, b = sorted((label_u, label_v))
    return f"e|{a}|{b}"


def xor_checksum(tokens: Iterable[str]) -> int:
    """XOR of the CRC32s of ``tokens``: order-independent, and toggling a
    token in or out is the same XOR — which is what lets a refresh maintain
    exact checksums while touching only dirty rows."""
    digest = 0
    for token in tokens:
        digest ^= token_crc(token)
    return digest


def layer_checksum(cores: Dict[Vertex, int]) -> int:
    """Checksum of a full ``vertex -> core`` layer (labels still decoded)."""
    return xor_checksum(core_token(encode_label(v), c) for v, c in cores.items())


def graph_checksum(graph: Graph) -> int:
    """Checksum of a graph's structure (vertex set + undirected edge set)."""
    digest = xor_checksum(vertex_token(encode_label(v)) for v in graph.vertices())
    digest ^= xor_checksum(
        edge_token(encode_label(u), encode_label(v)) for u, v in graph.edges()
    )
    return digest


def _batched(rows: Sequence, size: int = BATCH_ROWS) -> Iterable[Sequence]:
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


class CoreIndexStore:
    """Writable handle on one core-index database (build + refresh side).

    Use :meth:`create` to initialize a fresh store and :meth:`open_rw` to
    attach to an existing complete one.  Readers should use
    :class:`repro.index.query.CoreIndexReader`, which opens the file
    read-only and validates it first.
    """

    def __init__(self, path: str, connection: sqlite3.Connection) -> None:
        self.path = path
        self._conn = connection

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, path: str, h_values: Sequence[int], source: str, overwrite: bool = False
    ) -> "CoreIndexStore":
        """Initialize a fresh store with ``status = 'building'``."""
        if os.path.exists(path):
            if not overwrite:
                raise CoreIndexError(
                    f"index file {path!r} already exists "
                    "(pass overwrite/--force to replace it)"
                )
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.remove(path + suffix)
                except FileNotFoundError:
                    pass
        conn = sqlite3.connect(path, check_same_thread=False)
        configure_connection(conn)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        store = cls(path, conn)
        store.set_meta("schema_version", str(SCHEMA_VERSION))
        store.set_meta("status", STATUS_BUILDING)
        store.set_meta("h_values", json.dumps(sorted(set(h_values))))
        store.set_meta("source", source)
        store.set_meta("current_epoch", "0")
        store.set_meta("orders_epoch", "0")
        from repro import __version__

        store.set_meta("engine_version", __version__)
        conn.commit()
        return store

    @classmethod
    def open_rw(cls, path: str) -> "CoreIndexStore":
        """Attach read-write to an existing *complete* store."""
        if not os.path.exists(path):
            raise CoreIndexError(f"index file {path!r} does not exist")
        conn = sqlite3.connect(path, check_same_thread=False)
        configure_connection(conn)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        store = cls(path, conn)
        store.validate()
        return store

    @classmethod
    def open(cls, path: str, verify: bool = True) -> "CoreIndexStore":
        """Serving-grade open: WAL recovery plus full checksum verification.

        Opening a WAL database replays any committed-but-uncheckpointed
        frames left by a crashed writer; the explicit
        ``wal_checkpoint(TRUNCATE)`` then folds them into the main file and
        truncates the ``-wal`` sidecar, so the recovered state is durable
        before anything is served from it.  ``verify=True`` (the default)
        additionally recomputes every layer/graph checksum from the rows —
        the deep scan that catches torn pages a structural
        :meth:`validate` cannot.
        """
        store = cls.open_rw(path)
        try:
            run_with_busy_retry(
                lambda: store.connection.execute(
                    "PRAGMA wal_checkpoint(TRUNCATE)"
                ).fetchone(),
                f"WAL checkpoint of {path!r}",
            )
            if verify:
                store.verify()
        except BaseException:
            store.close()
            raise
        return store

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "CoreIndexStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise CoreIndexError("the index store has been closed")
        return self._conn

    # ------------------------------------------------------------------ #
    # meta
    # ------------------------------------------------------------------ #
    def set_meta(self, key: str, value: str) -> None:
        self.connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value),
        )

    def get_meta(self, key: str) -> Optional[str]:
        row = self.connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def validate(self) -> None:
        """Cheap structural validation; raises :class:`IndexCorruptionError`.

        Catches the failure modes that do not need a row scan: a file that
        is not a database (truncation), a schema from another version, and
        an interrupted build (``status != 'complete'``).  Row-level damage
        is what :meth:`verify` is for.
        """
        try:
            schema = self.get_meta("schema_version")
            status = self.get_meta("status")
            h_values = self.get_meta("h_values")
        except sqlite3.Error as error:
            raise IndexCorruptionError(
                f"{self.path!r} is not a readable core index: {error}"
            ) from error
        if schema is None or h_values is None:
            raise IndexCorruptionError(f"{self.path!r} has no core-index metadata")
        if int(schema) != SCHEMA_VERSION:
            raise IndexCorruptionError(
                f"{self.path!r} uses schema version {schema}, "
                f"this library reads version {SCHEMA_VERSION}"
            )
        if status != STATUS_COMPLETE:
            raise IndexCorruptionError(
                f"{self.path!r} is marked {status!r} — an interrupted build "
                "or refresh; rebuild the index"
            )

    # ------------------------------------------------------------------ #
    # typed meta accessors
    # ------------------------------------------------------------------ #
    @property
    def h_values(self) -> Tuple[int, ...]:
        raw = self.get_meta("h_values")
        return tuple(json.loads(raw)) if raw else ()

    @property
    def current_epoch(self) -> int:
        return int(self.get_meta("current_epoch") or 0)

    @property
    def orders_epoch(self) -> int:
        return int(self.get_meta("orders_epoch") or 0)

    @property
    def stored_graph_checksum(self) -> int:
        return int(self.get_meta("graph_checksum") or 0)

    # ------------------------------------------------------------------ #
    # bulk writes (build / rebuild path)
    # ------------------------------------------------------------------ #
    def write_graph(self, graph: Graph) -> Dict[Vertex, int]:
        """Replace the stored structure with ``graph``; returns label → vid."""
        conn = self.connection
        conn.execute("DELETE FROM edges")
        conn.execute("DELETE FROM vertices")
        vids: Dict[Vertex, int] = {}
        rows = []
        for vid, vertex in enumerate(graph.vertices(), start=1):
            vids[vertex] = vid
            rows.append((vid, encode_label(vertex)))
        for batch in _batched(rows):
            conn.executemany("INSERT INTO vertices (vid, label) VALUES (?, ?)", batch)
        edge_rows = []
        for u, v in graph.edges():
            i, j = vids[u], vids[v]
            edge_rows.append((i, j) if i < j else (j, i))
        for batch in _batched(edge_rows):
            conn.executemany("INSERT INTO edges (u, v) VALUES (?, ?)", batch)
        self.set_meta("graph_checksum", str(graph_checksum(graph)))
        return vids

    def write_layer(
        self,
        h: int,
        cores: Dict[Vertex, int],
        vids: Dict[Vertex, int],
        order: Optional[List[Vertex]] = None,
    ) -> int:
        """Replace layer ``h`` (cores + order + checksum); returns row count."""
        conn = self.connection
        conn.execute("DELETE FROM cores WHERE h = ?", (h,))
        conn.execute("DELETE FROM orders WHERE h = ?", (h,))
        rows = [(h, vids[v], c) for v, c in cores.items()]
        for batch in _batched(rows):
            conn.executemany("INSERT INTO cores (h, vid, core) VALUES (?, ?, ?)", batch)
        if order is not None:
            order_rows = [(h, pos, vids[v]) for pos, v in enumerate(order)]
            for batch in _batched(order_rows):
                conn.executemany(
                    "INSERT INTO orders (h, pos, vid) VALUES (?, ?, ?)",
                    batch,
                )
        conn.execute(
            "INSERT OR REPLACE INTO layers (h, checksum, degeneracy, "
            "has_order) VALUES (?, ?, ?, ?)",
            (
                h,
                layer_checksum(cores),
                max(cores.values(), default=0),
                1 if order is not None else 0,
            ),
        )
        return len(rows)

    def commit_epoch(
        self,
        kind: str,
        num_vertices: int,
        num_edges: int,
        dirty_rows: int,
        seconds: float,
    ) -> int:
        """Append an epoch row, advance ``current_epoch`` and commit."""
        epoch = self.current_epoch + 1
        self.connection.execute(
            "INSERT INTO epochs (epoch, kind, created_at, graph_checksum, "
            "num_vertices, num_edges, dirty_rows, seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                epoch,
                kind,
                time.strftime("%Y-%m-%dT%H:%M:%S"),
                self.stored_graph_checksum,
                num_vertices,
                num_edges,
                dirty_rows,
                seconds,
            ),
        )
        self.set_meta("current_epoch", str(epoch))
        if kind in (KIND_BUILD, KIND_REBUILD):
            self.set_meta("orders_epoch", str(epoch))
        self.set_meta("status", STATUS_COMPLETE)
        run_with_busy_retry(
            self.connection.commit, f"epoch commit on {self.path!r}"
        )
        return epoch

    # ------------------------------------------------------------------ #
    # reads shared by the refresher
    # ------------------------------------------------------------------ #
    def load_vids(self) -> Dict[Vertex, int]:
        """``label -> vid`` for every stored vertex."""
        return {
            decode_label(label): vid
            for vid, label in self.connection.execute("SELECT vid, label FROM vertices")
        }

    def load_layer(self, h: int) -> List[Tuple[int, int]]:
        """``(vid, core)`` rows of one persisted layer."""
        return list(
            self.connection.execute("SELECT vid, core FROM cores WHERE h = ?", (h,))
        )

    def load_graph(self) -> Graph:
        """Reconstruct the stored structure as a :class:`Graph`."""
        labels = {
            vid: decode_label(label)
            for vid, label in self.connection.execute("SELECT vid, label FROM vertices")
        }
        graph = Graph(vertices=labels.values())
        for u, v in self.connection.execute("SELECT u, v FROM edges"):
            graph.add_edge(labels[u], labels[v])
        return graph

    def max_vid(self) -> int:
        row = self.connection.execute("SELECT MAX(vid) FROM vertices").fetchone()
        return row[0] or 0

    # ------------------------------------------------------------------ #
    # full verification
    # ------------------------------------------------------------------ #
    def verify(self) -> None:
        """Recompute every checksum from the rows; raise on any mismatch.

        This is the deep (row-scan) integrity check behind
        ``kh-core index stats --verify`` and the reader's ``verify=True``
        open mode: the stored graph checksum must match the vertex/edge
        tables, every layer checksum must match its core rows, and every
        configured h must actually have a layer.
        """
        conn = self.connection
        stored_graph = self.stored_graph_checksum
        actual_graph = 0
        labels: Dict[int, str] = {}
        for vid, label in conn.execute("SELECT vid, label FROM vertices"):
            labels[vid] = label
            actual_graph ^= token_crc(vertex_token(label))
        for u, v in conn.execute("SELECT u, v FROM edges"):
            if u not in labels or v not in labels:
                raise IndexCorruptionError(
                    f"{self.path!r}: edge ({u}, {v}) references a missing "
                    "vertex row"
                )
            actual_graph ^= token_crc(edge_token(labels[u], labels[v]))
        if actual_graph != stored_graph:
            raise IndexCorruptionError(
                f"{self.path!r}: stored graph checksum {stored_graph:#010x} "
                f"does not match the vertex/edge rows ({actual_graph:#010x})"
            )
        layer_rows = dict(conn.execute("SELECT h, checksum FROM layers").fetchall())
        for h in self.h_values:
            if h not in layer_rows:
                raise IndexCorruptionError(
                    f"{self.path!r}: layer h={h} is configured but missing"
                )
            actual = 0
            count = 0
            for vid, core in conn.execute(
                "SELECT vid, core FROM cores WHERE h = ?", (h,)
            ):
                if vid not in labels:
                    raise IndexCorruptionError(
                        f"{self.path!r}: layer h={h} has a core row for "
                        f"missing vertex vid={vid}"
                    )
                actual ^= token_crc(core_token(labels[vid], core))
                count += 1
            if actual != layer_rows[h]:
                raise IndexCorruptionError(
                    f"{self.path!r}: layer h={h} checksum mismatch "
                    f"(stored {layer_rows[h]:#010x}, rows {actual:#010x})"
                )
            if count != len(labels):
                raise IndexCorruptionError(
                    f"{self.path!r}: layer h={h} has {count} rows for "
                    f"{len(labels)} vertices"
                )

"""Persistent (k,h)-core spectrum index (the "XPath accelerator" move).

This package turns repeated core queries from recomputes into index reads:
:func:`build_index` precomputes the full core spectrum (every vertex's
core index for a range of distance thresholds, plus removal orders and the
graph structure) into an SQLite columnar store;
:class:`CoreIndexReader` answers point lookups, membership thresholds,
shell drill-downs and snapshot diffs as pure table reads; and
:class:`IndexRefresher` keeps the store exact under edge updates by riding
the dynamic engine's dirty-region output, rewriting only touched rows.

Quickstart
----------
>>> from repro.graph.generators import relaxed_caveman_graph
>>> from repro.index import build_index, CoreIndexReader
>>> graph = relaxed_caveman_graph(4, 6, 0.1, seed=1)
>>> report = build_index(graph, "/tmp/demo.khidx", h_values=(1, 2),
...                      overwrite=True)
>>> with CoreIndexReader("/tmp/demo.khidx") as reader:
...     _ = reader.core_number(0, h=2)
...     _ = reader.membership_threshold(0, k=5)
"""

from repro.index.build import DEFAULT_H_VALUES, BuildReport, build_index
from repro.index.query import CoreIndexReader
from repro.index.refresh import (
    DEFAULT_STALENESS_RATIO,
    IndexRefresher,
    RefreshSummary,
    refresh_index,
)
from repro.index.store import (
    CoreIndexStore,
    SCHEMA_VERSION,
    graph_checksum,
    layer_checksum,
)

__all__ = [
    "BuildReport",
    "CoreIndexReader",
    "CoreIndexStore",
    "DEFAULT_H_VALUES",
    "DEFAULT_STALENESS_RATIO",
    "IndexRefresher",
    "RefreshSummary",
    "SCHEMA_VERSION",
    "build_index",
    "graph_checksum",
    "layer_checksum",
    "refresh_index",
]

"""Build a persistent core-spectrum index from a graph.

:func:`build_index` runs the spectrum computation (every configured h,
each decomposition seeding the next one's lower bounds — see
:func:`repro.core.spectrum.core_spectrum`) and bulk-loads the results into
a :class:`~repro.index.store.CoreIndexStore`: one WAL transaction of
batched ``executemany`` inserts, with ``status`` flipped to ``complete``
only by the final commit so an interrupted build is never readable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.spectrum import core_spectrum
from repro.graph.graph import Graph
from repro.index.store import (
    KIND_BUILD,
    KIND_REBUILD,
    CoreIndexStore,
)
from repro.instrumentation import Counters, NULL_COUNTERS

#: Default thresholds persisted when the caller does not choose a range
#: (the paper's suggested "spectrum" window).
DEFAULT_H_VALUES: Tuple[int, ...] = (1, 2, 3)


@dataclass
class BuildReport:
    """What one index build (or rebuild) wrote."""

    path: str
    h_values: Tuple[int, ...]
    num_vertices: int = 0
    num_edges: int = 0
    rows_written: int = 0
    seconds: float = 0.0
    epoch: int = 0
    degeneracies: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "h_values": list(self.h_values),
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "rows_written": self.rows_written,
            "seconds": self.seconds,
            "epoch": self.epoch,
            "degeneracies": {
                str(h): d for h, d in sorted(self.degeneracies.items())
            },
        }


def write_full_state(
    store: CoreIndexStore, graph: Graph, kind: str, counters: Counters = NULL_COUNTERS
) -> BuildReport:
    """Compute the spectrum of ``graph`` and replace the store's state.

    Shared by the initial build and the refresher's staleness fallback
    (``kind`` is ``build`` or ``rebuild``).  Rebuilds also reset the delta
    log: a wholesale rewrite has no per-row history to offer, and diff
    queries refuse to span a rebuild epoch.
    """
    started = time.perf_counter()
    h_values = store.h_values
    spectrum = core_spectrum(graph, h_values, counters=counters)
    if kind == KIND_REBUILD:
        store.set_meta("status", "building")
        store.connection.execute("DELETE FROM deltas")
    vids = store.write_graph(graph)
    rows = 0
    degeneracies: Dict[int, int] = {}
    for h in h_values:
        decomposition = spectrum.decompositions[h]
        rows += store.write_layer(
            h, decomposition.core_index, vids, order=decomposition.removal_order
        )
        degeneracies[h] = decomposition.degeneracy
    seconds = time.perf_counter() - started
    epoch = store.commit_epoch(
        kind, graph.num_vertices, graph.num_edges, dirty_rows=rows, seconds=seconds
    )
    return BuildReport(
        path=store.path,
        h_values=h_values,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        rows_written=rows,
        seconds=seconds,
        epoch=epoch,
        degeneracies=degeneracies,
    )


def build_index(
    graph: Graph,
    path: str,
    h_values: Optional[Sequence[int]] = None,
    source: str = "graph",
    overwrite: bool = False,
    counters: Counters = NULL_COUNTERS,
) -> BuildReport:
    """Build a fresh persistent core index for ``graph`` at ``path``.

    Parameters
    ----------
    graph:
        The graph to index (not retained — the structure is persisted).
    path:
        Filesystem path of the SQLite database to create.
    h_values:
        Distance thresholds to precompute (default ``(1, 2, 3)``).
    source:
        Display name recorded in the metadata (dataset or file name).
    overwrite:
        Replace an existing file instead of refusing.
    counters:
        Optional instrumentation sink for the decomposition work.
    """
    chosen = tuple(h_values) if h_values is not None else DEFAULT_H_VALUES
    store = CoreIndexStore.create(path, chosen, source, overwrite=overwrite)
    try:
        return write_full_state(store, graph, KIND_BUILD, counters=counters)
    finally:
        store.close()

"""Cached downloaders for the paper's real public datasets.

The registry in :mod:`repro.datasets.registry` ships synthetic stand-ins so
the library works offline; this module is the bridge to the *actual* graphs
the paper evaluates (SNAP and KONECT mirrors).  One entry point:

>>> path = fetch_dataset("caHe")                     # doctest: +SKIP
>>> graph = CSRGraph.from_edge_file(path, storage="auto")   # doctest: +SKIP

:func:`fetch_dataset` downloads the archive once into a local cache
directory (``KH_CORE_DATA_DIR`` or ``~/.cache/kh-core-datasets``),
decompresses it to a plain edge-list text file, and returns that file's
path.  The decompressed file keeps the upstream dialect — ``#`` / ``%``
comments, duplicate orientations, whitespace columns — because everything
downstream (:func:`repro.graph.io.read_edge_list` and the out-of-core
:func:`repro.graph.stream_load.stream_load`) already speaks the shared
:mod:`repro.graph.edgefile` dialect and deduplicates on the fly.  Passing
``normalize=True`` additionally rewrites the file through
:func:`repro.graph.edgefile.write_canonical` — the exact writer
``kh-core datasets export`` uses — producing the byte-stable sorted form
(this materializes the graph in RAM, so reserve it for the small and
medium datasets).

Integrity: every download's SHA-256 is computed while streaming.  A spec
that pins ``sha256`` is verified strictly; otherwise the digest is recorded
next to the file on first fetch (trust-on-first-use) and verified against
that sidecar on every later fetch, so a corrupted or tampered re-download
cannot silently replace a good copy.  ``file://`` URLs work throughout,
which is how the test suite exercises the pipeline offline.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import shutil
import tarfile
import tempfile
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DatasetChecksumError, DatasetNotFoundError
from repro.graph.edgefile import iter_records, write_canonical
from repro.graph.graph import Graph

#: Environment variable overriding the default cache directory.
DATA_DIR_ENV_VAR = "KH_CORE_DATA_DIR"

#: Bytes per read while streaming a download to disk.
_CHUNK = 1 << 20


@dataclass(frozen=True)
class RealDatasetSpec:
    """One real public dataset: where it lives and how to unpack it.

    ``sha256`` pins the archive's digest when known; ``None`` enables
    trust-on-first-use.  ``archive`` names the container format:
    ``"gz"`` (a gzipped edge list, the SNAP convention), ``"tar.bz2"``
    (a KONECT tarball whose ``out.*`` member is the edge list) or
    ``"plain"`` (the URL is the text file itself).
    """

    name: str
    url: str
    source: str
    description: str
    archive: str = "gz"
    sha256: Optional[str] = None


_REAL: Dict[str, RealDatasetSpec] = {
    spec.name: spec
    for spec in [
        RealDatasetSpec(
            "jazz", "http://konect.cc/files/download.tsv.arenas-jazz.tar.bz2",
            "KONECT", "collaboration network of jazz musicians",
            archive="tar.bz2"),
        RealDatasetSpec(
            "FBco", "https://snap.stanford.edu/data/facebook_combined.txt.gz",
            "SNAP", "combined Facebook ego networks"),
        RealDatasetSpec(
            "caHe", "https://snap.stanford.edu/data/ca-HepPh.txt.gz",
            "SNAP", "arXiv HEP-Ph collaboration network"),
        RealDatasetSpec(
            "caAs", "https://snap.stanford.edu/data/ca-AstroPh.txt.gz",
            "SNAP", "arXiv AstroPh collaboration network"),
        RealDatasetSpec(
            "doub", "http://konect.cc/files/download.tsv.douban.tar.bz2",
            "KONECT", "Douban social network", archive="tar.bz2"),
        RealDatasetSpec(
            "amzn", "https://snap.stanford.edu/data/com-amazon.ungraph.txt.gz",
            "SNAP", "Amazon co-purchasing network"),
        RealDatasetSpec(
            "rnPA", "https://snap.stanford.edu/data/roadNet-PA.txt.gz",
            "SNAP", "Pennsylvania road network"),
        RealDatasetSpec(
            "rnTX", "https://snap.stanford.edu/data/roadNet-TX.txt.gz",
            "SNAP", "Texas road network"),
        RealDatasetSpec(
            "sytb", "https://snap.stanford.edu/data/com-youtube.ungraph.txt.gz",
            "SNAP", "YouTube social network"),
        RealDatasetSpec(
            "hyves", "http://konect.cc/files/download.tsv.hyves.tar.bz2",
            "KONECT", "Hyves social network", archive="tar.bz2"),
        RealDatasetSpec(
            "lj", "https://snap.stanford.edu/data/com-lj.ungraph.txt.gz",
            "SNAP", "LiveJournal social network"),
    ]
}

#: Names with a registered real-download source (a subset of the paper's
#: Table 1 — coli and cele have no stable public mirror).
REAL_DATASET_NAMES: Tuple[str, ...] = tuple(_REAL)


def available_real_datasets() -> List[str]:
    """Names of every dataset with a registered download source."""
    return list(REAL_DATASET_NAMES)


def real_dataset_spec(name: str) -> RealDatasetSpec:
    """The :class:`RealDatasetSpec` registered under ``name``."""
    try:
        return _REAL[name]
    except KeyError:
        raise DatasetNotFoundError(name, REAL_DATASET_NAMES) from None


def default_cache_dir() -> str:
    """The dataset cache directory (``KH_CORE_DATA_DIR`` or ``~/.cache``)."""
    override = os.environ.get(DATA_DIR_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "kh-core-datasets")


def _sha256_of(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _verify(spec: RealDatasetSpec, archive_path: str, digest: str) -> None:
    """Strict pinned check, else trust-on-first-use via a sidecar file."""
    if spec.sha256 is not None:
        if digest != spec.sha256:
            raise DatasetChecksumError(spec.name, spec.sha256, digest)
        return
    sidecar = archive_path + ".sha256"
    if os.path.exists(sidecar):
        with open(sidecar, "r", encoding="utf-8") as handle:
            recorded = handle.read().strip()
        if digest != recorded:
            raise DatasetChecksumError(spec.name, recorded, digest)
    else:
        with open(sidecar, "w", encoding="utf-8") as handle:
            handle.write(digest + "\n")


def _download(url: str, target: str) -> str:
    """Stream ``url`` to ``target`` (atomic rename), returning the digest."""
    digest = hashlib.sha256()
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target),
                               prefix=".kh-core-fetch-")
    try:
        with os.fdopen(fd, "wb") as out, urllib.request.urlopen(url) as src:
            for chunk in iter(lambda: src.read(_CHUNK), b""):
                out.write(chunk)
                digest.update(chunk)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return digest.hexdigest()


def _extract(spec: RealDatasetSpec, archive_path: str, text_path: str) -> None:
    """Unpack ``archive_path`` into the plain edge-list file ``text_path``."""
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(text_path),
                               prefix=".kh-core-extract-")
    try:
        with os.fdopen(fd, "wb") as out:
            if spec.archive == "gz":
                with gzip.open(archive_path, "rb") as src:
                    shutil.copyfileobj(src, out, _CHUNK)
            elif spec.archive == "tar.bz2":
                with tarfile.open(archive_path, "r:bz2") as tar:
                    member = next(
                        (m for m in tar.getmembers()
                         if os.path.basename(m.name).startswith("out.")),
                        None)
                    if member is None:
                        raise DatasetNotFoundError(
                            f"{spec.name} (no out.* member in archive)",
                            REAL_DATASET_NAMES)
                    src = tar.extractfile(member)
                    assert src is not None
                    shutil.copyfileobj(src, out, _CHUNK)
            else:  # "plain"
                with open(archive_path, "rb") as src:
                    shutil.copyfileobj(src, out, _CHUNK)
        os.replace(tmp, text_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _normalize(spec: RealDatasetSpec, text_path: str,
               normalized_path: str) -> None:
    """Rewrite a raw edge list in the canonical byte-stable form.

    Materializes the graph in RAM (dedup + endpoint normalization need the
    full edge set), so this is for the small/medium datasets; the huge ones
    go straight to :func:`repro.graph.stream_load.stream_load`, whose
    external-sort pipeline does the same dedup out of core.
    """
    graph = Graph()
    with open(text_path, "r", encoding="utf-8", errors="replace") as handle:
        for _, tokens in iter_records(handle):
            if len(tokens) == 1 or tokens[0] == tokens[1]:
                graph.add_vertex(tokens[0])
            else:
                graph.add_edge(tokens[0], tokens[1])
    write_canonical(
        graph, normalized_path,
        header=(f"dataset {spec.name} source={spec.source}: "
                f"{graph.num_vertices} vertices, {graph.num_edges} edges"))


def fetch_dataset(name: str, cache_dir: Optional[str] = None,
                  refresh: bool = False, normalize: bool = False) -> str:
    """Download (once) and return the path of dataset ``name``'s edge list.

    Parameters
    ----------
    name:
        A registered real dataset (:func:`available_real_datasets`).
    cache_dir:
        Cache root (default: :func:`default_cache_dir`).  Layout:
        ``<cache>/<name>/`` holds the archive, its ``.sha256`` sidecar,
        the decompressed ``<name>.txt`` and (on demand)
        ``<name>.canonical.txt``.
    refresh:
        Re-download even when a cached archive exists.  The new bytes are
        still verified against the pinned/recorded checksum, so a refresh
        can never silently swap in different data.
    normalize:
        Also produce the canonical sorted form
        (:func:`repro.graph.edgefile.write_canonical`) and return *its*
        path instead.  RAM-resident; see :func:`_normalize`.

    Returns the path of a plain-text edge list ready for
    :func:`repro.graph.io.read_edge_list`,
    :meth:`repro.graph.csr.CSRGraph.from_edge_file` or the CLI.
    """
    spec = real_dataset_spec(name)
    root = os.path.join(cache_dir or default_cache_dir(), name)
    os.makedirs(root, exist_ok=True)
    suffix = {"gz": ".txt.gz", "tar.bz2": ".tar.bz2",
              "plain": ".txt"}[spec.archive]
    archive_path = os.path.join(root, name + suffix)
    text_path = os.path.join(root, name + ".txt")

    if refresh or not os.path.exists(archive_path):
        digest = _download(spec.url, archive_path)
    else:
        digest = _sha256_of(archive_path)
    _verify(spec, archive_path, digest)

    if spec.archive == "plain":
        text_path = archive_path
    elif refresh or not os.path.exists(text_path):
        _extract(spec, archive_path, text_path)

    if not normalize:
        return text_path
    normalized_path = os.path.join(root, name + ".canonical.txt")
    if refresh or not os.path.exists(normalized_path):
        _normalize(spec, text_path, normalized_path)
    return normalized_path

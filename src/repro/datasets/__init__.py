"""The paper's datasets: synthetic stand-ins plus real-download plumbing.

The paper evaluates on public graphs from SNAP / KONECT / networkrepository
(Table 1), up to 4.8 million vertices.  Two complementary paths:

* :mod:`repro.datasets.registry` — deterministic synthetic graphs of the
  same *structural family* (social, collaboration, biological, road,
  co-purchasing) at laptop-friendly scales, so the test-suite, examples and
  benchmarks run offline and reproducibly.  DESIGN.md §3 documents the
  substitution; :func:`paper_characteristics` keeps the original Table 1
  values available for side-by-side reporting.
* :mod:`repro.datasets.fetch` — cached, checksum-verified downloaders for
  the actual public graphs (``kh-core datasets fetch``), feeding the
  out-of-core loader for the experiments that want the real thing.
"""

from repro.datasets.fetch import (
    REAL_DATASET_NAMES,
    RealDatasetSpec,
    available_real_datasets,
    default_cache_dir,
    fetch_dataset,
    real_dataset_spec,
)
from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetSpec,
    available_datasets,
    load_dataset,
    load_many,
    dataset_spec,
    export_edge_list,
    paper_characteristics,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "REAL_DATASET_NAMES",
    "RealDatasetSpec",
    "available_datasets",
    "available_real_datasets",
    "default_cache_dir",
    "dataset_spec",
    "export_edge_list",
    "fetch_dataset",
    "load_dataset",
    "load_many",
    "paper_characteristics",
    "real_dataset_spec",
]

"""Synthetic stand-ins for the paper's thirteen real-world datasets.

The paper evaluates on public graphs from SNAP / KONECT / networkrepository
(Table 1), up to 4.8 million vertices.  This environment has no network
access and a single CPU core, so each real dataset is replaced by a synthetic
graph of the same *structural family* (social, collaboration, biological,
road, co-purchasing) at a laptop-friendly scale.  DESIGN.md §3 documents the
substitution; :func:`paper_characteristics` keeps the original Table 1 values
available for side-by-side reporting.
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetSpec,
    available_datasets,
    load_dataset,
    load_many,
    dataset_spec,
    export_edge_list,
    paper_characteristics,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
    "load_many",
    "dataset_spec",
    "export_edge_list",
    "paper_characteristics",
]

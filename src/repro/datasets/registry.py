"""Dataset registry: named synthetic stand-ins for the paper's graphs.

Every entry maps one of the paper's dataset names (coli, cele, jazz, FBco,
caHe, caAs, doub, amzn, rnPA, rnTX, sytb, hyves, lj) to a deterministic
generator of a structurally similar synthetic graph.  Three scales are
supported so the test-suite, the examples and the benchmark harness can pick
the size appropriate for their time budget:

* ``"tiny"``   — a few dozen vertices (unit tests).
* ``"small"``  — one-to-three hundred vertices (default; benchmark tables).
* ``"medium"`` — several hundred to ~1500 vertices (scalability figure).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import IO, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import DatasetNotFoundError, ParameterError
from repro.graph.edgefile import write_canonical
from repro.graph.graph import Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    relaxed_caveman_graph,
    road_network_graph,
)

#: Scale factors applied to the base (``"small"``) size of each dataset.
SCALES: Dict[str, float] = {"tiny": 0.35, "small": 1.0, "medium": 2.5}


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic stand-in dataset."""

    name: str
    family: str
    description: str
    builder: Callable[[float, int], Graph]
    paper_num_vertices: int
    paper_num_edges: int
    paper_avg_degree: float
    paper_max_degree: int
    paper_diameter: int

    def build(self, scale: str = "small", seed: int = 0) -> Graph:
        """Generate the graph at the requested scale with the given seed."""
        if scale not in SCALES:
            raise ParameterError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            )
        return self.builder(SCALES[scale], seed)


def _scaled(base: int, factor: float, minimum: int = 12) -> int:
    return max(minimum, int(round(base * factor)))


def _biological(base_n: int, m: int, triangle_p: float
                ) -> Callable[[float, int], Graph]:
    def build(factor: float, seed: int) -> Graph:
        return powerlaw_cluster_graph(_scaled(base_n, factor), m, triangle_p, seed=seed)
    return build


def _social(base_n: int, m: int) -> Callable[[float, int], Graph]:
    def build(factor: float, seed: int) -> Graph:
        return barabasi_albert_graph(_scaled(base_n, factor), m, seed=seed)
    return build


def _collaboration(base_cliques: int, clique_size: int, rewire_p: float
                   ) -> Callable[[float, int], Graph]:
    def build(factor: float, seed: int) -> Graph:
        cliques = _scaled(base_cliques, factor, minimum=3)
        return relaxed_caveman_graph(cliques, clique_size, rewire_p, seed=seed)
    return build


def _copurchase(base_groups: int, group_size: int, p_in: float, p_out: float
                ) -> Callable[[float, int], Graph]:
    def build(factor: float, seed: int) -> Graph:
        groups = _scaled(base_groups, factor, minimum=4)
        return planted_partition_graph(groups, group_size, p_in, p_out, seed=seed)
    return build


def _road(base_rows: int, base_cols: int) -> Callable[[float, int], Graph]:
    def build(factor: float, seed: int) -> Graph:
        side_factor = factor ** 0.5
        rows = _scaled(base_rows, side_factor, minimum=5)
        cols = _scaled(base_cols, side_factor, minimum=5)
        return road_network_graph(rows, cols, extra_edge_p=0.05, removal_p=0.05,
                                  seed=seed)
    return build


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("coli", "biological",
                    "E. coli metabolic-like sparse power-law graph",
                    _biological(150, 1, 0.3), 328, 456, 2.78, 100, 14),
        DatasetSpec("cele", "biological",
                    "C. elegans metabolic-like power-law graph with clustering",
                    _biological(160, 2, 0.4), 346, 1493, 8.63, 186, 7),
        DatasetSpec("jazz", "collaboration",
                    "jazz-musician-like dense overlapping-community graph",
                    _collaboration(14, 8, 0.10), 198, 2742, 27.70, 100, 6),
        DatasetSpec("FBco", "social",
                    "Facebook-ego-like preferential-attachment graph",
                    _social(180, 3), 4039, 88234, 43.69, 1045, 8),
        DatasetSpec("caHe", "collaboration",
                    "HEP-Ph-collaboration-like community graph",
                    _collaboration(24, 6, 0.15), 11204, 117619, 19.74, 491, 13),
        DatasetSpec("caAs", "collaboration",
                    "AstroPh-collaboration-like community graph",
                    _collaboration(30, 6, 0.20), 17903, 196972, 21.10, 504, 14),
        DatasetSpec("doub", "social",
                    "Douban-like sparse social graph",
                    _social(220, 2), 154908, 327162, 4.22, 287, 9),
        DatasetSpec("amzn", "co-purchasing",
                    "Amazon-co-purchase-like many-small-community graph",
                    _copurchase(28, 8, 0.55, 0.004), 334863, 925872, 3.38, 549, 44),
        DatasetSpec("rnPA", "road",
                    "Pennsylvania-road-like perturbed grid",
                    _road(14, 14), 1090920, 1541898, 2.83, 9, 786),
        DatasetSpec("rnTX", "road",
                    "Texas-road-like perturbed grid",
                    _road(15, 14), 1393383, 1921660, 2.76, 12, 1054),
        DatasetSpec("sytb", "social",
                    "YouTube-like sparse heavy-tailed social graph",
                    _social(260, 2), 495957, 1936748, 3.91, 25409, 21),
        DatasetSpec("hyves", "social",
                    "Hyves-like sparse heavy-tailed social graph",
                    _social(300, 2), 1402673, 2777419, 3.96, 31883, 10),
        DatasetSpec("lj", "social",
                    "LiveJournal-like denser preferential-attachment graph",
                    _social(700, 4), 4847571, 68993773, 14.23, 14815, 16),
    ]
}

#: Canonical order of dataset names (the order of the paper's Table 1).
DATASET_NAMES: Tuple[str, ...] = tuple(_REGISTRY)


def available_datasets() -> List[str]:
    """Return the names of every registered dataset."""
    return list(DATASET_NAMES)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetNotFoundError(name, DATASET_NAMES) from None


def load_dataset(name: str, scale: str = "small", seed: int = 0) -> Graph:
    """Build and return the synthetic stand-in graph for dataset ``name``."""
    return dataset_spec(name).build(scale=scale, seed=seed)


def load_many(names: Optional[Iterable[str]] = None, scale: str = "small",
              seed: int = 0) -> Dict[str, Graph]:
    """Build several datasets at once, returned as ``{name: graph}``."""
    chosen = list(names) if names is not None else list(DATASET_NAMES)
    return {name: load_dataset(name, scale=scale, seed=seed) for name in chosen}


def export_edge_list(name: str, target: Union[str, os.PathLike, IO[str]],
                     scale: str = "small", seed: int = 0) -> Graph:
    """Write dataset ``name`` as a deterministic, byte-stable edge list.

    The generators are already seed-deterministic; on top of that the
    export normalizes each edge's endpoint order and sorts all lines, so
    the same ``(name, scale, seed)`` triple produces byte-identical files
    on every run and platform — the property index builds and the
    benchmark harness rely on for stable on-disk fixtures.  Isolated
    vertices are written as bare-id lines (the
    :func:`repro.graph.io.read_edge_list` round-trip convention).  The
    formatting itself is :func:`repro.graph.edgefile.write_canonical` —
    the same writer the real-dataset fetch pipeline normalizes downloads
    through.  Returns the generated graph so callers can index or
    decompose it without re-reading the file.
    """
    graph = load_dataset(name, scale=scale, seed=seed)
    write_canonical(
        graph, target,
        header=(f"dataset {name} scale={scale} seed={seed}: "
                f"{graph.num_vertices} vertices, {graph.num_edges} edges"))
    return graph


def paper_characteristics() -> List[Dict[str, object]]:
    """Return the paper's Table 1 rows (the original datasets' statistics)."""
    rows = []
    for name in DATASET_NAMES:
        spec = _REGISTRY[name]
        rows.append({
            "dataset": name,
            "|V|": spec.paper_num_vertices,
            "|E|": spec.paper_num_edges,
            "avg deg": spec.paper_avg_degree,
            "max deg": spec.paper_max_degree,
            "diam": spec.paper_diameter,
            "family": spec.family,
        })
    return rows

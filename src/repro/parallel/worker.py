"""Process-pool worker for the shared-memory bulk h-degree pass.

:func:`run_chunk` is the only function the parent ever submits.  It is a
module-level callable (picklable by qualified name under both ``fork`` and
``spawn`` start methods) and keeps a small per-process cache so that the
expensive steps — attaching to the shared block and (re)installing the alive
mask into the BFS scratch — happen once per export generation / alive stamp
rather than once per task.

The task descriptor is deliberately tiny: ``(layout, chunk, h, use_alive,
alive_stamp, engine_kind)`` where ``layout`` is the attach descriptor
(:data:`~repro.parallel.shm.SharedCSRLayout` — an shm block name or a block
file path plus an alive-segment name) and ``chunk`` is a list of vertex
indices.  No graph data ever crosses the pipe.

``engine_kind`` selects the traversal kernel the worker runs over the
shared arrays:

* ``"csr"`` — the interpreted :class:`~repro.traversal.array_bfs.ArrayBFS`
  over ``memoryview('q')`` casts (the historical path);
* ``"numpy"`` — the vectorized block kernel
  (:meth:`~repro.traversal.numpy_bfs.NumpyBFS.bulk`) over zero-copy
  ``np.frombuffer`` views of the very same block.  If NumPy turns out to be
  unimportable in the worker (a mixed deployment), the worker silently
  falls back to the interpreted kernel — results are identical either way.
* ``"native"`` — the compiled block kernel
  (:meth:`~repro.traversal.native_bfs.NativeBFS.bulk`) over the same
  zero-copy views.  A worker without a working Numba downgrades silently
  to the NumPy kernel, and from there (no NumPy either) to the
  interpreted one — the same ladder ``backend="auto"`` climbs, descended.
"""

from __future__ import annotations

import atexit
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FaultInjectedError
from repro.instrumentation import Counters
from repro.parallel.shm import SharedCSRLayout, SharedCSRView
from repro.traversal.array_bfs import AliveMask, ArrayBFS

#: Per-process cache: the attached view, its BFS scratch (keyed also by the
#: engine kind that built it), and the alive mask installed for the current
#: ``alive_stamp``.
_STATE: Dict[str, Any] = {
    "key": None,
    # "requested" is the engine_kind of the task that built this attachment
    # (the cache key); "kind" is what _attach actually resolved it to — they
    # differ only when a NumPy-less worker downgraded a "numpy" request, and
    # keying the cache on the *request* keeps that downgrade from forcing a
    # detach/attach cycle on every subsequent task.
    "requested": None,
    "kind": None,
    "view": None,
    "bfs": None,
    "alive_stamp": None,
    "mask": None,
}


def _detach() -> None:
    """Drop the cached attachment (called when the export generation moves).

    The scratch is dropped *before* the view is closed: the NumPy scratch
    holds ``np.frombuffer`` views that pin the shared block's memoryviews,
    and releasing a pinned memoryview raises ``BufferError``.
    """
    view = _STATE["view"]
    _STATE.update(key=None, requested=None, kind=None, view=None, bfs=None,
                  alive_stamp=None, mask=None)
    if view is not None:
        view.close()


# Release the cached memoryview casts before interpreter teardown: a worker
# exiting with them alive would hit ``BufferError: cannot close exported
# pointers exist`` inside SharedMemory.__del__.
atexit.register(_detach)


def _layout_key(layout: SharedCSRLayout) -> tuple:
    """Identity of one export: kind, block name/path, generation.

    The generation matters for file attachments — a re-export keeps the
    same block path but allocates a fresh alive segment, so a stale cached
    attachment must be dropped.  Legacy 4-tuple descriptors key on the shm
    name and generation alike.
    """
    if len(layout) == 4:
        return ("shm", layout[0], layout[3])
    return (layout[0], layout[1], layout[4])


def _execute_fault(fault: Tuple[Any, ...]) -> None:
    """Act on an injected-fault directive shipped in the task descriptor.

    Directives are decided *parent-side* (one deterministic schedule, not
    one per respawned worker) and only simulate crashes here: ``kill``
    dies abruptly mid-task exactly like a segfault or OOM kill would,
    ``stall`` sleeps past the supervisor's chunk deadline first and then
    completes normally.
    """
    kind = fault[0]
    if kind == "kill":
        # os._exit skips atexit/finally — the parent sees the same broken
        # pipe a SIGKILLed worker produces, breaking the whole pool.
        os._exit(1)
    elif kind == "stall":
        time.sleep(float(fault[1]))


def _attach(layout: SharedCSRLayout, engine_kind: str) -> None:
    _detach()
    from repro.resilience.faults import should_fire

    if should_fire("shm.attach_fail"):
        # Fires before the view exists, so nothing is half-attached; the
        # probe counter has advanced, so the supervised retry succeeds.
        raise FaultInjectedError("shm.attach_fail",
                                 "simulated shared-memory attach failure")
    view = SharedCSRView(layout)
    kind = engine_kind
    bfs: Any = None
    if kind == "native":
        try:
            from repro.traversal.native_bfs import (
                NativeBFS,
                native_kernels_enabled,
            )

            if not native_kernels_enabled():
                raise ImportError("numba unavailable in worker")
            indptr, adjacency, _ = view.numpy_views()
            bfs = NativeBFS.from_arrays(indptr, adjacency)
        except ImportError:
            # Silent downgrade, one rung at a time: a Numba-less worker
            # still runs the vectorized kernel if it has NumPy.
            kind = "numpy"
    if kind == "numpy" and bfs is None:
        try:
            from repro.traversal.numpy_bfs import NumpyBFS

            indptr, adjacency, _ = view.numpy_views()
            bfs = NumpyBFS.from_arrays(indptr, adjacency)
        except ImportError:
            kind = "csr"
    if bfs is None:
        kind = "csr"
        bfs = ArrayBFS(view)
    _STATE.update(key=_layout_key(layout), requested=engine_kind, kind=kind,
                  view=view, bfs=bfs)


def run_chunk(layout: SharedCSRLayout, chunk: List[int], h: int,
              use_alive: bool, alive_stamp: int,
              engine_kind: str = "csr",
              fault: Optional[Tuple[Any, ...]] = None
              ) -> Tuple[List[Tuple[int, int]], Counters]:
    """h-degree of every index in ``chunk`` within the shared snapshot.

    Returns ``(pairs, counters)`` where ``pairs`` is ``[(index, h-degree)]``
    and ``counters`` is this task's private instrumentation, merged by the
    parent so the reported totals are identical to a serial run.

    ``fault`` is a parent-decided injection directive (``("kill",)`` /
    ``("stall", seconds)``) used only by the chaos-test harness.
    """
    if fault is not None:
        _execute_fault(fault)
    if (_STATE["key"] != _layout_key(layout)
            or _STATE["requested"] != engine_kind):
        _attach(layout, engine_kind)
    local = Counters()

    if _STATE["kind"] in ("numpy", "native"):
        # Block kernel (vectorized or compiled) straight over the shared
        # arrays.  The alive region is read per call (a frontier filter),
        # so no per-stamp mask reinstall is needed on this path.
        view: SharedCSRView = _STATE["view"]
        alive_view = view.numpy_views()[2] if use_alive else None
        degrees = _STATE["bfs"].bulk(chunk, h, alive_view, local)
        local.count_hdegrees(len(chunk))
        return list(zip(chunk, degrees.tolist())), local

    mask: Optional[AliveMask] = None
    if use_alive:
        if _STATE["alive_stamp"] != alive_stamp:
            region = _STATE["view"].alive_region
            # A fresh AliveMask object per stamp forces ArrayBFS to rebuild
            # its sentinel-folded visit marks from the (rewritten) shared
            # region; reusing the old object would skip the reinstall and
            # traverse a stale alive set.
            _STATE["mask"] = AliveMask(region, bytes(region).count(1))
            _STATE["alive_stamp"] = alive_stamp
        mask = _STATE["mask"]

    bfs: ArrayBFS = _STATE["bfs"]
    run = bfs.run
    pairs: List[Tuple[int, int]] = []
    append = pairs.append
    for index in chunk:
        # hook=False: this process never discards from the mask, so the
        # scratch does not need sentinel upkeep hooks.
        append((index, run(index, h, mask, local, hook=False)))
        local.count_hdegree()
    return pairs, local

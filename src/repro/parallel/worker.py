"""Process-pool worker for the shared-memory bulk h-degree pass.

:func:`run_chunk` is the only function the parent ever submits.  It is a
module-level callable (picklable by qualified name under both ``fork`` and
``spawn`` start methods) and keeps a small per-process cache so that the
expensive steps — attaching to the shared block and (re)installing the alive
mask into the BFS scratch — happen once per export generation / alive stamp
rather than once per task.

The task descriptor is deliberately tiny: ``(layout, chunk, h, use_alive,
alive_stamp)`` where ``layout`` is the 4-tuple attach descriptor
(:data:`~repro.parallel.shm.SharedCSRLayout`) and ``chunk`` is a list of
vertex indices.  No graph data ever crosses the pipe.
"""

from __future__ import annotations

import atexit
from typing import Any, Dict, List, Optional, Tuple

from repro.instrumentation import Counters
from repro.parallel.shm import SharedCSRLayout, SharedCSRView
from repro.traversal.array_bfs import AliveMask, ArrayBFS

#: Per-process cache: the attached view, its BFS scratch, and the alive mask
#: installed for the current ``alive_stamp``.
_STATE: Dict[str, Any] = {
    "name": None,
    "view": None,
    "bfs": None,
    "alive_stamp": None,
    "mask": None,
}


def _detach() -> None:
    """Drop the cached attachment (called when the export generation moves)."""
    view = _STATE["view"]
    if view is not None:
        view.close()
    _STATE.update(name=None, view=None, bfs=None, alive_stamp=None, mask=None)


# Release the cached memoryview casts before interpreter teardown: a worker
# exiting with them alive would hit ``BufferError: cannot close exported
# pointers exist`` inside SharedMemory.__del__.
atexit.register(_detach)


def _attach(layout: SharedCSRLayout) -> None:
    _detach()
    view = SharedCSRView(layout)
    _STATE.update(name=layout[0], view=view, bfs=ArrayBFS(view))


def run_chunk(layout: SharedCSRLayout, chunk: List[int], h: int,
              use_alive: bool, alive_stamp: int
              ) -> Tuple[List[Tuple[int, int]], Counters]:
    """h-degree of every index in ``chunk`` within the shared snapshot.

    Returns ``(pairs, counters)`` where ``pairs`` is ``[(index, h-degree)]``
    and ``counters`` is this task's private instrumentation, merged by the
    parent so the reported totals are identical to a serial run.
    """
    if _STATE["name"] != layout[0]:
        _attach(layout)
    mask: Optional[AliveMask] = None
    if use_alive:
        if _STATE["alive_stamp"] != alive_stamp:
            region = _STATE["view"].alive_region
            # A fresh AliveMask object per stamp forces ArrayBFS to rebuild
            # its sentinel-folded visit marks from the (rewritten) shared
            # region; reusing the old object would skip the reinstall and
            # traverse a stale alive set.
            _STATE["mask"] = AliveMask(region, bytes(region).count(1))
            _STATE["alive_stamp"] = alive_stamp
        mask = _STATE["mask"]

    bfs: ArrayBFS = _STATE["bfs"]
    run = bfs.run
    local = Counters()
    pairs: List[Tuple[int, int]] = []
    append = pairs.append
    for index in chunk:
        # hook=False: this process never discards from the mask, so the
        # scratch does not need sentinel upkeep hooks.
        append((index, run(index, h, mask, local, hook=False)))
        local.count_hdegree()
    return pairs, local

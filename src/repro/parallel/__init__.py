"""True multi-core execution for the bulk h-degree passes (§4.6).

The paper parallelizes the bulk h-degree computations; on CPython a thread
pool cannot deliver that for pure-Python BFS (the GIL serializes the
workers), so this subpackage provides the *process* backend: CSR adjacency
arrays are exported once into :mod:`multiprocessing.shared_memory`, a
persistent pool of worker processes attaches to the block, and only tiny
``(chunk, h, generation)`` descriptors cross the pipe per task.

Layering
--------
* :mod:`repro.parallel.shm` — block layout, parent-side exports
  (:class:`SharedCSRExport` for in-RAM snapshots, :class:`FileCSRExport`
  for mmap-backed block files — workers then map the file zero-copy and
  only the alive mask rides in shared memory), worker-side view
  (:class:`SharedCSRView`).
* :mod:`repro.parallel.worker` — the per-process task entry point
  (:func:`run_chunk`) with its attach/alive caches.
* :mod:`repro.parallel.pool` — :class:`SharedMemoryExecutor`: pool
  lifecycle, version-stamped re-export, chunk dispatch, teardown.

Consumers select it through the ``executor="process"`` argument of the
decomposition entry points (see :func:`repro.core.core_decomposition` and
the ``kh-core --executor process --workers N`` CLI flags); the scheduling
itself lives in :func:`repro.core.parallel.map_batches` and
:meth:`repro.core.backends.CSREngine.bulk_h_degrees`.
"""

from repro.core.parallel import EXECUTORS
from repro.parallel.pool import DEFAULT_OVERSUBSCRIPTION, SharedMemoryExecutor
from repro.parallel.shm import FileCSRExport, SharedCSRExport, SharedCSRView
from repro.parallel.worker import run_chunk

__all__ = [
    "DEFAULT_OVERSUBSCRIPTION",
    "EXECUTORS",
    "FileCSRExport",
    "SharedCSRExport",
    "SharedCSRView",
    "SharedMemoryExecutor",
    "run_chunk",
]

"""Shared-memory / file-backed export of CSR arrays (§4.6, process backend).

A :class:`SharedCSRExport` packs one :class:`~repro.graph.csr.CSRGraph`
snapshot into a single :class:`multiprocessing.shared_memory.SharedMemory`
block so that worker *processes* can traverse the graph without ever
receiving it over a pipe.  The payload layout is the storage tier's one
(:func:`repro.graph.storage.payload_layout`)::

    +-------------------------+------------------------+----------------+
    | indptr                  | adjacency              | alive          |
    | int64 x (n + 1)         | int64 x len(adjacency) | uint8 x n      |
    +-------------------------+------------------------+----------------+

* ``indptr`` / ``adjacency`` are written **once per export** (the export is
  version-stamped with a generation counter; a mutated graph gets a fresh
  export, never an in-place rewrite).
* ``alive`` is a mutable region the parent rewrites *between* dispatches
  (never while tasks are in flight — the bulk pass is synchronous), so the
  per-dispatch traffic over the pipe is only ``(chunk, h, generation)``
  descriptors.

When the snapshot already lives in an on-disk block file
(``storage="mmap"``), copying it into shared memory would defeat the point
of spilling it.  :class:`FileCSRExport` instead ships workers the *path*:
each worker maps the block file read-only (the OS page cache makes this a
genuinely shared, zero-copy attach) and only the small mutable ``alive``
region travels through a dedicated shared-memory block.

Workers attach with :class:`SharedCSRView`, which exposes ``indptr`` /
``adjacency`` as zero-copy ``memoryview('q')`` casts — structurally
compatible with the flat-list interface :class:`~repro.traversal.array_bfs.
ArrayBFS` expects (integer indexing plus slice iteration), so the exact same
generation-stamped BFS runs unchanged on either attachment style.
"""

from __future__ import annotations

import mmap
import os
import secrets
from multiprocessing import shared_memory
from typing import Optional, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.storage import (
    HEADER_SIZE,
    MAGIC,
    payload_layout,
    write_payload,
)

#: Picklable description of an export, small enough to ride along with every
#: task descriptor: ``(kind, name_or_path, num_vertices, adjacency length,
#: generation, alive shm name)``.  ``kind`` is ``"shm"`` (the block *is* a
#: shared-memory segment; alive name is ``None`` — the region trails the
#: arrays) or ``"file"`` (attach by mapping the block file; the mutable
#: alive region lives in its own small shm segment).  The legacy 4-tuple
#: ``(name, n, m2, generation)`` is still accepted by :class:`SharedCSRView`.
SharedCSRLayout = Tuple[str, str, int, int, int, Optional[str]]

_LegacyLayout = Tuple[str, int, int, int]

#: Prefix of every segment this library creates.  The owner pid is encoded
#: in the name so ``kh-core doctor`` can tell an orphan (owner dead) from a
#: segment that is merely busy, and reclaim only the former.
SEGMENT_PREFIX = "khcore"


def create_segment(size: int, generation: int) -> shared_memory.SharedMemory:
    """Create a shared-memory segment named ``khcore-<pid>-<gen>-<token>``.

    Platform-default anonymous names (``psm_...``) are unattributable: a
    janitor cannot tell whose they are or whether the owner is alive.  The
    explicit name stays under the POSIX 31-character portability ceiling
    and retries on the (astronomically unlikely) token collision; if
    naming keeps colliding the block still gets exported anonymously —
    resilience never blocks the dispatch path.
    """
    for _ in range(16):
        name = (f"{SEGMENT_PREFIX}-{os.getpid()}-{generation}-"
                f"{secrets.token_hex(2)}")
        try:
            return shared_memory.SharedMemory(create=True, size=size,
                                              name=name)
        except FileExistsError:
            continue
    return shared_memory.SharedMemory(create=True, size=size)


class SharedCSRExport:
    """Parent-side owner of one shared-memory CSR block.

    The exporting process is the sole owner of the block's lifetime: it
    creates, (re)writes and eventually unlinks it.  Workers only ever attach
    read-only views (:class:`SharedCSRView`).
    """

    __slots__ = ("shm", "name", "num_vertices", "adjacency_len",
                 "generation", "_alive_offset")

    def __init__(self, csr: CSRGraph, generation: int) -> None:
        n = csr.num_vertices
        m2 = len(csr.adjacency)
        _, _, alive_offset, payload_size = payload_layout(n, m2)
        self.shm = create_segment(max(1, payload_size), generation)
        self.name = self.shm.name
        self.num_vertices = n
        self.adjacency_len = m2
        self.generation = generation
        self._alive_offset = alive_offset
        write_payload(self.shm.buf, csr.indptr, csr.adjacency)

    def layout(self) -> SharedCSRLayout:
        """Picklable attach descriptor for worker processes."""
        return ("shm", self.name, self.num_vertices, self.adjacency_len,
                self.generation, None)

    def write_alive(self, mask_bytes: bytes) -> None:
        """Overwrite the alive region (only between dispatches)."""
        if len(mask_bytes) != self.num_vertices:
            raise ValueError(
                f"alive mask has {len(mask_bytes)} bytes, expected "
                f"{self.num_vertices}"
            )
        if self.num_vertices:
            offset = self._alive_offset
            self.shm.buf[offset:offset + self.num_vertices] = mask_bytes

    def close(self) -> None:
        """Release the mapping and unlink the block (idempotent)."""
        shm, self.shm = self.shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class FileCSRExport:
    """Parent-side export of an already-on-disk CSR block file.

    The immutable arrays never move: workers map the block file themselves
    (read-only; the page cache shares the physical pages between all of
    them).  Only the mutable ``alive`` mask gets a freshly-created
    shared-memory segment, sized ``n`` bytes — for a multi-gigabyte
    snapshot that is the difference between "export costs a memcpy of the
    whole graph" and "export costs one small shm allocation".

    Drop-in replacement for :class:`SharedCSRExport` from the executor's
    point of view: same ``layout()`` / ``write_alive()`` / ``close()``
    surface, and
    ``close()`` unlinks only the alive segment — never the dataset file.
    """

    __slots__ = ("path", "alive_shm", "name", "num_vertices",
                 "adjacency_len", "generation")

    def __init__(self, csr: CSRGraph, generation: int) -> None:
        storage = csr.storage
        if storage is None or storage.kind != "mmap":
            raise ValueError(
                "FileCSRExport requires an mmap-backed CSRGraph; use "
                "SharedCSRExport for in-RAM snapshots"
            )
        self.path = storage.path
        n = csr.num_vertices
        self.num_vertices = n
        self.adjacency_len = len(csr.adjacency)
        self.generation = generation
        self.alive_shm = create_segment(max(1, n), generation)
        #: The one shm segment this export owns (the alive mask).
        self.name = self.alive_shm.name
        if n:
            self.alive_shm.buf[0:n] = b"\x01" * n

    def layout(self) -> SharedCSRLayout:
        """Picklable attach descriptor for worker processes."""
        return ("file", self.path, self.num_vertices, self.adjacency_len,
                self.generation, self.alive_shm.name)

    def write_alive(self, mask_bytes: bytes) -> None:
        """Overwrite the alive segment (only between dispatches)."""
        if len(mask_bytes) != self.num_vertices:
            raise ValueError(
                f"alive mask has {len(mask_bytes)} bytes, expected "
                f"{self.num_vertices}"
            )
        if self.num_vertices:
            self.alive_shm.buf[0:self.num_vertices] = mask_bytes

    def close(self) -> None:
        """Release and unlink the alive segment (idempotent).

        The block file belongs to whoever built it (typically an
        :class:`~repro.graph.storage.MmapCSRStorage` with its own
        lifecycle); the export never touches it.
        """
        shm, self.alive_shm = self.alive_shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class SharedCSRView:
    """Worker-side zero-copy view over an attached shared CSR export.

    Duck-types the slice of the :class:`~repro.graph.csr.CSRGraph` interface
    that :class:`~repro.traversal.array_bfs.ArrayBFS` touches —
    ``num_vertices``, ``indptr`` and ``adjacency`` — so one worker-local
    ``ArrayBFS`` scratch (visit marks stay private per process; sharing them
    would be a data race) can run the h-bounded traversals directly on the
    shared arrays.  Accepts both attachment styles (``"shm"`` and
    ``"file"``) plus the legacy 4-tuple shm descriptor.
    """

    __slots__ = ("shm", "indptr", "adjacency", "alive_region",
                 "num_vertices", "generation", "name", "_numpy_views",
                 "_mm", "_fh", "_alive_shm", "_buf")

    def __init__(self, layout: Union[SharedCSRLayout, _LegacyLayout]) -> None:
        if len(layout) == 4:  # legacy shm descriptor
            kind, name, n, m2, generation, alive_name = (
                "shm", layout[0], layout[1], layout[2], layout[3], None)
        else:
            kind, name, n, m2, generation, alive_name = layout
        self.name = name
        self.num_vertices = n
        self.generation = generation
        self._numpy_views = None
        self._mm = self._fh = self._alive_shm = self._buf = None
        indptr_bytes, _, alive_offset, _ = payload_layout(n, m2)
        if kind == "shm":
            # Attaching registers the name with the resource tracker a
            # second time, but pool workers share the exporting parent's
            # tracker (the fd is inherited under fork and spawn alike) and
            # registrations are a set, so the parent's unlink-time
            # unregister stays balanced.  Do NOT unregister here: that
            # would strip the parent's registration from the shared tracker.
            self.shm = shared_memory.SharedMemory(name=name)
            buf = self.shm.buf
            self.indptr = buf[0:indptr_bytes].cast("q")
            self.adjacency = buf[indptr_bytes:alive_offset].cast("q")
            self.alive_region = buf[alive_offset:alive_offset + n]
        elif kind == "file":
            self.shm = None
            fh = open(name, "rb")
            try:
                if fh.read(len(MAGIC)) != MAGIC:
                    raise GraphFormatError(
                        f"{name}: not a CSR block file (bad magic)")
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except BaseException:
                fh.close()
                raise
            self._fh, self._mm = fh, mm
            buf = memoryview(mm)
            self._buf = buf
            start = HEADER_SIZE
            self.indptr = buf[start:start + indptr_bytes].cast("q")
            self.adjacency = buf[start + indptr_bytes:
                                 start + alive_offset].cast("q")
            # The mutable alive mask rides in its own shm segment (the file
            # region is the all-ones finalized mask, never rewritten).
            self._alive_shm = shared_memory.SharedMemory(name=alive_name)
            self.alive_region = self._alive_shm.buf[0:n]
        else:
            raise ValueError(f"unknown shared CSR layout kind {kind!r}")

    def numpy_views(self):
        """``(indptr, adjacency, alive)`` as zero-copy NumPy views.

        ``np.frombuffer`` over the same shared regions the memoryview casts
        expose — no copy, no extra IPC; the NumPy worker kernel
        (:meth:`repro.traversal.numpy_bfs.NumpyBFS.bulk`) traverses the
        shared block directly.  Cached per view; requires NumPy (the caller
        dispatches ``engine_kind="numpy"`` only when the parent resolved a
        NumPy engine, so the import is expected to succeed).
        """
        if self._numpy_views is None:
            import numpy as np

            self._numpy_views = (
                np.frombuffer(self.indptr, dtype=np.int64),
                np.frombuffer(self.adjacency, dtype=np.int64),
                np.frombuffer(self.alive_region, dtype=np.uint8),
            )
        return self._numpy_views

    def close(self) -> None:
        """Release the views, then detach from the export (idempotent)."""
        shm, self.shm = self.shm, None
        mm, self._mm = self._mm, None
        fh, self._fh = self._fh, None
        alive_shm, self._alive_shm = self._alive_shm, None
        if shm is None and mm is None and alive_shm is None:
            return
        # Drop the ndarray wrappers first (they pin the memoryviews), then
        # release the casts; SharedMemory.close() / mmap.close() raise
        # BufferError while either is alive.
        self._numpy_views = None
        self.indptr.release()
        self.adjacency.release()
        self.alive_region.release()
        if self._buf is not None:
            self._buf.release()
            self._buf = None
        if shm is not None:
            shm.close()
        if mm is not None:
            mm.close()
        if fh is not None:
            fh.close()
        if alive_shm is not None:
            alive_shm.close()

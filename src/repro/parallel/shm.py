"""Shared-memory export of CSR adjacency arrays (§4.6, process backend).

A :class:`SharedCSRExport` packs one :class:`~repro.graph.csr.CSRGraph`
snapshot into a single :class:`multiprocessing.shared_memory.SharedMemory`
block so that worker *processes* can traverse the graph without ever
receiving it over a pipe.  The block layout is::

    +-------------------------+------------------------+----------------+
    | indptr                  | adjacency              | alive          |
    | int64 x (n + 1)         | int64 x len(adjacency) | uint8 x n      |
    +-------------------------+------------------------+----------------+

* ``indptr`` / ``adjacency`` are written **once per export** (the export is
  version-stamped with a generation counter; a mutated graph gets a fresh
  export, never an in-place rewrite).
* ``alive`` is a mutable region the parent rewrites *between* dispatches
  (never while tasks are in flight — the bulk pass is synchronous), so the
  per-dispatch traffic over the pipe is only ``(chunk, h, generation)``
  descriptors.

Workers attach with :class:`SharedCSRView`, which exposes ``indptr`` /
``adjacency`` as zero-copy ``memoryview('q')`` casts — structurally
compatible with the flat-list interface :class:`~repro.traversal.array_bfs.
ArrayBFS` expects (integer indexing plus slice iteration), so the exact same
generation-stamped BFS runs unchanged on the shared block.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Tuple

from repro.graph.csr import CSRGraph

#: Bytes per adjacency/indptr entry (``int64``).
_INT_SIZE = 8

#: Picklable description of an export: ``(shm name, num_vertices,
#: adjacency length, generation)``.  Everything a worker needs to attach;
#: small enough to ride along with every task descriptor.
SharedCSRLayout = Tuple[str, int, int, int]


class SharedCSRExport:
    """Parent-side owner of one shared-memory CSR block.

    The exporting process is the sole owner of the block's lifetime: it
    creates, (re)writes and eventually unlinks it.  Workers only ever attach
    read-only views (:class:`SharedCSRView`).
    """

    __slots__ = ("shm", "name", "num_vertices", "adjacency_len",
                 "generation", "_alive_offset")

    def __init__(self, csr: CSRGraph, generation: int) -> None:
        n = csr.num_vertices
        m2 = len(csr.adjacency)
        indptr_bytes = _INT_SIZE * (n + 1)
        adjacency_bytes = _INT_SIZE * m2
        size = max(1, indptr_bytes + adjacency_bytes + n)
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.name = self.shm.name
        self.num_vertices = n
        self.adjacency_len = m2
        self.generation = generation
        self._alive_offset = indptr_bytes + adjacency_bytes
        buf = self.shm.buf
        buf[0:indptr_bytes] = array("q", csr.indptr).tobytes()
        if m2:
            adjacency_payload = array("q", csr.adjacency).tobytes()
            buf[indptr_bytes:self._alive_offset] = adjacency_payload

    def layout(self) -> SharedCSRLayout:
        """Picklable attach descriptor for worker processes."""
        return (self.name, self.num_vertices, self.adjacency_len,
                self.generation)

    def write_alive(self, mask_bytes: bytes) -> None:
        """Overwrite the alive region (only between dispatches)."""
        if len(mask_bytes) != self.num_vertices:
            raise ValueError(
                f"alive mask has {len(mask_bytes)} bytes, expected "
                f"{self.num_vertices}"
            )
        if self.num_vertices:
            offset = self._alive_offset
            self.shm.buf[offset:offset + self.num_vertices] = mask_bytes

    def close(self) -> None:
        """Release the mapping and unlink the block (idempotent)."""
        shm, self.shm = self.shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class SharedCSRView:
    """Worker-side zero-copy view over an attached shared CSR block.

    Duck-types the slice of the :class:`~repro.graph.csr.CSRGraph` interface
    that :class:`~repro.traversal.array_bfs.ArrayBFS` touches —
    ``num_vertices``, ``indptr`` and ``adjacency`` — so one worker-local
    ``ArrayBFS`` scratch (visit marks stay private per process; sharing them
    would be a data race) can run the h-bounded traversals directly on the
    shared arrays.
    """

    __slots__ = ("shm", "indptr", "adjacency", "alive_region",
                 "num_vertices", "generation", "name", "_numpy_views")

    def __init__(self, layout: SharedCSRLayout) -> None:
        name, n, m2, generation = layout
        self.name = name
        self.num_vertices = n
        self.generation = generation
        # Attaching registers the name with the resource tracker a second
        # time, but pool workers share the exporting parent's tracker (the
        # fd is inherited under fork and spawn alike) and registrations are
        # a set, so the parent's unlink-time unregister stays balanced.  Do
        # NOT unregister here: that would strip the parent's registration
        # from the shared tracker.
        self.shm = shared_memory.SharedMemory(name=name)
        indptr_bytes = _INT_SIZE * (n + 1)
        adjacency_bytes = _INT_SIZE * m2
        buf = self.shm.buf
        self.indptr = buf[0:indptr_bytes].cast("q")
        adjacency_end = indptr_bytes + adjacency_bytes
        self.adjacency = buf[indptr_bytes:adjacency_end].cast("q")
        alive_offset = indptr_bytes + adjacency_bytes
        self.alive_region = buf[alive_offset:alive_offset + n]
        self._numpy_views = None

    def numpy_views(self):
        """``(indptr, adjacency, alive)`` as zero-copy NumPy views.

        ``np.frombuffer`` over the same shared-memory regions the
        memoryview casts expose — no copy, no extra IPC; the NumPy worker
        kernel (:meth:`repro.traversal.numpy_bfs.NumpyBFS.bulk`) traverses
        the shared block directly.  Cached per view; requires NumPy (the
        caller dispatches ``engine_kind="numpy"`` only when the parent
        resolved a NumPy engine, so the import is expected to succeed).
        """
        if self._numpy_views is None:
            import numpy as np

            self._numpy_views = (
                np.frombuffer(self.indptr, dtype=np.int64),
                np.frombuffer(self.adjacency, dtype=np.int64),
                np.frombuffer(self.alive_region, dtype=np.uint8),
            )
        return self._numpy_views

    def close(self) -> None:
        """Release the views, then detach from the block (idempotent)."""
        shm, self.shm = self.shm, None
        if shm is None:
            return
        # Drop the ndarray wrappers first (they pin the memoryviews), then
        # release the casts; SharedMemory.close() raises BufferError while
        # either is alive.
        self._numpy_views = None
        self.indptr.release()
        self.adjacency.release()
        self.alive_region.release()
        shm.close()

"""Persistent process pool over a shared-memory CSR export.

:class:`SharedMemoryExecutor` is the process-lifecycle layer of the parallel
subsystem: it owns one :class:`~concurrent.futures.ProcessPoolExecutor`
(spawned lazily, reused across bulk passes) and at most one live
:class:`~repro.parallel.shm.SharedCSRExport` at a time.  The division of
labor:

* :meth:`ensure_export` — version-stamped (re-)export: whenever the engine's
  CSR snapshot object changes (initial build, or a
  :meth:`~repro.core.backends.CSREngine.refresh` after graph mutation), the
  generation counter is bumped, a fresh block is exported and the previous
  one unlinked.  Workers notice the new name in the task descriptor and
  re-attach; stale attachments are dropped.
* :meth:`bulk_h_degrees` — one synchronous fan-out: write the alive region,
  cut the targets into degree-weighted chunks
  (:func:`~repro.core.parallel.chunk_plan`), submit ``(chunk, h,
  generation)`` descriptors, merge the returned ``(index, degree)`` pairs
  and per-task counters.
* :meth:`close` — teardown: shut the pool down and unlink the export.  Any
  error *or* ``KeyboardInterrupt`` inside a dispatch triggers the same
  teardown before the exception propagates, and a :mod:`weakref` finalizer
  backstops interpreter exit, so ``/dev/shm`` segments are never leaked.

``fork`` (the platform default on Linux) and ``spawn`` start methods both
work and produce identical results; ``spawn`` pays a per-worker interpreter
start-up plus re-import, ``fork`` only a copy-on-write fork.
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, Optional, Sequence

from repro.errors import ParameterError
from repro.graph.csr import CSRGraph
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.parallel.shm import FileCSRExport, SharedCSRExport
from repro.parallel.worker import run_chunk
from repro.core.parallel import chunk_plan
from repro.traversal.array_bfs import AliveMask

#: How many chunks each worker gets on average.  Oversubscription lets the
#: pool balance skewed degree distributions dynamically: a worker that drew
#: a heavy chunk keeps crunching while the others drain the queue.
DEFAULT_OVERSUBSCRIPTION = 4


def _shutdown_pool(pool: Any) -> None:
    """Shut a process pool down, tolerating one that already crashed.

    A pool whose workers died abruptly (``BrokenProcessPool``) can raise
    from ``shutdown()`` while flushing its management pipes; swallowing
    that here is what guarantees the shm export below it still gets
    unlinked — a crashed pool must never leak the shared block.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _teardown(state: Dict[str, Any]) -> None:
    """Shut the pool down and unlink the export (idempotent, finalizer-safe)."""
    pool = state.get("pool")
    state["pool"] = None
    if pool is not None:
        _shutdown_pool(pool)
    export = state.get("export")
    state["export"] = None
    if export is not None:
        export.close()


class SharedMemoryExecutor:
    """Persistent worker pool attached to a shared-memory CSR block."""

    def __init__(self, num_workers: int,
                 start_method: Optional[str] = None,
                 oversubscription: int = DEFAULT_OVERSUBSCRIPTION) -> None:
        if num_workers < 1:
            raise ParameterError("num_workers must be a positive integer")
        if oversubscription < 1:
            raise ParameterError("oversubscription must be >= 1")
        self.num_workers = num_workers
        self.start_method = start_method
        self._oversubscription = oversubscription
        self._mp_context = multiprocessing.get_context(start_method)
        # Pool and export live in a plain dict shared with the finalizer so
        # the finalizer never holds (and never needs) a reference to self.
        self._state: Dict[str, Any] = {"pool": None, "export": None}
        self._exported_for: Optional[CSRGraph] = None
        self._generation = 0
        self._alive_stamp = 0
        self._finalizer = weakref.finalize(self, _teardown, self._state)

    # -- lifecycle ------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or the error-path teardown) has run."""
        return not self._finalizer.alive

    @property
    def shm_name(self) -> Optional[str]:
        """Name of the live shared block (None before export / after close)."""
        export = self._state["export"]
        return export.name if export is not None else None

    def invalidate_export(self) -> None:
        """Unlink the current export; the next dispatch re-exports.

        O(1) plus the unlink — used by :meth:`CSREngine.refresh
        <repro.core.backends.CSREngine.refresh>` so a stream of graph
        mutations does not pay an O(n + m) array copy per refresh when no
        process dispatch happens in between.
        """
        export = self._state["export"]
        self._state["export"] = None
        self._exported_for = None
        if export is not None:
            export.close()

    def ensure_export(self, csr: CSRGraph) -> None:
        """Export ``csr`` unless it is already the live export.

        Identity-keyed: engines build a *new* ``CSRGraph`` object on every
        refresh, so object identity doubles as a version stamp.  The old
        block is unlinked only after the new one exists, and workers switch
        atomically because every task names its block explicitly.

        The export style follows the snapshot's storage tier: an in-RAM
        snapshot is copied into a shared-memory block
        (:class:`SharedCSRExport`); an mmap-backed snapshot already lives in
        a block file, so only its small alive mask gets a segment and
        workers map the file directly (:class:`FileCSRExport`).
        """
        if self.closed:
            raise ParameterError("the shared-memory executor is closed")
        if self._exported_for is csr:
            return
        previous = self._state["export"]
        self._generation += 1
        if csr.storage_kind == "mmap":
            export: Any = FileCSRExport(csr, self._generation)
        else:
            export = SharedCSRExport(csr, self._generation)
        self._state["export"] = export
        self._exported_for = csr
        if previous is not None:
            previous.close()

    def close(self) -> None:
        """Shut down the pool and unlink the export (idempotent)."""
        self._exported_for = None
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "SharedMemoryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------- #
    @property
    def oversubscription(self) -> int:
        """Average chunks per worker targeted by the chunk planner."""
        return self._oversubscription

    def _pool(self) -> ProcessPoolExecutor:
        pool = self._state["pool"]
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=self.num_workers,
                                       mp_context=self._mp_context)
            self._state["pool"] = pool
        return pool

    def rebuild_pool(self) -> None:
        """Discard the (typically broken) process pool, keeping the export.

        The next submit lazily spawns a fresh pool against the *same*
        shared block, so a supervisor can re-dispatch only the unfinished
        chunks without paying a re-export.
        """
        pool = self._state["pool"]
        self._state["pool"] = None
        if pool is not None:
            _shutdown_pool(pool)

    def prepare(self, csr: CSRGraph,
                alive: Optional[AliveMask] = None) -> tuple:
        """Export ``csr`` and write the alive region; return dispatch state.

        Returns ``(layout, use_alive, alive_stamp)`` — everything a task
        descriptor needs.  Factored out of :meth:`bulk_h_degrees` so a
        supervising wrapper can drive submission and retry itself.
        """
        self.ensure_export(csr)
        export = self._state["export"]
        use_alive = alive is not None
        if use_alive:
            export.write_alive(bytes(alive.mask))
            self._alive_stamp += 1
        return export.layout(), use_alive, self._alive_stamp

    def submit_chunk(self, layout: Any, chunk: Sequence[int], h: int,
                     use_alive: bool, alive_stamp: int,
                     engine_kind: str = "csr",
                     fault: Optional[tuple] = None) -> Any:
        """Submit one chunk to the pool, returning its future.

        ``fault`` is an optional injected-fault directive forwarded to the
        worker (chaos testing only; see :mod:`repro.resilience.faults`).
        """
        return self._pool().submit(run_chunk, layout, list(chunk), h,
                                   use_alive, alive_stamp, engine_kind,
                                   fault)

    def bulk_h_degrees(self, csr: CSRGraph, h: int,
                       targets: Iterable[int],
                       alive: Optional[AliveMask] = None,
                       counters: Counters = NULL_COUNTERS,
                       weights: Optional[Sequence[int]] = None,
                       engine_kind: str = "csr"
                       ) -> Dict[int, int]:
        """h-degree of every index in ``targets``, fanned over the pool.

        ``weights`` (typically the plain degree of each target) steers the
        chunk planner toward balanced per-chunk work on skewed graphs.  The
        dispatch is synchronous: the alive region is written before any task
        is submitted and no task outlives the call, so workers always read a
        consistent mask.  Any failure — a worker exception, a broken pool,
        ``KeyboardInterrupt`` — tears the executor down (pool shutdown +
        shm unlink) before propagating.

        ``engine_kind`` rides along in each task descriptor and selects the
        worker-side traversal kernel (``"csr"`` interpreted loop /
        ``"numpy"`` vectorized block kernel over ``np.frombuffer`` views of
        the same shared block) — see :func:`repro.parallel.worker.run_chunk`.
        """
        indices = list(targets)
        if not indices:
            return {}
        layout, use_alive, alive_stamp = self.prepare(csr, alive)
        chunks = chunk_plan(indices,
                            self.num_workers * self._oversubscription,
                            weights=weights)
        merged: Dict[int, int] = {}
        try:
            futures = [
                self.submit_chunk(layout, chunk, h, use_alive, alive_stamp,
                                  engine_kind)
                for chunk in chunks
            ]
            for future in futures:
                pairs, local = future.result()
                merged.update(pairs)
                if counters is not NULL_COUNTERS:
                    counters.merge(local)
        except BaseException:
            # Teardown before propagating so no /dev/shm segment outlives a
            # failed dispatch (worker exception or KeyboardInterrupt alike).
            self.close()
            raise
        return merged

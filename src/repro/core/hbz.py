"""h-BZ: the distance-generalized Batagelj–Zaveršnik baseline (Algorithm 1).

Peels vertices in increasing order of their h-degree.  Whenever a vertex is
removed, the h-degree of **every** vertex in its h-neighborhood is recomputed
with a fresh h-bounded BFS — this is exactly the cost that the lower/upper
bound algorithms (h-LB, h-LB+UB) avoid, and the reason the paper reports h-BZ
as one-to-two orders of magnitude slower.

The per-vertex bookkeeping (buckets + stored degrees) runs on the shared
:class:`~repro.runtime.peel.PeelState` protocol: flat arrays on the CSR
engine, dicts on the reference engine — selected by the execution context.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph
from repro.core.backends import Engine
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.context import ExecutionContext, scoped_context


def h_bz(graph: Graph, h: int,
         counters: Counters = NULL_COUNTERS,
         num_threads: Optional[int] = None,
         backend: Union[str, Engine] = "dict",
         executor: str = "thread",
         num_workers: Optional[int] = None,
         context: Optional[ExecutionContext] = None) -> CoreDecomposition:
    """Compute the (k,h)-core decomposition with the baseline h-BZ algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted input graph.
    h:
        Distance threshold (``h >= 1``; for ``h = 1`` this degenerates to the
        classic BZ peeling, although :func:`repro.core.core_decomposition`
        dispatches h = 1 to the specialized classic implementation).
    counters:
        Instrumentation sink (visits, h-degree recomputations, bucket moves).
    num_workers:
        Workers used for the initial h-degree computation (§4.6).
        ``num_threads`` is the deprecated legacy spelling.
    backend:
        ``"dict"`` (reference), ``"csr"`` (array backend), ``"auto"``, or a
        pre-built engine.  Both backends produce identical core numbers.
    executor:
        Scheduler for the initial bulk pass: ``"serial"``, ``"thread"``
        (GIL-bound) or ``"process"`` (shared-memory worker pool — the only
        one that scales on CPython).  All executors produce identical core
        numbers.
    context:
        Optional pre-built :class:`~repro.runtime.ExecutionContext`; when
        given it supersedes the keywords above and is **not** closed here.

    Returns
    -------
    CoreDecomposition
    """
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)

    with scoped_context(graph, context, backend=backend, executor=executor,
                        num_workers=num_workers, num_threads=num_threads,
                        counters=counters) as ctx:
        sink = ctx.sink(counters)
        engine = ctx.engine
        alive = engine.full_alive()
        core_index = ctx.make_core_map()
        removal_order: list = []
        if not alive:
            return CoreDecomposition(graph, h, {}, algorithm="h-BZ",
                                     removal_order=removal_order)

        # Lines 1-3: initial h-degrees and bucket initialization.
        degrees = ctx.bulk_h_degrees(h, targets=alive, alive=alive,
                                     counters=sink)
        state = ctx.make_peel_state(counters=sink)
        state.fill_exact(degrees.items())

        # Lines 4-11: peel in increasing order of (current) h-degree.
        k = 0
        while alive:
            vertex = state.pop(k)
            if vertex is None:
                k += 1
                continue
            core_index[vertex] = k
            removal_order.append(vertex)
            # The h-neighborhood is taken in the *current* alive graph, before
            # removing the vertex (Algorithm 1, line 8).
            neighborhood = engine.h_neighborhood(vertex, h, alive, sink)
            alive.discard(vertex)
            for u in neighborhood:
                new_degree = engine.h_degree(u, h, alive, sink)
                sink.count_hdegree()
                state.set_degree(u, new_degree)
                state.move_to(u, max(new_degree, k))

        return CoreDecomposition(graph, h, engine.to_labels(core_index),
                                 algorithm="h-BZ",
                                 removal_order=engine.labels_of(removal_order))

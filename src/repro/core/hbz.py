"""h-BZ: the distance-generalized Batagelj–Zaveršnik baseline (Algorithm 1).

Peels vertices in increasing order of their h-degree.  Whenever a vertex is
removed, the h-degree of **every** vertex in its h-neighborhood is recomputed
with a fresh h-bounded BFS — this is exactly the cost that the lower/upper
bound algorithms (h-LB, h-LB+UB) avoid, and the reason the paper reports h-BZ
as one-to-two orders of magnitude slower.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph
from repro.core.backends import Engine, resolve_engine
from repro.core.buckets import BucketQueue
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS


def h_bz(graph: Graph, h: int,
         counters: Counters = NULL_COUNTERS,
         num_threads: int = 1,
         backend: Union[str, Engine] = "dict",
         executor: str = "thread") -> CoreDecomposition:
    """Compute the (k,h)-core decomposition with the baseline h-BZ algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted input graph.
    h:
        Distance threshold (``h >= 1``; for ``h = 1`` this degenerates to the
        classic BZ peeling, although :func:`repro.core.core_decomposition`
        dispatches h = 1 to the specialized classic implementation).
    counters:
        Instrumentation sink (visits, h-degree recomputations, bucket moves).
    num_threads:
        Workers used for the initial h-degree computation (§4.6).
    backend:
        ``"dict"`` (reference), ``"csr"`` (array backend), ``"auto"``, or a
        pre-built engine.  Both backends produce identical core numbers.
    executor:
        Scheduler for the initial bulk pass: ``"serial"``, ``"thread"``
        (GIL-bound) or ``"process"`` (shared-memory worker pool — the only
        one that scales on CPython).  All executors produce identical core
        numbers.

    Returns
    -------
    CoreDecomposition
    """
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)

    engine = resolve_engine(graph, backend)
    owned = isinstance(backend, str)
    try:
        alive = engine.full_alive()
        core_index: Dict[object, int] = {}
        removal_order: list = []
        if not alive:
            return CoreDecomposition(graph, h, core_index, algorithm="h-BZ",
                                     removal_order=removal_order)

        # Lines 1-3: initial h-degrees and bucket initialization.
        degrees = engine.bulk_h_degrees(h, targets=alive, alive=alive,
                                        num_threads=num_threads,
                                        counters=counters, executor=executor)
        buckets = BucketQueue(counters)
        for v, d in degrees.items():
            buckets.insert(v, d)

        # Lines 4-11: peel in increasing order of (current) h-degree.
        k = 0
        while alive:
            if buckets.is_empty(k):
                k += 1
                continue
            vertex = buckets.pop_from(k)
            core_index[vertex] = k
            removal_order.append(vertex)
            # The h-neighborhood is taken in the *current* alive graph, before
            # removing the vertex (Algorithm 1, line 8).
            neighborhood = engine.h_neighborhood(vertex, h, alive, counters)
            alive.discard(vertex)
            for u in neighborhood:
                new_degree = engine.h_degree(u, h, alive, counters)
                counters.count_hdegree()
                degrees[u] = new_degree
                buckets.move(u, max(new_degree, k))

        return CoreDecomposition(graph, h, engine.to_labels(core_index),
                                 algorithm="h-BZ",
                                 removal_order=engine.labels_of(removal_order))
    finally:
        if owned:
            engine.close()

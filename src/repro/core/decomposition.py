"""Unified facade for computing (k,h)-core decompositions.

:func:`core_decomposition` is the main entry point of the library: it
dispatches to the classic Batagelj–Zaveršnik peeling for ``h = 1`` and to one
of the three paper algorithms (``h-BZ``, ``h-LB``, ``h-LB+UB``) for
``h > 1``.  It can also return a full :class:`~repro.instrumentation.RunReport`
with timing and work counters, which is what the experiment harness consumes.

Execution concerns (engine resolution, executor + worker pool, counters,
teardown) live in one :class:`~repro.runtime.ExecutionContext`; the
``backend=`` / ``executor=`` / ``num_workers=`` keywords are a thin
constructor for a call-scoped context, and callers who want to amortize an
engine or worker pool across runs pass a long-lived ``context=`` instead.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph.graph import Graph
from repro.core.backends import BACKENDS, Engine
from repro.core.parallel import _validate_executor
from repro.core.classic import classic_core_decomposition
from repro.core.hbz import h_bz
from repro.core.hlb import h_lb
from repro.core.hlbub import h_lb_ub
from repro.core.naive import naive_core_decomposition
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS, RunReport, Timer
from repro.runtime.context import ExecutionContext, scoped_context
from repro.runtime.workers import resolve_worker_count

#: Algorithms accepted by :func:`core_decomposition`.
ALGORITHMS = ("auto", "classic", "naive", "h-BZ", "h-LB", "h-LB+UB")

#: Heuristic used by ``algorithm="auto"``: below this many vertices the
#: simpler h-LB wins (partitioning overhead dominates), above it h-LB+UB.
_AUTO_SIZE_THRESHOLD = 2000


def core_decomposition(graph: Graph, h: int,
                       algorithm: str = "auto",
                       partition_size: int = 1,
                       num_threads: Optional[int] = None,
                       counters: Optional[Counters] = None,
                       backend: Union[str, Engine] = "auto",
                       executor: str = "thread",
                       num_workers: Optional[int] = None,
                       context: Optional[ExecutionContext] = None
                       ) -> CoreDecomposition:
    """Compute the distance-generalized core decomposition of ``graph``.

    Parameters
    ----------
    graph:
        Undirected, unweighted input graph.
    h:
        Distance threshold.  ``h = 1`` gives the classic core decomposition.
    algorithm:
        One of ``"auto"`` (pick a sensible algorithm), ``"classic"`` (h = 1
        only), ``"naive"`` (reference oracle, tiny graphs only), ``"h-BZ"``,
        ``"h-LB"``, or ``"h-LB+UB"``.
    partition_size:
        Parameter ``S`` of h-LB+UB (ignored by the other algorithms).
    num_workers:
        Worker count for the bulk h-degree computations (§4.6);
        ``num_threads`` is the deprecated legacy spelling and loses when
        both are given.
    counters:
        Optional instrumentation sink filled with visit/recompute counts.
    executor:
        Scheduler for the bulk h-degree passes: ``"serial"``, ``"thread"``
        (the legacy pool — correct, but GIL-bound on CPython) or
        ``"process"`` (shared-memory multiprocessing over CSR arrays, the
        path that actually scales; see :mod:`repro.parallel`).  All
        executors produce identical core numbers.
    backend:
        Graph backend for the generalized algorithms: ``"dict"`` (the
        reference dict-of-sets representation), ``"csr"`` (flat-array CSR
        snapshot with array-based h-bounded BFS — typically several times
        faster), ``"auto"`` (CSR for integer-friendly graphs, dict
        otherwise), or a pre-built engine from
        :func:`repro.core.backends.resolve_engine`.  Both backends return
        identical core numbers.  The ``"classic"`` and ``"naive"``
        algorithms always run on the dict reference path — ``classic`` is
        already a flat bucket peeling without any BFS, and ``naive`` exists
        purely as a correctness oracle.
    context:
        Optional pre-built :class:`~repro.runtime.ExecutionContext` that
        supersedes ``backend`` / ``executor`` / ``num_workers``.  The
        context (and any engine or worker pool it owns) is **not** closed
        here — the caller controls its lifetime, which is how repeated
        decompositions amortize a CSR snapshot or a process pool.

    Returns
    -------
    CoreDecomposition

    Examples
    --------
    >>> from repro.graph import complete_graph
    >>> decomposition = core_decomposition(complete_graph(5), h=2)
    >>> decomposition.degeneracy
    4
    """
    if algorithm not in ALGORITHMS:
        raise ParameterError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if isinstance(backend, str) and backend not in BACKENDS:
        raise ParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)
    _validate_executor(executor)
    if counters is not None:
        sink = counters
    elif context is not None and context.counters is not NULL_COUNTERS:
        sink = context.counters
    else:
        sink = Counters()

    if algorithm == "auto":
        if h == 1:
            algorithm = "classic"
        elif graph.num_vertices <= _AUTO_SIZE_THRESHOLD:
            algorithm = "h-LB"
        else:
            algorithm = "h-LB+UB"

    if algorithm == "classic":
        if h != 1:
            raise ParameterError("the classic algorithm only supports h = 1")
        return classic_core_decomposition(graph, counters=sink)
    if algorithm == "naive":
        return naive_core_decomposition(graph, h)
    # Resolve the execution context once, so "auto" makes a single
    # suitability scan and a CSR snapshot is built (at most) once per
    # decomposition.  Contexts resolved *here* are scoped here: any process
    # pool / shared-memory block their engine spun up is torn down before
    # returning.  Callers who want to amortize engine or pool across
    # decompositions pass a long-lived context (or a pre-built engine).
    with scoped_context(graph, context, backend=backend, executor=executor,
                        num_workers=num_workers, num_threads=num_threads,
                        counters=sink) as ctx:
        if algorithm == "h-BZ":
            return h_bz(graph, h, counters=sink, context=ctx)
        if algorithm == "h-LB":
            return h_lb(graph, h, counters=sink, context=ctx)
        return h_lb_ub(graph, h, partition_size=partition_size, counters=sink,
                       context=ctx)


def core_decomposition_with_report(graph: Graph, h: int,
                                   algorithm: str = "auto",
                                   dataset_name: str = "graph",
                                   partition_size: int = 1,
                                   num_threads: Optional[int] = None,
                                   backend: Union[str, Engine] = "auto",
                                   executor: str = "thread",
                                   num_workers: Optional[int] = None,
                                   context: Optional[ExecutionContext] = None
                                   ) -> RunReport:
    """Run :func:`core_decomposition` and return a timed, counted report.

    The experiment harness (Tables 3 and 5) is built on this wrapper.
    """
    counters = Counters()
    if context is not None:
        workers = context.num_workers
        executor_name = context.executor
        backend_name = context.backend_name
    else:
        workers = resolve_worker_count(num_workers, num_threads)
        executor_name = executor
        backend_name = backend if isinstance(backend, str) else backend.name
    timer = Timer()
    with timer:
        result = core_decomposition(graph, h, algorithm=algorithm,
                                    partition_size=partition_size,
                                    num_workers=workers,
                                    counters=counters,
                                    backend=backend,
                                    executor=executor,
                                    context=context)
    return RunReport(
        algorithm=result.algorithm,
        dataset=dataset_name,
        h=h,
        seconds=timer.elapsed,
        counters=counters,
        result=result,
        params={"partition_size": partition_size, "num_workers": workers,
                "executor": executor_name,
                "backend": backend_name},
    )

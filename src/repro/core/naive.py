"""Naive reference implementations.

These are *oracles*, deliberately simple and obviously correct, used by the
test suite (including the hypothesis property tests) to validate the three
fast algorithms.  They recompute every h-degree from scratch after each
removal, so they are quadratic-ish and must only be run on small graphs.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph, Vertex
from repro.core.result import CoreDecomposition
from repro.traversal.hneighborhood import all_h_degrees


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


def naive_kh_core(graph: Graph, k: int, h: int) -> Set[Vertex]:
    """Return the (k,h)-core by fixed-point deletion (Definition 2 verbatim).

    Repeatedly remove any vertex whose h-degree within the surviving induced
    subgraph is below ``k`` until none remains.
    """
    _validate_h(h)
    alive: Set[Vertex] = set(graph.vertices())
    changed = True
    while changed and alive:
        changed = False
        degrees = all_h_degrees(graph, h, alive=alive)
        to_remove = {v for v, d in degrees.items() if d < k}
        if to_remove:
            alive -= to_remove
            changed = True
    return alive


def naive_core_decomposition(graph: Graph, h: int) -> CoreDecomposition:
    """Compute the full (k,h)-core decomposition by repeated full recomputation.

    Standard min-degree peeling, recomputing *every* alive h-degree after each
    removal.  Obviously correct, unbearably slow — test oracle only.
    """
    _validate_h(h)
    alive: Set[Vertex] = set(graph.vertices())
    core_index: Dict[Vertex, int] = {}
    current_k = 0
    while alive:
        degrees = all_h_degrees(graph, h, alive=alive)
        min_vertex = min(degrees, key=lambda v: (degrees[v], repr(v)))
        current_k = max(current_k, degrees[min_vertex])
        core_index[min_vertex] = current_k
        alive.discard(min_vertex)
    return CoreDecomposition(graph, h, core_index, algorithm="naive")


def naive_core_index_by_membership(graph: Graph, h: int) -> Dict[Vertex, int]:
    """Compute core indices by testing (k,h)-core membership for every k.

    An even more direct oracle than :func:`naive_core_decomposition`: for
    every k from 0 upwards, compute the (k,h)-core by fixed point and record,
    for every vertex, the largest k whose core still contains it.
    """
    _validate_h(h)
    core_index: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    k = 1
    while True:
        members = naive_kh_core(graph, k, h)
        if not members:
            break
        for v in members:
            core_index[v] = k
        k += 1
    return core_index

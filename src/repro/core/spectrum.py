"""Core-index "spectrum": the (k,h)-core index of every vertex for a range of h.

The paper's concluding section (§7) suggests that the vector of core indices
across several distance thresholds — a *spectrum* of the vertex — is more
informative than any single index, and calls for algorithms that compute the
decompositions "for different values of h all at once".  This module provides
that facility:

* :func:`core_spectrum` computes the decomposition for every requested h,
  reusing work across thresholds: the core indices for ``h`` are valid lower
  bounds for ``h + 1`` (the h-degree only grows with h), so each successive
  decomposition is seeded with the previous result instead of starting from
  LB2 alone.
* :class:`VertexSpectrum` wraps the result with convenient per-vertex access
  and simple similarity queries (which vertices have the most similar
  engagement profile).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph.graph import Graph
from repro.core.backends import DictEngine
from repro.core.bounds import lower_bound_lb1, lower_bound_lb2
from repro.core.classic import classic_core_decomposition
from repro.core.peeling import core_decomp
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.peel import DictPeelState

Vertex = Hashable


class VertexSpectrum:
    """Per-vertex vector of core indices across distance thresholds."""

    def __init__(self, graph: Graph, h_values: Sequence[int],
                 decompositions: Dict[int, CoreDecomposition]) -> None:
        self.graph = graph
        self.h_values = tuple(h_values)
        self.decompositions = dict(decompositions)

    def vector(self, vertex: Vertex, normalized: bool = False) -> Tuple[float, ...]:
        """Return the spectrum of ``vertex``: one entry per h value.

        With ``normalized=True`` each entry is divided by the corresponding
        h-degeneracy, making vectors comparable across h.
        """
        values: List[float] = []
        for h in self.h_values:
            decomposition = self.decompositions[h]
            value = decomposition.core_index[vertex]
            if normalized:
                degeneracy = decomposition.degeneracy
                value = value / degeneracy if degeneracy else 0.0
            values.append(value)
        return tuple(values)

    def all_vectors(self, normalized: bool = False) -> Dict[Vertex, Tuple[float, ...]]:
        """Return the spectrum of every vertex."""
        return {v: self.vector(v, normalized=normalized) for v in self.graph.vertices()}

    def most_similar(self, vertex: Vertex, top: int = 5) -> List[Tuple[Vertex, float]]:
        """Return the ``top`` vertices with the closest normalized spectrum.

        Similarity is the negative Euclidean distance between normalized
        spectra; the vertex itself is excluded.
        """
        if top <= 0:
            raise ParameterError("top must be positive")
        reference = self.vector(vertex, normalized=True)
        scored: List[Tuple[Vertex, float]] = []
        for other in self.graph.vertices():
            if other == vertex:
                continue
            candidate = self.vector(other, normalized=True)
            distance = sum((a - b) ** 2 for a, b in zip(reference, candidate)) ** 0.5
            scored.append((other, distance))
        scored.sort(key=lambda item: (item[1], repr(item[0])))
        return scored[:top]

    def __getitem__(self, vertex: Vertex) -> Tuple[float, ...]:
        return self.vector(vertex)

    def __repr__(self) -> str:
        return (f"VertexSpectrum(h_values={self.h_values}, "
                f"|V|={self.graph.num_vertices})")


def _h_lb_with_seed(graph: Graph, h: int, seed_lower_bound: Dict[Vertex, int],
                    counters: Counters) -> CoreDecomposition:
    """Run the h-LB peeling with an externally supplied lower bound.

    The seed bound (typically the core indices for a smaller h) is combined
    with LB2; both are valid lower bounds, so the tighter of the two is used
    per vertex.
    """
    alive = set(graph.vertices())
    core_index: Dict[Vertex, int] = {}
    if not alive:
        return CoreDecomposition(graph, h, core_index, algorithm="h-LB(spectrum)")

    lb1 = lower_bound_lb1(graph, h, counters=counters)
    lb2 = lower_bound_lb2(graph, h, lb1=lb1, counters=counters)
    state = DictPeelState(counters)
    for v in alive:
        bound = max(lb2[v], seed_lower_bound.get(v, 0))
        state.insert(v, bound, lb=True)
    removal_order: List[Vertex] = []
    core_decomp(DictEngine(graph), h, kmin=0, kmax=len(graph), state=state,
                alive=alive, core_index=core_index, counters=counters,
                removal_order=removal_order)
    return CoreDecomposition(graph, h, core_index, algorithm="h-LB(spectrum)",
                             removal_order=removal_order)


def core_spectrum(graph: Graph, h_values: Optional[Iterable[int]] = None,
                  counters: Counters = NULL_COUNTERS) -> VertexSpectrum:
    """Compute the (k,h)-core decomposition for every h in ``h_values``.

    ``h_values`` defaults to ``(1, 2, 3, 4)`` (the range the paper suggests
    for the vertex "spectrum").  The thresholds are processed in increasing
    order and each run seeds the next one's lower bounds with the previous
    core indices, which is valid because ``core_h(v)`` is non-decreasing in
    ``h`` and saves a substantial share of the h-degree computations.
    """
    thresholds = sorted(set(h_values)) if h_values is not None else [1, 2, 3, 4]
    if not thresholds:
        raise ParameterError("at least one distance threshold is required")
    for h in thresholds:
        if not isinstance(h, int) or isinstance(h, bool) or h < 1:
            raise InvalidDistanceThresholdError(h)

    decompositions: Dict[int, CoreDecomposition] = {}
    previous_cores: Dict[Vertex, int] = {}
    for h in thresholds:
        if h == 1:
            decomposition = classic_core_decomposition(graph, counters=counters)
        else:
            decomposition = _h_lb_with_seed(graph, h, previous_cores, counters)
        decompositions[h] = decomposition
        previous_cores = decomposition.core_index
    return VertexSpectrum(graph, thresholds, decompositions)

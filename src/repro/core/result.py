"""Result object for (k,h)-core decompositions."""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.graph.graph import Graph
from repro.graph.views import SubgraphView

Vertex = Hashable


class CoreDecomposition:
    """The outcome of a (k,h)-core decomposition.

    Holds the core index ``core_h(v)`` for every vertex and offers the derived
    views the paper works with: the (k,h)-core as a vertex set or subgraph,
    the h-degeneracy ``Ĉ_h(G)`` (maximum core index), the number of distinct
    cores (Table 2), and the innermost core (used by the h-club wrapper and
    the landmark selection).

    Parameters
    ----------
    graph:
        The decomposed graph (kept by reference, not copied).
    h:
        The distance threshold used.
    core_index:
        Mapping ``vertex -> core index``; must cover every graph vertex.
    algorithm:
        Name of the algorithm that produced the result (for reports).
    """

    def __init__(self, graph: Graph, h: int, core_index: Dict[Vertex, int],
                 algorithm: str = "unknown",
                 removal_order: Optional[List[Vertex]] = None) -> None:
        missing = [v for v in graph.vertices() if v not in core_index]
        if missing:
            raise ValueError(
                f"core_index is missing {len(missing)} vertices (e.g. {missing[:3]!r})"
            )
        self.graph = graph
        self.h = h
        self.core_index = dict(core_index)
        self.algorithm = algorithm
        #: Order in which the peeling removed the vertices (a "smallest-last"
        #: degeneracy ordering), when the producing algorithm records it.
        #: h-BZ and h-LB do; h-LB+UB peels top-down so it does not.
        self.removal_order = list(removal_order) if removal_order is not None else None

    # ------------------------------------------------------------------ #
    # scalar summaries
    # ------------------------------------------------------------------ #
    @property
    def degeneracy(self) -> int:
        """The h-degeneracy ``Ĉ_h(G)``: the largest k with a non-empty (k,h)-core."""
        return max(self.core_index.values(), default=0)

    @property
    def max_core_index(self) -> int:
        """Alias of :attr:`degeneracy` (the paper uses both phrasings)."""
        return self.degeneracy

    @property
    def num_distinct_cores(self) -> int:
        """Number of distinct non-empty cores (the right-hand numbers of Table 2).

        Two cores C_k and C_{k+1} differ exactly when some vertex has core
        index k, so this equals the number of distinct positive core-index
        values (the 0-core equals V and is not counted as "distinct" unless
        some vertex has index 0, matching how the paper counts).
        """
        return len(set(self.core_index.values()))

    # ------------------------------------------------------------------ #
    # core views
    # ------------------------------------------------------------------ #
    def core(self, k: int) -> Set[Vertex]:
        """Return the vertex set of the (k,h)-core (may be empty)."""
        return {v for v, c in self.core_index.items() if c >= k}

    def core_subgraph(self, k: int) -> Graph:
        """Return the (k,h)-core as a standalone :class:`Graph`."""
        return self.graph.subgraph(self.core(k))

    def core_view(self, k: int) -> SubgraphView:
        """Return the (k,h)-core as a read-only view over the base graph."""
        return SubgraphView(self.graph, self.core(k))

    def innermost_core(self) -> Set[Vertex]:
        """Return the core of maximum index C_{k*} (empty iff the graph is empty)."""
        return self.core(self.degeneracy) if self.core_index else set()

    def shells(self) -> Dict[int, Set[Vertex]]:
        """Return ``{k: vertices with core index exactly k}`` (the k-shells)."""
        shells: Dict[int, Set[Vertex]] = {}
        for v, c in self.core_index.items():
            shells.setdefault(c, set()).add(v)
        return shells

    def core_sizes(self) -> Dict[int, int]:
        """Return ``{k: |C_k|}`` for k = 0 .. degeneracy (Figure 3's series)."""
        degeneracy = self.degeneracy
        sizes = {k: 0 for k in range(degeneracy + 1)}
        for c in self.core_index.values():
            for k in range(0, c + 1):
                sizes[k] += 1
        return sizes

    def vertices_with_core(self, k: int) -> List[Vertex]:
        """Return the vertices whose core index is exactly ``k``."""
        return [v for v, c in self.core_index.items() if c == k]

    def normalized_core_index(self) -> Dict[Vertex, float]:
        """Return ``core(v) / Ĉ_h(G)`` per vertex (0 when the degeneracy is 0)."""
        degeneracy = self.degeneracy
        if degeneracy == 0:
            return {v: 0.0 for v in self.core_index}
        return {v: c / degeneracy for v, c in self.core_index.items()}

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __getitem__(self, vertex: Vertex) -> int:
        return self.core_index[vertex]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoreDecomposition):
            return NotImplemented
        return self.h == other.h and self.core_index == other.core_index

    def __repr__(self) -> str:
        return (
            f"CoreDecomposition(h={self.h}, degeneracy={self.degeneracy}, "
            f"|V|={len(self.core_index)}, algorithm={self.algorithm!r})"
        )

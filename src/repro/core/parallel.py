"""Multi-threaded h-degree computation (§4.6 of the paper).

The paper parallelizes the bulk h-degree computations — the initial h-degree
pass and the per-removal neighbor updates — by handing disjoint batches of
h-bounded BFS traversals to a pool of threads.  We reproduce that structure
with :class:`concurrent.futures.ThreadPoolExecutor`.  On CPython the GIL
limits the achievable speed-up for pure-Python BFS, so the experiments run
single-threaded by default; the parallel code path exists, is correct (each
thread owns a private :class:`Counters` that is merged at the end), and is
exercised by the test suite.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.hneighborhood import h_degree


def _chunks(items: Sequence[Vertex], num_chunks: int) -> List[Sequence[Vertex]]:
    """Split ``items`` into at most ``num_chunks`` near-equal contiguous chunks."""
    if num_chunks <= 1 or len(items) <= 1:
        return [items]
    size = max(1, (len(items) + num_chunks - 1) // num_chunks)
    return [items[i:i + size] for i in range(0, len(items), size)]


def map_batches(targets: Sequence, num_threads: int, worker,
                counters: Counters = NULL_COUNTERS) -> Dict:
    """Fan ``targets`` out over a thread pool and merge the per-batch dicts.

    ``worker(batch, local_counters)`` must return a dict for its batch and
    record instrumentation only into its private ``local_counters``; the
    locals are merged into ``counters`` after all workers finish, so the
    reported totals are identical to a sequential run.  Shared by the dict
    path below and :meth:`repro.core.backends.CSREngine.bulk_h_degrees`
    (whose workers additionally need a private BFS scratch).
    """
    batches = _chunks(targets, num_threads)
    local_counters = [Counters() for _ in batches]
    merged: Dict = {}
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        futures = [
            pool.submit(worker, batch, local)
            for batch, local in zip(batches, local_counters)
        ]
        for future in futures:
            merged.update(future.result())
    if counters is not NULL_COUNTERS:
        for local in local_counters:
            counters.merge(local)
    return merged


def compute_h_degrees(graph: Graph, h: int,
                      vertices: Optional[Iterable[Vertex]] = None,
                      alive: Optional[Set[Vertex]] = None,
                      num_threads: int = 1,
                      counters: Counters = NULL_COUNTERS,
                      backend: str = "dict") -> Dict[Vertex, int]:
    """Compute the h-degree of every vertex in ``vertices`` (default: all alive).

    With ``num_threads > 1`` the per-vertex h-bounded BFS traversals are
    distributed over a thread pool; each worker accumulates into a private
    counter object that is merged into ``counters`` once all workers finish,
    so the reported totals are identical to the sequential run.

    With ``backend="csr"`` (or ``"auto"`` on an integer-friendly graph) the
    BFS traversals run on a one-shot CSR snapshot through the array backend;
    ``vertices``/``alive`` stay in label space and the result is keyed by the
    original vertices either way.
    """
    if backend not in ("dict",):
        # Imported lazily: backends.DictEngine delegates back to this module.
        from repro.core.backends import CSREngine, resolve_engine
        engine = resolve_engine(graph, backend)
        if isinstance(engine, CSREngine):
            targets = None if vertices is None else \
                [engine.handle_of(v) for v in vertices]
            alive_mask = None if alive is None else \
                engine.alive_subset(engine.handle_of(v) for v in alive)
            degrees = engine.bulk_h_degrees(h, targets=targets,
                                            alive=alive_mask,
                                            num_threads=num_threads,
                                            counters=counters)
            return engine.to_labels(degrees)

    if vertices is None:
        vertices = alive if alive is not None else graph.vertices()
    targets = list(vertices)

    if num_threads <= 1 or len(targets) < 2:
        result: Dict[Vertex, int] = {}
        for v in targets:
            result[v] = h_degree(graph, v, h, alive=alive, counters=counters)
            counters.count_hdegree()
        return result

    def worker(batch: Sequence[Vertex], local: Counters) -> Dict[Vertex, int]:
        out: Dict[Vertex, int] = {}
        for v in batch:
            out[v] = h_degree(graph, v, h, alive=alive, counters=local)
            local.count_hdegree()
        return out

    return map_batches(targets, num_threads, worker, counters)

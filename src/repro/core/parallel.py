"""Parallel h-degree computation (§4.6 of the paper): scheduling layer.

The paper parallelizes the bulk h-degree computations — the initial h-degree
pass and the per-removal neighbor updates — by handing disjoint batches of
h-bounded BFS traversals to a pool of workers.  This module is the
scheduler-agnostic dispatch for that fan-out:

* ``executor="serial"`` — one inline batch (the reference path).
* ``executor="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  On CPython the GIL serializes pure-Python BFS, so this path is correct but
  does not scale; it exists for the paper-faithful structure and for
  workloads that release the GIL.
* ``executor="process"`` — real cores.  The hot path
  (:meth:`repro.core.backends.CSREngine.bulk_h_degrees`) routes through the
  shared-memory engine in :mod:`repro.parallel` (CSR arrays exported once,
  persistent worker pool, no graph pickling per task);
  :func:`map_batches` additionally offers a generic process mode for
  arbitrary *picklable* workers, used by tests and one-off callers.

Chunking is exact and optionally weight-balanced (:func:`chunk_plan`): with
per-item weights (typically vertex degrees) chunks are packed
largest-first onto the currently lightest chunk, which keeps skewed degree
distributions from serializing the pass behind one heavy chunk.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ParameterError
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.workers import resolve_worker_count
from repro.traversal.hneighborhood import h_degree

#: Executor names accepted by the decomposition entry points.
EXECUTORS = ("serial", "thread", "process")


def _validate_executor(executor: str) -> None:
    if executor not in EXECUTORS:
        raise ParameterError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )


def _chunks(items: Sequence[Vertex], num_chunks: int) -> List[Sequence[Vertex]]:
    """Split ``items`` into exactly ``min(num_chunks, len(items))`` chunks.

    Chunks are contiguous, non-empty and their sizes differ by at most one.
    (An earlier version produced *more* than ``num_chunks`` chunks whenever
    ``len(items)`` was not divisible — harmless for threads, but every extra
    chunk is a round-trip on the process pool.)  A single chunk — possibly
    empty — is returned when ``num_chunks <= 1`` or there is at most one
    item, preserving the historical contract of :func:`map_batches`.
    """
    n = len(items)
    if num_chunks <= 1 or n <= 1:
        return [items]
    num_chunks = min(num_chunks, n)
    base, extra = divmod(n, num_chunks)
    chunks: List[Sequence[Vertex]] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def chunk_plan(items: Sequence, num_chunks: int,
               weights: Optional[Sequence[int]] = None) -> List[Sequence]:
    """Cut ``items`` into at most ``num_chunks`` balanced, non-empty chunks.

    Without ``weights`` this is the exact contiguous split of
    :func:`_chunks`.  With ``weights`` (``weights[i]`` belongs to
    ``items[i]``; typically the degree of the vertex, a cheap proxy for its
    h-BFS cost) items are assigned largest-first to the currently lightest
    chunk (LPT scheduling), so a handful of hubs cannot serialize a
    process-pool dispatch behind one overweight chunk.
    """
    n = len(items)
    if n == 0:
        return []
    if weights is None:
        return [chunk for chunk in _chunks(items, num_chunks) if len(chunk)]
    if len(weights) != n:
        raise ParameterError(
            f"chunk_plan got {n} items but {len(weights)} weights"
        )
    num_chunks = max(1, min(num_chunks, n))
    if num_chunks == 1:
        return [list(items)]
    chunks: List[List] = [[] for _ in range(num_chunks)]
    # (current load, chunk index) min-heap; ties broken by chunk index.
    heap: List[Tuple[int, int]] = [(0, index) for index in range(num_chunks)]
    order = sorted(range(n), key=lambda i: weights[i], reverse=True)
    for i in order:
        load, index = heapq.heappop(heap)
        chunks[index].append(items[i])
        heapq.heappush(heap, (load + weights[i], index))
    return [chunk for chunk in chunks if chunk]


def _run_batch_in_process(worker, batch) -> Tuple[Dict, Counters]:
    """Top-level trampoline for the generic process mode of map_batches.

    Runs in the worker process: gives ``worker`` a private :class:`Counters`
    (cross-process mutation of the caller's object is impossible) and ships
    both the batch result and the counters back for merging.
    """
    local = Counters()
    return worker(batch, local), local


def map_batches(targets: Sequence, num_workers: int, worker,
                counters: Counters = NULL_COUNTERS,
                executor: str = "thread",
                weights: Optional[Sequence[int]] = None) -> Dict:
    """Fan ``targets`` out over an executor and merge the per-batch dicts.

    ``worker(batch, local_counters)`` must return a dict for its batch and
    record instrumentation only into its private ``local_counters``; the
    locals are merged into ``counters`` after all workers finish, so the
    reported totals are identical to a sequential run.

    ``executor`` selects the scheduler: ``"serial"`` (one inline batch),
    ``"thread"`` (the in-process pool; closures welcome) or ``"process"``
    (a one-shot :class:`~concurrent.futures.ProcessPoolExecutor`; ``worker``
    must then be picklable — a module-level function or a
    :func:`functools.partial` over one).  The decomposition hot path does
    **not** use the generic process mode: pickling a closure over the graph
    per batch is exactly what the shared-memory engine
    (:class:`repro.parallel.SharedMemoryExecutor`, reached through
    :meth:`repro.core.backends.CSREngine.bulk_h_degrees`) exists to avoid.

    ``weights`` (optional, one per target) activates balanced chunking for
    skewed workloads — see :func:`chunk_plan`.
    """
    _validate_executor(executor)
    if executor == "serial" or num_workers <= 1 or len(targets) < 2:
        local = Counters()
        merged = dict(worker(targets, local))
        if counters is not NULL_COUNTERS:
            counters.merge(local)
        return merged

    batches = chunk_plan(targets, num_workers, weights=weights)
    merged = {}
    if executor == "process":
        with ProcessPoolExecutor(max_workers=num_workers) as pool:
            futures = [pool.submit(_run_batch_in_process, worker, batch)
                       for batch in batches]
            for future in futures:
                out, local = future.result()
                merged.update(out)
                if counters is not NULL_COUNTERS:
                    counters.merge(local)
        return merged

    local_counters = [Counters() for _ in batches]
    with ThreadPoolExecutor(max_workers=num_workers) as pool:
        futures = [
            pool.submit(worker, batch, local)
            for batch, local in zip(batches, local_counters)
        ]
        for future in futures:
            merged.update(future.result())
    if counters is not NULL_COUNTERS:
        for local in local_counters:
            counters.merge(local)
    return merged


def compute_h_degrees(graph: Graph, h: int,
                      vertices: Optional[Iterable[Vertex]] = None,
                      alive: Optional[Set[Vertex]] = None,
                      num_threads: Optional[int] = None,
                      counters: Counters = NULL_COUNTERS,
                      backend: object = "dict",
                      executor: str = "thread",
                      num_workers: Optional[int] = None) -> Dict[Vertex, int]:
    """Compute the h-degree of every vertex in ``vertices`` (default: all alive).

    With ``num_workers > 1`` (``num_threads`` is the deprecated legacy
    spelling) the per-vertex h-bounded BFS traversals are distributed over
    the selected ``executor`` (see :data:`EXECUTORS`); each worker
    accumulates into a private counter object that is merged into
    ``counters`` once all workers finish, so the reported totals are
    identical to the sequential run.

    With ``backend="csr"`` (or ``"auto"`` on an integer-friendly graph) the
    BFS traversals run on a one-shot CSR snapshot through the array backend;
    ``vertices``/``alive`` stay in label space and the result is keyed by the
    original vertices either way.  ``executor="process"`` always runs on a
    CSR snapshot (any hashable vertex type works — only the shared flat
    arrays can cross the process boundary without pickling the graph), and
    the snapshot plus its worker pool are torn down before returning unless
    the caller supplied a pre-built engine as ``backend``.  Consequence:
    each ``backend="dict"`` process call pays a full pool spin-up — callers
    with repeated bulk passes (the decomposition algorithms do this through
    their resolved engine) should pass a :class:`CSREngine
    <repro.core.backends.CSREngine>` to amortize it.
    """
    _validate_executor(executor)
    workers = resolve_worker_count(num_workers, num_threads)
    want_process = executor == "process" and workers > 1
    if backend not in ("dict",) or want_process:
        # Imported lazily: backends.DictEngine delegates back to this module.
        from repro.core.backends import CSREngine, resolve_engine
        owned = isinstance(backend, str)
        if want_process and backend in ("dict",):
            # Straight to the CSR snapshot — building the DictEngine only
            # to discard it would be wasted work.
            engine = CSREngine(graph)
        else:
            engine = resolve_engine(graph, backend)
            if want_process and not isinstance(engine, CSREngine):
                engine = CSREngine(graph)
                owned = True
        if isinstance(engine, CSREngine):
            try:
                targets = None if vertices is None else \
                    [engine.handle_of(v) for v in vertices]
                alive_mask = None if alive is None else \
                    engine.alive_subset(engine.handle_of(v) for v in alive)
                degrees = engine.bulk_h_degrees(h, targets=targets,
                                                alive=alive_mask,
                                                num_workers=workers,
                                                counters=counters,
                                                executor=executor)
                return engine.to_labels(degrees)
            finally:
                if owned:
                    engine.close()

    if vertices is None:
        vertices = alive if alive is not None else graph.vertices()
    targets = list(vertices)

    if workers <= 1 or len(targets) < 2 or executor == "serial":
        result: Dict[Vertex, int] = {}
        for v in targets:
            result[v] = h_degree(graph, v, h, alive=alive, counters=counters)
            counters.count_hdegree()
        return result

    def worker(batch: Sequence[Vertex], local: Counters) -> Dict[Vertex, int]:
        out: Dict[Vertex, int] = {}
        for v in batch:
            out[v] = h_degree(graph, v, h, alive=alive, counters=local)
            local.count_hdegree()
        return out

    return map_batches(targets, workers, worker, counters,
                       executor="thread")

"""h-LB: lower-bound-driven (k,h)-core decomposition (Algorithm 2).

The baseline h-BZ recomputes the h-degree of every h-neighbor each time a
vertex is removed.  h-LB avoids most of those recomputations: each vertex is
initially bucketed at the lower bound ``LB2(v) <= core(v)`` and its true
h-degree is computed only once the peeling index has reached that bound; up
to that point, removals of its neighbors require no work at all.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph
from repro.core.backends import Engine
from repro.core.bounds import engine_lb1, engine_lb2
from repro.core.peeling import core_decomp
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.context import ExecutionContext, scoped_context


def h_lb(graph: Graph, h: int,
         counters: Counters = NULL_COUNTERS,
         num_threads: Optional[int] = None,
         use_lb1_only: bool = False,
         backend: Union[str, Engine] = "dict",
         executor: str = "thread",
         num_workers: Optional[int] = None,
         context: Optional[ExecutionContext] = None) -> CoreDecomposition:
    """Compute the (k,h)-core decomposition with the h-LB algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted input graph.
    h:
        Distance threshold (h >= 1).
    counters:
        Instrumentation sink.
    num_workers:
        Workers for the initial bound computation (kept for API symmetry; the
        LB1/LB2 pass is cheap compared to the peeling).  ``num_threads`` is
        the deprecated legacy spelling.
    executor:
        Scheduler name, kept for API symmetry with h-BZ and h-LB+UB (h-LB
        has no bulk h-degree pass: LB1 for h in {2, 3} is the plain degree
        and the peeling itself is inherently sequential).
    use_lb1_only:
        If True, bucket vertices by LB1 instead of LB2.  This reproduces the
        "LB1" column of the paper's bound-ablation experiment (Table 5); the
        default (LB2) is the algorithm as published.
    backend:
        ``"dict"`` (reference), ``"csr"`` (array backend), ``"auto"``, or a
        pre-built engine.  Both backends produce identical core numbers.
    context:
        Optional pre-built :class:`~repro.runtime.ExecutionContext`; when
        given it supersedes the keywords above and is **not** closed here.

    Returns
    -------
    CoreDecomposition
    """
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)

    with scoped_context(graph, context, backend=backend, executor=executor,
                        num_workers=num_workers, num_threads=num_threads,
                        counters=counters) as ctx:
        sink = ctx.sink(counters)
        engine = ctx.engine
        alive = engine.full_alive()
        algorithm = "h-LB(LB1)" if use_lb1_only else "h-LB"
        if not alive:
            return CoreDecomposition(graph, h, {}, algorithm=algorithm)

        lb1 = engine_lb1(engine, h, counters=sink)
        bounds = lb1 if use_lb1_only else engine_lb2(engine, h, lb1=lb1,
                                                     counters=sink)

        state = ctx.make_peel_state(counters=sink)
        state.fill_lb((v, bounds[v]) for v in alive)

        # kmin = 0 so that vertices with h-degree 0 receive core index 0 (the
        # paper's pseudocode starts at kmin = 1, leaving isolated vertices
        # implicitly at 0; making it explicit keeps the result object total).
        core_index = ctx.make_core_map()
        removal_order: list = []
        core_decomp(engine, h, kmin=0, kmax=engine.num_nodes, state=state,
                    alive=alive, core_index=core_index, counters=sink,
                    removal_order=removal_order)

        return CoreDecomposition(graph, h, engine.to_labels(core_index),
                                 algorithm=algorithm,
                                 removal_order=engine.labels_of(removal_order))

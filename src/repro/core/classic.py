"""Classic k-core decomposition (h = 1), Batagelj–Zaveršnik peeling.

The (k,1)-core is exactly the classic k-core, so for h = 1 the library
dispatches to this specialized linear-time peeling instead of running the
h-generalized machinery.  It is also used on the materialized h-power graph
to compute the upper bound of §4.4 in tests (the production upper bound in
:mod:`repro.core.bounds` avoids materializing the power graph).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.graph.graph import Graph, Vertex
from repro.core.buckets import BucketQueue
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS


def classic_core_decomposition(graph: Graph,
                               counters: Counters = NULL_COUNTERS,
                               alive: Optional[Set[Vertex]] = None
                               ) -> CoreDecomposition:
    """Compute the classic k-core decomposition by bucket peeling.

    Runs in O(|V| + |E|) time.  If ``alive`` is given the decomposition is of
    the induced subgraph (but the result still reports a core index for every
    graph vertex only if ``alive`` covers them; normally leave it None).
    """
    universe: Set[Vertex] = set(alive) if alive is not None else set(graph.vertices())
    degrees: Dict[Vertex, int] = {
        v: len(graph.neighbors(v) & universe) if alive is not None else graph.degree(v)
        for v in universe
    }
    buckets = BucketQueue(counters)
    for v, d in degrees.items():
        buckets.insert(v, d)

    core_index: Dict[Vertex, int] = {}
    removal_order: list = []
    remaining = set(universe)
    k = 0
    max_degree = max(degrees.values(), default=0)
    while len(core_index) < len(universe):
        while buckets.is_empty(k) and k <= max_degree:
            k += 1
        vertex = buckets.pop_from(k)
        if vertex is None:
            break
        core_index[vertex] = k
        removal_order.append(vertex)
        remaining.discard(vertex)
        for u in graph.neighbors(vertex):
            if u in remaining:
                degrees[u] -= 1
                buckets.move(u, max(degrees[u], k))

    result_graph = graph if alive is None else graph.subgraph(universe)
    return CoreDecomposition(result_graph, 1, core_index, algorithm="classic-BZ",
                             removal_order=removal_order)


def classic_core_indices(graph: Graph) -> Dict[Vertex, int]:
    """Convenience wrapper returning just the ``vertex -> core index`` map."""
    return classic_core_decomposition(graph).core_index

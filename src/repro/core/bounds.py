"""Lower and upper bounds on the (k,h)-core index (§4.2, §4.4, §4.5).

* ``LB1(v) = deg^{⌊h/2⌋}(v)`` (Observation 1): every vertex in the
  ⌊h/2⌋-neighborhood of ``v`` is within distance h of every other, so they
  form a mutually supporting group.
* ``LB2(v) = max{LB1(u) : d(u,v) ≤ ⌈h/2⌉} ∪ {LB1(v)}`` (Observation 2).
* ``UB(v)``: the classic core index of ``v`` in the (implicit) h-power graph
  ``G^h`` (Algorithm 5).  The power graph is never materialized: each time a
  vertex is popped its h-neighborhood in the *original* graph is recomputed
  and the surviving neighbors' estimated degrees are decremented by one.
* ``ImproveLB`` (Algorithm 6): within a candidate partition ``V[k]``, the
  minimum h-degree is itself a lower bound for every member (Property 3), and
  vertices that certainly cannot reach core index ``k`` are cleaned away.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph, Vertex
from repro.core.buckets import BucketQueue
from repro.core.parallel import compute_h_degrees
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.hneighborhood import h_degree, h_neighborhood


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


# --------------------------------------------------------------------- #
# lower bounds
# --------------------------------------------------------------------- #
def lower_bound_lb1(graph: Graph, h: int,
                    vertices: Optional[Iterable[Vertex]] = None,
                    counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Return ``LB1(v) = deg^{⌊h/2⌋}_G(v)`` for every vertex (Observation 1).

    For ``h`` in {2, 3} the half-radius is 1 and LB1 is just the ordinary
    degree, which needs no BFS at all.
    """
    _validate_h(h)
    half = h // 2
    targets = list(vertices) if vertices is not None else list(graph.vertices())
    if half == 0:
        # h = 1: the half-neighborhood is empty, so the only safe cheap lower
        # bound is 0 (the classic decomposition never uses LB1 anyway).
        return {v: 0 for v in targets}
    if half == 1:
        return {v: graph.degree(v) for v in targets}
    return {
        v: h_degree(graph, v, half, counters=counters)
        for v in targets
    }


def lower_bound_lb2(graph: Graph, h: int,
                    lb1: Optional[Dict[Vertex, int]] = None,
                    counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Return ``LB2(v)`` for every vertex (Observation 2).

    ``LB2(v)`` is the maximum LB1 value over the ⌈h/2⌉-neighborhood of ``v``
    (including ``v`` itself), which is still a valid lower bound because every
    ⌊h/2⌋-neighbor of a ⌈h/2⌉-neighbor of ``v`` is within distance ``h`` of
    ``v``.
    """
    _validate_h(h)
    if lb1 is None:
        lb1 = lower_bound_lb1(graph, h, counters=counters)
    half_up = (h + 1) // 2
    lb2: Dict[Vertex, int] = {}
    for v in graph.vertices():
        best = lb1[v]
        for u in h_neighborhood(graph, v, half_up, counters=counters):
            if lb1[u] > best:
                best = lb1[u]
        lb2[v] = best
    return lb2


# --------------------------------------------------------------------- #
# upper bound (Algorithm 5)
# --------------------------------------------------------------------- #
def upper_bound(graph: Graph, h: int,
                initial_h_degrees: Optional[Dict[Vertex, int]] = None,
                counters: Counters = NULL_COUNTERS,
                num_threads: int = 1) -> Dict[Vertex, int]:
    """Return ``UB(v)``: the classic core index of ``v`` in the h-power graph.

    Implements Algorithm 5.  The power graph is kept implicit: when a vertex
    is popped, its h-neighborhood is recomputed in the **original** graph
    (power-graph adjacency is defined by original distances), and the
    estimated degree of every still-unprocessed neighbor is decreased by one.
    Because removing a vertex can reduce a true h-degree by more than one,
    the value obtained is an upper bound of the (k,h)-core index.

    Parameters
    ----------
    initial_h_degrees:
        Optional precomputed ``deg^h_G(v)`` map; when the caller (h-LB+UB)
        already computed it, passing it here avoids a second full pass.
    """
    _validate_h(h)
    vertices = set(graph.vertices())
    if not vertices:
        return {}
    if initial_h_degrees is None:
        initial_h_degrees = compute_h_degrees(graph, h, vertices=vertices,
                                              num_threads=num_threads,
                                              counters=counters)
    estimate: Dict[Vertex, int] = dict(initial_h_degrees)
    buckets = BucketQueue(counters)
    for v, d in estimate.items():
        buckets.insert(v, d)

    ub: Dict[Vertex, int] = {}
    unprocessed = set(vertices)
    k = 0
    while unprocessed:
        if buckets.is_empty(k):
            k += 1
            continue
        vertex = buckets.pop_from(k)
        ub[vertex] = k
        unprocessed.discard(vertex)
        # Power-graph adjacency = h-neighborhood in the original graph.
        for u in h_neighborhood(graph, vertex, h, counters=counters):
            if u in unprocessed:
                estimate[u] -= 1
                counters.record_decrement()
                buckets.move(u, max(estimate[u], k))
    return ub


# --------------------------------------------------------------------- #
# ImproveLB (Algorithm 6)
# --------------------------------------------------------------------- #
def improve_lb(graph: Graph, h: int, candidate: Set[Vertex], k: int,
               counters: Counters = NULL_COUNTERS,
               num_threads: int = 1) -> Tuple[Set[Vertex], int]:
    """Clean ``candidate`` = V[k] and return ``(surviving vertices, min h-degree)``.

    Implements Algorithm 6.  The minimum h-degree over the candidate set is a
    lower bound for the core index of every member (Property 3); the caller
    combines it with LB2 to obtain LB3.  Vertices whose (decrement-estimated)
    h-degree inside the candidate subgraph falls below ``k`` certainly do not
    belong to any core of index ≥ k and are removed, often emptying the
    partition entirely when it contains no core.
    """
    _validate_h(h)
    alive = set(candidate)
    if not alive:
        return alive, 0
    degrees = compute_h_degrees(graph, h, vertices=alive, alive=alive,
                                num_threads=num_threads, counters=counters)
    min_degree = min(degrees.values())
    pending = {v for v, d in degrees.items() if d < k}
    while pending:
        vertex = pending.pop()
        if vertex not in alive:
            continue
        neighborhood = h_neighborhood(graph, vertex, h, alive=alive,
                                      counters=counters)
        alive.discard(vertex)
        for u in neighborhood:
            if u in alive:
                degrees[u] -= 1
                counters.record_decrement()
                if degrees[u] < k:
                    pending.add(u)
    return alive, min_degree

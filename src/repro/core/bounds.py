"""Lower and upper bounds on the (k,h)-core index (§4.2, §4.4, §4.5).

* ``LB1(v) = deg^{⌊h/2⌋}(v)`` (Observation 1): every vertex in the
  ⌊h/2⌋-neighborhood of ``v`` is within distance h of every other, so they
  form a mutually supporting group.
* ``LB2(v) = max{LB1(u) : d(u,v) ≤ ⌈h/2⌉} ∪ {LB1(v)}`` (Observation 2).
* ``UB(v)``: the classic core index of ``v`` in the (implicit) h-power graph
  ``G^h`` (Algorithm 5).  The power graph is never materialized: each time a
  vertex is popped its h-neighborhood in the *original* graph is recomputed
  and the surviving neighbors' estimated degrees are decremented by one.
  The peeling drives the shared :class:`~repro.runtime.peel.PeelState`
  (flat arrays on the CSR engine — the inner decrement loop walks the BFS
  scratch buffer directly, with no per-neighbor list materialized).
* ``ImproveLB`` (Algorithm 6): within a candidate partition ``V[k]``, the
  minimum h-degree is itself a lower bound for every member (Property 3), and
  vertices that certainly cannot reach core index ``k`` are cleaned away.

Each bound exists in two layers: an ``engine_*`` function written against the
backend-engine API (handle space; used by h-LB and h-LB+UB so the bounds run
on whichever backend the caller selected) and a public label-space wrapper
with the historical ``graph``-first signature (used by tests and the
bound-quality experiments).  For the dict engine handles *are* the vertex
labels, so the wrappers delegate without any translation cost.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph, Vertex
from repro.core.backends import CSREngine, DictEngine, Engine
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.peel import ArrayPeelState, make_peel_state
from repro.runtime.workers import resolve_worker_count

Handle = Hashable


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


# --------------------------------------------------------------------- #
# lower bounds
# --------------------------------------------------------------------- #
def engine_lb1(engine: Engine, h: int,
               targets: Optional[Iterable[Handle]] = None,
               counters: Counters = NULL_COUNTERS) -> Dict[Handle, int]:
    """``LB1(v) = deg^{⌊h/2⌋}(v)`` per handle (Observation 1)."""
    _validate_h(h)
    half = h // 2
    handles = list(targets) if targets is not None else list(engine.nodes())
    if half == 0:
        # h = 1: the half-neighborhood is empty, so the only safe cheap lower
        # bound is 0 (the classic decomposition never uses LB1 anyway).
        return {v: 0 for v in handles}
    if half == 1:
        return {v: engine.degree(v) for v in handles}
    return {
        v: engine.h_degree(v, half, None, counters)
        for v in handles
    }


def engine_lb2(engine: Engine, h: int,
               lb1: Optional[Dict[Handle, int]] = None,
               counters: Counters = NULL_COUNTERS) -> Dict[Handle, int]:
    """``LB2(v)`` per handle (Observation 2)."""
    _validate_h(h)
    if lb1 is None:
        lb1 = engine_lb1(engine, h, counters=counters)
    half_up = (h + 1) // 2
    lb2: Dict[Handle, int] = {}
    for v in engine.nodes():
        best = lb1[v]
        for u in engine.h_neighborhood(v, half_up, None, counters):
            if lb1[u] > best:
                best = lb1[u]
        lb2[v] = best
    return lb2


def lower_bound_lb1(graph: Graph, h: int,
                    vertices: Optional[Iterable[Vertex]] = None,
                    counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Return ``LB1(v) = deg^{⌊h/2⌋}_G(v)`` for every vertex (Observation 1).

    For ``h`` in {2, 3} the half-radius is 1 and LB1 is just the ordinary
    degree, which needs no BFS at all.
    """
    return engine_lb1(DictEngine(graph), h, targets=vertices, counters=counters)


def lower_bound_lb2(graph: Graph, h: int,
                    lb1: Optional[Dict[Vertex, int]] = None,
                    counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Return ``LB2(v)`` for every vertex (Observation 2).

    ``LB2(v)`` is the maximum LB1 value over the ⌈h/2⌉-neighborhood of ``v``
    (including ``v`` itself), which is still a valid lower bound because every
    ⌊h/2⌋-neighbor of a ⌈h/2⌉-neighbor of ``v`` is within distance ``h`` of
    ``v``.
    """
    return engine_lb2(DictEngine(graph), h, lb1=lb1, counters=counters)


# --------------------------------------------------------------------- #
# upper bound (Algorithm 5)
# --------------------------------------------------------------------- #
def engine_upper_bound(engine: Engine, h: int,
                       initial_h_degrees: Optional[Dict[Handle, int]] = None,
                       counters: Counters = NULL_COUNTERS,
                       num_workers: Optional[int] = None,
                       executor: str = "thread",
                       num_threads: Optional[int] = None,
                       peel: str = "auto") -> Dict[Handle, int]:
    """``UB(v)`` per handle: classic core index in the implicit h-power graph."""
    _validate_h(h)
    workers = resolve_worker_count(num_workers, num_threads)
    handles = list(engine.nodes())
    if not handles:
        return {}
    if initial_h_degrees is None:
        initial_h_degrees = engine.bulk_h_degrees(h, targets=handles,
                                                  num_workers=workers,
                                                  counters=counters,
                                                  executor=executor)
    state = make_peel_state(engine, counters, peel=peel)
    state.fill_exact((v, initial_h_degrees[v]) for v in handles)

    ub: Dict[Handle, int] = {}
    remaining = len(handles)
    k = 0
    if isinstance(state, ArrayPeelState) and isinstance(engine, CSREngine):
        # Array fast path: the inner loop only decrements (no nested BFS),
        # so it can walk the scratch's order buffer in place — zero copies —
        # with the bucket pop/move inlined on local-bound arrays and the
        # decrement/move counters flushed in batches (identical totals).
        scratch = engine.scratch
        run = scratch.run
        heads = state.heads
        nxt = state.nxt
        prv = state.prv
        key_of = state.key_of_
        degrees = state.degrees
        moves = 0
        decrements = 0
        while remaining:
            vertex = heads[k]
            if vertex < 0:
                k += 1
                continue
            follower = nxt[vertex]
            heads[k] = follower
            if follower >= 0:
                prv[follower] = -1
            key_of[vertex] = -1
            ub[vertex] = k
            remaining -= 1
            # Power-graph adjacency = h-neighborhood in the original graph.
            run(vertex, h, None, counters)
            order = scratch.order
            for index in range(1, len(order)):
                u = order[index]
                current = key_of[u]
                if current < 0:
                    continue
                degree = degrees[u] - 1
                degrees[u] = degree
                decrements += 1
                key = degree if degree > k else k
                if current == key:
                    continue
                before = prv[u]
                after = nxt[u]
                if before >= 0:
                    nxt[before] = after
                else:
                    heads[current] = after
                if after >= 0:
                    prv[after] = before
                head = heads[key]
                nxt[u] = head
                prv[u] = -1
                if head >= 0:
                    prv[head] = u
                heads[key] = u
                key_of[u] = key
                moves += 1
        if decrements:
            counters.record_decrements(decrements)
        if moves:
            counters.record_bucket_moves(moves)
        state._count = 0
        return ub

    while remaining:
        vertex = state.pop(k)
        if vertex is None:
            k += 1
            continue
        ub[vertex] = k
        remaining -= 1
        # Power-graph adjacency = h-neighborhood in the original graph.
        for u in engine.h_neighborhood(vertex, h, None, counters):
            if u in state:
                degree = state.decrement(u)
                counters.record_decrement()
                state.move_to(u, max(degree, k))
    return ub


def upper_bound(graph: Graph, h: int,
                initial_h_degrees: Optional[Dict[Vertex, int]] = None,
                counters: Counters = NULL_COUNTERS,
                num_workers: Optional[int] = None,
                executor: str = "thread",
                num_threads: Optional[int] = None) -> Dict[Vertex, int]:
    """Return ``UB(v)``: the classic core index of ``v`` in the h-power graph.

    Implements Algorithm 5.  The power graph is kept implicit: when a vertex
    is popped, its h-neighborhood is recomputed in the **original** graph
    (power-graph adjacency is defined by original distances), and the
    estimated degree of every still-unprocessed neighbor is decreased by one.
    Because removing a vertex can reduce a true h-degree by more than one,
    the value obtained is an upper bound of the (k,h)-core index.

    Parameters
    ----------
    initial_h_degrees:
        Optional precomputed ``deg^h_G(v)`` map; when the caller (h-LB+UB)
        already computed it, passing it here avoids a second full pass.
    """
    return engine_upper_bound(DictEngine(graph), h,
                              initial_h_degrees=initial_h_degrees,
                              counters=counters, num_workers=num_workers,
                              executor=executor, num_threads=num_threads)


# --------------------------------------------------------------------- #
# ImproveLB (Algorithm 6)
# --------------------------------------------------------------------- #
def engine_improve_lb(engine: Engine, h: int, candidate: Iterable[Handle],
                      k: int,
                      counters: Counters = NULL_COUNTERS,
                      num_workers: Optional[int] = None,
                      executor: str = "thread",
                      num_threads: Optional[int] = None):
    """Clean ``candidate`` = V[k]; return ``(alive set, min h-degree)``.

    The returned alive set uses the engine's native alive type (a Python
    ``set`` for the dict engine, an :class:`~repro.core.backends.AliveMask`
    for CSR) so the caller can hand it straight to :func:`core_decomp`.
    """
    _validate_h(h)
    workers = resolve_worker_count(num_workers, num_threads)
    alive = engine.alive_subset(candidate)
    if not alive:
        return alive, 0
    degrees = engine.bulk_h_degrees(h, targets=alive, alive=alive,
                                    num_workers=workers, counters=counters,
                                    executor=executor)
    min_degree = min(degrees.values())
    pending = {v for v, d in degrees.items() if d < k}
    while pending:
        vertex = pending.pop()
        if vertex not in alive:
            continue
        neighborhood = engine.h_neighborhood(vertex, h, alive, counters)
        alive.discard(vertex)
        for u in neighborhood:
            if u in alive:
                degrees[u] -= 1
                counters.record_decrement()
                if degrees[u] < k:
                    pending.add(u)
    return alive, min_degree


def improve_lb(graph: Graph, h: int, candidate: Set[Vertex], k: int,
               counters: Counters = NULL_COUNTERS,
               num_workers: Optional[int] = None,
               executor: str = "thread",
               num_threads: Optional[int] = None) -> Tuple[Set[Vertex], int]:
    """Clean ``candidate`` = V[k] and return ``(surviving vertices, min h-degree)``.

    Implements Algorithm 6.  The minimum h-degree over the candidate set is a
    lower bound for the core index of every member (Property 3); the caller
    combines it with LB2 to obtain LB3.  Vertices whose (decrement-estimated)
    h-degree inside the candidate subgraph falls below ``k`` certainly do not
    belong to any core of index ≥ k and are removed, often emptying the
    partition entirely when it contains no core.
    """
    return engine_improve_lb(DictEngine(graph), h, candidate, k,
                             counters=counters, num_workers=num_workers,
                             executor=executor, num_threads=num_threads)

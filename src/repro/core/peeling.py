"""The shared CoreDecomp peeling routine (Algorithm 3).

Both h-LB (over the whole graph) and h-LB+UB (per partition) drive their
peeling through :func:`core_decomp`.  The routine maintains, per vertex,
either a *lower bound* on its core index (``set_lb`` is True — the stored
bucket key is only a lower bound and the true h-degree has not been computed
yet for the current vertex set) or its *exact* current h-degree (``set_lb``
is False).  Deferring the first exact computation until the bucket index
reaches the lower bound is what saves the bulk of the h-bounded BFS
traversals compared to the baseline h-BZ.

The routine is written against the backend-engine API
(:mod:`repro.core.backends`): vertices are opaque *handles* (original vertex
objects for the dict engine, integer indices for the CSR engine) and
``alive`` is whatever alive-set type the engine produced.  Callers translate
handles back to vertex labels when assembling the final result.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.backends import Engine
from repro.core.buckets import BucketQueue
from repro.instrumentation import Counters, NULL_COUNTERS

Handle = object


def core_decomp(engine: Engine, h: int, kmin: int, kmax: int,
                buckets: BucketQueue,
                set_lb: Dict[Handle, bool],
                alive,
                stored_degree: Dict[Handle, int],
                core_index: Dict[Handle, int],
                counters: Counters = NULL_COUNTERS,
                removal_order: Optional[List[Handle]] = None) -> None:
    """Peel ``alive`` and assign core indices in ``[kmin, kmax]`` (Algorithm 3).

    Parameters
    ----------
    engine:
        Backend engine (:class:`~repro.core.backends.DictEngine` or
        :class:`~repro.core.backends.CSREngine`); traversals are restricted
        to ``alive``.
    h:
        Distance threshold.
    kmin, kmax:
        Only core indices in ``[kmin, kmax]`` are assigned; vertices peeled at
        bucket ``kmin - 1`` are removed without assignment (they belong to a
        lower partition and will be handled there).
    buckets:
        Bucket queue pre-populated with every handle of ``alive``, keyed by a
        valid lower bound on its core index (or by its exact degree).
    set_lb:
        ``set_lb[v]`` is True while ``v``'s bucket key is only a lower bound.
    alive:
        The surviving vertex set (engine-specific type); mutated in place.
    stored_degree:
        Exact current h-degrees for handles with ``set_lb[v] == False``;
        mutated in place.
    core_index:
        Output map (handle-keyed); only vertices whose core index lies in
        ``[kmin, kmax]`` (and is not yet assigned) are written.
    removal_order:
        Optional list that receives every removed handle in removal order
        (used to extract a smallest-last degeneracy ordering for the
        distance-h coloring application).
    """
    k = max(kmin - 1, 0)
    while k <= kmax:
        vertex = buckets.pop_from(k)
        if vertex is None:
            k += 1
            continue
        if set_lb[vertex]:
            # First time this vertex surfaces in this computation: its bucket
            # key was only a lower bound, so compute the real h-degree and
            # re-bucket (Algorithm 3, lines 4-7).  The max() with k guards the
            # case where peeling of same-core vertices earlier in this bucket
            # already dropped the degree below k; the core index is then
            # exactly k and the vertex must stay in the current bucket.
            degree = engine.h_degree(vertex, h, alive, counters)
            counters.count_hdegree()
            stored_degree[vertex] = degree
            buckets.insert(vertex, max(degree, k))
            set_lb[vertex] = False
            continue

        # Exact-degree vertex popped at bucket k: its core index is k
        # (Algorithm 3, lines 9-11), unless k < kmin, in which case the
        # vertex belongs to a lower partition and is peeled silently.
        if k >= kmin and vertex not in core_index:
            core_index[vertex] = k
        set_lb[vertex] = True
        if removal_order is not None:
            removal_order.append(vertex)

        neighborhood = engine.h_neighbors_with_distance(vertex, h, alive,
                                                        counters)
        alive.discard(vertex)
        for u, distance in neighborhood:
            if set_lb[u]:
                # Bucket key is a lower bound on core(u) >= k: no update needed.
                continue
            if distance < h:
                # Removing the vertex may have destroyed shortest paths that
                # passed through it: recompute from scratch (line 15).
                stored_degree[u] = engine.h_degree(u, h, alive, counters)
                counters.count_hdegree()
            else:
                # A neighbor at distance exactly h can only lose the removed
                # vertex itself (no path through it can stay within h), so a
                # O(1) decrement suffices (line 17).
                stored_degree[u] -= 1
                counters.record_decrement()
            buckets.move(u, max(stored_degree[u], k))

"""The shared CoreDecomp peeling kernel (Algorithm 3).

h-BZ aside (its baseline loop lives in :mod:`repro.core.hbz`), every peeling
in the repository drives this kernel: h-LB over the whole graph, h-LB+UB per
partition, and the spectrum sweep.  The kernel maintains, per vertex, either
a *lower bound* on its core index (the ``lb`` flag is set — the bucket key
is only a lower bound and the true h-degree has not been computed yet for
the current vertex set) or its *exact* current h-degree.  Deferring the
first exact computation until the bucket index reaches the lower bound is
what saves the bulk of the h-bounded BFS traversals compared to the baseline
h-BZ.

All per-vertex bookkeeping (buckets, stored degrees, lower-bound flags)
lives in a :class:`~repro.runtime.peel.PeelState`:

* With a :class:`~repro.runtime.peel.DictPeelState` the kernel runs the
  generic loop below — any engine, any hashable handle type.
* With an :class:`~repro.runtime.peel.ArrayPeelState` on the CSR engine it
  dispatches to :func:`_core_decomp_array`, which binds the flat arrays to
  locals and reads the BFS scratch buffers directly — no per-neighbor
  ``(vertex, distance)`` tuples are ever materialized, no dict is touched in
  the inner loop.

Both paths execute the same operation sequence (same traversals, same
bucket moves, same counter increments), so they are observationally
identical; the array path is just the same kernel with the Python-object
overhead stripped out.

Handles are opaque to the kernel (original vertex objects for the dict
engine, integer indices for the CSR engine) and ``alive`` is whatever
alive-set type the engine produced.  Callers translate handles back to
vertex labels when assembling the final result.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.backends import CSREngine, Engine
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.peel import ArrayPeelState, Handle, PeelState


def core_decomp(engine: Engine, h: int, kmin: int, kmax: int,
                state: PeelState,
                alive,
                core_index,
                counters: Counters = NULL_COUNTERS,
                removal_order: Optional[List[Handle]] = None) -> None:
    """Peel ``alive`` and assign core indices in ``[kmin, kmax]`` (Algorithm 3).

    Parameters
    ----------
    engine:
        Backend engine (:class:`~repro.core.backends.DictEngine` or
        :class:`~repro.core.backends.CSREngine`); traversals are restricted
        to ``alive``.
    h:
        Distance threshold.
    kmin, kmax:
        Only core indices in ``[kmin, kmax]`` are assigned; vertices peeled
        at bucket ``kmin - 1`` are removed without assignment (they belong
        to a lower partition and will be handled there).
    state:
        Peel state (:func:`repro.runtime.peel.make_peel_state`) pre-populated
        with every handle of ``alive``, keyed by a valid lower bound on its
        core index (inserted with ``lb=True``) or by its exact degree.
    alive:
        The surviving vertex set (engine-specific type); mutated in place.
    core_index:
        Output map (handle-keyed; a dict or an
        :class:`~repro.runtime.peel.ArrayCoreMap`); only vertices whose core
        index lies in ``[kmin, kmax]`` (and is not yet assigned) are written.
    removal_order:
        Optional list that receives every removed handle in removal order
        (used to extract a smallest-last degeneracy ordering for the
        distance-h coloring application).
    """
    if isinstance(state, ArrayPeelState) and isinstance(engine, CSREngine):
        _core_decomp_array(engine, h, kmin, kmax, state, alive, core_index,
                           counters, removal_order)
        return

    k = max(kmin - 1, 0)
    while k <= kmax:
        vertex = state.pop(k)
        if vertex is None:
            k += 1
            continue
        if state.is_lb(vertex):
            # First time this vertex surfaces in this computation: its bucket
            # key was only a lower bound, so compute the real h-degree and
            # re-bucket (Algorithm 3, lines 4-7).  The max() with k guards the
            # case where peeling of same-core vertices earlier in this bucket
            # already dropped the degree below k; the core index is then
            # exactly k and the vertex must stay in the current bucket.
            degree = engine.h_degree(vertex, h, alive, counters)
            counters.count_hdegree()
            state.set_degree(vertex, degree)
            state.insert(vertex, max(degree, k))
            continue

        # Exact-degree vertex popped at bucket k: its core index is k
        # (Algorithm 3, lines 9-11), unless k < kmin, in which case the
        # vertex belongs to a lower partition and is peeled silently.
        if k >= kmin and vertex not in core_index:
            core_index[vertex] = k
        if removal_order is not None:
            removal_order.append(vertex)

        neighborhood = engine.h_neighbors_with_distance(vertex, h, alive,
                                                        counters)
        alive.discard(vertex)
        for u, distance in neighborhood:
            if u not in state or state.is_lb(u):
                # Already peeled, or the bucket key is still only a lower
                # bound on core(u) >= k: no update needed either way.
                continue
            if distance < h:
                # Removing the vertex may have destroyed shortest paths that
                # passed through it: recompute from scratch (line 15).
                state.set_degree(u, engine.h_degree(u, h, alive, counters))
                counters.count_hdegree()
            else:
                # A neighbor at distance exactly h can only lose the removed
                # vertex itself (no path through it can stay within h), so a
                # O(1) decrement suffices (line 17).
                state.decrement(u)
                counters.record_decrement()
            state.move_to(u, max(state.degree_of(u), k))


def _core_decomp_array(engine: CSREngine, h: int, kmin: int, kmax: int,
                       state: ArrayPeelState, alive, core_index,
                       counters: Counters,
                       removal_order: Optional[List[int]]) -> None:
    """Array-native Algorithm 3: same kernel, flat-array inner loop.

    Reads the engine's BFS scratch directly: ``scratch.order`` holds the
    visited indices level by level and ``scratch.level_ends`` the segment
    boundaries, so "is the distance exactly h?" is a positional test against
    the final segment instead of a per-neighbor distance tuple.  The order
    buffer is copied once per removal (one C-level slice) because the
    recompute branch reuses the scratch for its own traversals.

    The bucket operations (pop-head, push-front, move) are inlined on the
    state's arrays — bound to locals once — and the decrement / bucket-move
    counters are accumulated locally and flushed in batches (identical
    totals, a fraction of the calls).  Every traversal, update and counter
    total matches the generic loop exactly; only the constant factors
    differ.
    """
    scratch = engine.scratch
    run = scratch.run
    heads = state.heads
    nxt = state.nxt
    prv = state.prv
    key_of = state.key_of_
    lb = state.lb
    degrees = state.degrees
    count_hdegree = counters.count_hdegree
    record_decrements = counters.record_decrements
    record_bucket_moves = counters.record_bucket_moves
    popped = 0
    moves = 0

    k = max(kmin - 1, 0)
    while k <= kmax:
        # Inline pop-head from bucket k (heads is pre-sized past kmax).
        vertex = heads[k]
        if vertex < 0:
            k += 1
            continue
        follower = nxt[vertex]
        heads[k] = follower
        if follower >= 0:
            prv[follower] = -1
        key_of[vertex] = -1
        popped += 1

        if lb[vertex]:
            # Lower-bound pop: compute the real h-degree and re-bucket
            # (inline push-front at max(degree, k); the flag becomes exact).
            degree = run(vertex, h, alive, counters)
            count_hdegree()
            degrees[vertex] = degree
            key = degree if degree > k else k
            head = heads[key]
            nxt[vertex] = head
            prv[vertex] = -1
            if head >= 0:
                prv[head] = vertex
            heads[key] = vertex
            key_of[vertex] = key
            lb[vertex] = 0
            popped -= 1
            continue

        if k >= kmin and vertex not in core_index:
            core_index[vertex] = k
        if removal_order is not None:
            removal_order.append(vertex)

        run(vertex, h, alive, counters)
        # Copy before the inner recomputations overwrite the scratch.  The
        # final BFS segment holds exactly the distance-h vertices (when the
        # traversal reached depth h at all); everything before it is at
        # distance < h and needs the full recompute.
        neighbors = scratch.order[1:]
        ends = scratch.level_ends
        cut = ends[-2] - 1 if len(ends) - 1 == h else len(neighbors)
        alive.discard(vertex)
        decrements = 0
        for i, u in enumerate(neighbors):
            current = key_of[u]
            if current < 0 or lb[u]:
                continue
            if i < cut:
                degree = run(u, h, alive, counters)
                count_hdegree()
                degrees[u] = degree
            else:
                degree = degrees[u] - 1
                degrees[u] = degree
                decrements += 1
            key = degree if degree > k else k
            if current == key:
                continue
            # Inline move: unlink from bucket ``current``, push-front at
            # ``key``.
            before = prv[u]
            after = nxt[u]
            if before >= 0:
                nxt[before] = after
            else:
                heads[current] = after
            if after >= 0:
                prv[after] = before
            head = heads[key]
            nxt[u] = head
            prv[u] = -1
            if head >= 0:
                prv[head] = u
            heads[key] = u
            key_of[u] = key
            moves += 1
        if decrements:
            record_decrements(decrements)
    if moves:
        record_bucket_moves(moves)
    state._count -= popped

"""h-LB+UB: top-down, partitioned (k,h)-core decomposition (Algorithm 4).

The upper bound ``UB(v)`` (classic core index in the implicit h-power graph,
Algorithm 5) lets the computation be split into totally independent
sub-computations: all (k,h)-cores with ``k >= i`` live inside
``V[i] = {v : UB(v) >= i}`` (Observation 3).  The partitions are visited
top-down, so the expensive high-core vertices are peeled early and never
touched again, and each partition is first cleaned and re-bounded by
``ImproveLB`` (Algorithm 6, bound LB3).

Each partition's peeling drives the shared kernel
(:func:`repro.core.peeling.core_decomp`) through a fresh
:class:`~repro.runtime.peel.PeelState`, while the cross-partition core-index
map persists for the whole run (a flat array on the CSR engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.backends import Engine
from repro.core.bounds import (
    engine_improve_lb,
    engine_lb1,
    engine_lb2,
    engine_upper_bound,
)
from repro.core.peeling import core_decomp
from repro.core.result import CoreDecomposition
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.context import ExecutionContext, scoped_context


def build_partitions(upper_bounds: Dict[Vertex, int], min_lower_bound: int,
                     partition_size: int) -> List[Tuple[int, int]]:
    """Return the top-down list of ``(kmin, kmax)`` intervals (Algorithm 4, line 11).

    The distinct upper-bound values, together with ``min_lower_bound - 1``,
    are sorted in descending order and grouped ``partition_size`` values at a
    time; each group becomes one interval ``[next_value + 1, first_value]``.

    Example (paper, Example 4): with upper bounds {5,10,15,20,25,30},
    ``min_lower_bound = 3`` and S = 2 the partitions are
    ``[(30, 21), (20, 11), (10, 3)]`` expressed as (kmax, kmin) pairs —
    we return them as ``(kmin, kmax)`` tuples: ``[(21, 30), (11, 20), (3, 10)]``.
    """
    if partition_size < 1:
        raise ParameterError("partition size S must be a positive integer")
    values = set(upper_bounds.values())
    values.add(min_lower_bound - 1)
    ordered = sorted(values, reverse=True)
    partitions: List[Tuple[int, int]] = []
    index = 0
    while index < len(ordered) - 1 or (index == 0 and len(ordered) == 1):
        kmax = ordered[index]
        next_index = index + partition_size
        if next_index < len(ordered):
            kmin = ordered[next_index] + 1
        else:
            kmin = ordered[-1] + 1
        kmin = max(kmin, 0)
        if kmin > kmax:
            kmin = kmax
        partitions.append((kmin, kmax))
        if next_index >= len(ordered):
            break
        index = next_index
    return partitions


def h_lb_ub(graph: Graph, h: int,
            partition_size: int = 1,
            counters: Counters = NULL_COUNTERS,
            num_threads: Optional[int] = None,
            use_hdegree_as_upper_bound: bool = False,
            precomputed_upper_bound: Optional[Dict[Vertex, int]] = None,
            backend: Union[str, Engine] = "dict",
            executor: str = "thread",
            num_workers: Optional[int] = None,
            context: Optional[ExecutionContext] = None) -> CoreDecomposition:
    """Compute the (k,h)-core decomposition with the h-LB+UB algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted input graph.
    h:
        Distance threshold (h >= 1).
    partition_size:
        The parameter ``S``: how many consecutive distinct upper-bound values
        each partition covers (the paper uses small values; S = 1 yields the
        finest top-down exploration).
    counters:
        Instrumentation sink.
    num_workers:
        Workers used for the bulk h-degree computations (§4.6).
        ``num_threads`` is the deprecated legacy spelling.
    executor:
        Scheduler for the bulk h-degree passes (the initial pass, the upper
        bound's seeding pass, and each partition's ``ImproveLB`` pass):
        ``"serial"``, ``"thread"`` (GIL-bound) or ``"process"``
        (shared-memory worker pool).  All executors produce identical core
        numbers.
    use_hdegree_as_upper_bound:
        If True, use the plain h-degree as the upper bound instead of the
        power-graph core index.  Reproduces the "h-degree" column of the
        bound-ablation experiment (Table 5); default is the published UB.
    precomputed_upper_bound:
        Optionally reuse an already-computed UB map, keyed by original
        vertices (used by experiments that evaluate bound quality separately
        from runtime).
    backend:
        ``"dict"`` (reference), ``"csr"`` (array backend), ``"auto"``, or a
        pre-built engine.  Both backends produce identical core numbers.
    context:
        Optional pre-built :class:`~repro.runtime.ExecutionContext`; when
        given it supersedes the keywords above and is **not** closed here.

    Returns
    -------
    CoreDecomposition
    """
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)

    with scoped_context(graph, context, backend=backend, executor=executor,
                        num_workers=num_workers, num_threads=num_threads,
                        counters=counters) as ctx:
        sink = ctx.sink(counters)
        engine = ctx.engine
        all_handles = list(engine.nodes())
        algorithm = ("h-LB+UB(h-degree)" if use_hdegree_as_upper_bound
                     else "h-LB+UB")
        if not all_handles:
            return CoreDecomposition(graph, h, {}, algorithm=algorithm)

        # Lines 3-6: initial h-degrees and the LB2 lower bound.
        initial_degrees = ctx.bulk_h_degrees(h, targets=all_handles,
                                             counters=sink)
        lb1 = engine_lb1(engine, h, counters=sink)
        lb2 = engine_lb2(engine, h, lb1=lb1, counters=sink)
        lb3: Dict[object, int] = {v: 0 for v in all_handles}

        # Line 7: the upper bound (Algorithm 5), or the h-degree ablation
        # variant.
        if precomputed_upper_bound is not None:
            ub = {engine.handle_of(v): value
                  for v, value in precomputed_upper_bound.items()}
        elif use_hdegree_as_upper_bound:
            ub = dict(initial_degrees)
        else:
            ub = engine_upper_bound(engine, h,
                                    initial_h_degrees=initial_degrees,
                                    counters=sink,
                                    num_workers=ctx.num_workers,
                                    executor=ctx.executor,
                                    peel=ctx.peel)

        # Lines 8-11: partition the interval [min LB2, max UB] top-down.
        min_lb = min(lb2.values())
        partitions = build_partitions(ub, min_lb, partition_size)

        core_index = ctx.make_core_map()
        # Lines 11-18: process each partition independently, top-down.
        for kmin, kmax in partitions:
            candidate = [v for v in all_handles if ub[v] >= kmin]
            if not candidate:
                continue
            cleaned, min_degree = engine_improve_lb(engine, h, candidate,
                                                    kmin, counters=sink,
                                                    num_workers=ctx.num_workers,
                                                    executor=ctx.executor)
            if not cleaned:
                continue
            for v in cleaned:
                lb3[v] = max(lb3[v], lb2[v], min_degree)

            state = ctx.make_peel_state(counters=sink)
            alive = cleaned
            floor = max(kmin - 1, 0)
            state.fill_lb(
                (v, max(core_index.get(v, 0), lb3[v], floor)) for v in alive)

            core_decomp(engine, h, kmin=kmin, kmax=kmax, state=state,
                        alive=alive, core_index=core_index, counters=sink)

        # Vertices never assigned belong to core 0 (isolated or below the
        # lowest partition; the lowest kmin equals the minimum LB2, which is
        # 0 for them).
        for v in all_handles:
            core_index.setdefault(v, 0)

        return CoreDecomposition(graph, h, engine.to_labels(core_index),
                                 algorithm=algorithm)

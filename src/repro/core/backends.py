"""Backend engines: one peeling-primitive API over two graph representations.

The (k,h)-core algorithms only touch a graph through a handful of primitives
— h-degree, h-neighborhood, h-neighbors-with-distance, bulk h-degrees, and an
"alive" set restricting traversals to the surviving vertices.  This module
packages those primitives behind two interchangeable *engines*:

* :class:`DictEngine` — the reference implementation.  Handles are the
  original vertex objects, the alive set is a plain Python ``set``, and every
  primitive delegates to the dict-of-sets traversal code in
  :mod:`repro.traversal`.
* :class:`CSREngine` — the fast path.  The graph is snapshotted into a
  :class:`~repro.graph.csr.CSRGraph`, handles are vertex *indices*, the alive
  set is a byte mask (:class:`AliveMask`) and traversals run through the
  array-based :class:`~repro.traversal.array_bfs.ArrayBFS` with its
  generation trick.

Algorithms are written once against the engine API (see
:mod:`repro.core.hbz`, :mod:`repro.core.peeling`, :mod:`repro.core.bounds`),
which is what guarantees both backends produce identical core numbers.

The bulk h-degree pass additionally selects an *executor* (``"serial"``,
``"thread"`` or ``"process"`` — see :data:`repro.core.parallel.EXECUTORS`).
The process executor is the only one that scales on CPython; on the CSR
engine it runs through the shared-memory subsystem (:mod:`repro.parallel`):
the flat arrays are exported once per snapshot generation, a persistent
worker pool attaches to the block, and :meth:`CSREngine.refresh` re-exports
with a bumped generation so workers never traverse a stale topology.
Engines that spun up a process pool own it — call :meth:`CSREngine.close`
(the facade does this for engines it resolved itself) to shut the pool down
and unlink the shared block; a GC finalizer backstops forgotten engines.

Engine contract
---------------
Handles are opaque to the algorithms; only the engine translates them back to
vertex labels (:meth:`label`, :meth:`labels_of`, :meth:`to_labels`).
``h_neighborhood`` and ``h_neighbors_with_distance`` return **materialized
snapshots** — the CSR scratch buffers are overwritten by the next traversal,
so lazily yielding from them would be a correctness bug.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import (
    DeadlineExceededError,
    ParameterError,
    WorkerPoolError,
)
from repro.graph.csr import (
    CSRGraph,
    csr_suitable,
    resolve_native_threshold,
    resolve_numpy_threshold,
)
from repro.graph.graph import Graph, Vertex
from repro.graph.views import FrozenGraphView
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.resilience.policies import ResilienceReport
from repro.runtime.workers import resolve_worker_count
from repro.traversal.array_bfs import AliveMask, ArrayBFS
from repro.traversal.bfs import h_bounded_neighbors
from repro.traversal.hneighborhood import h_degree as _dict_h_degree

#: Backend names accepted by the decomposition entry points.
BACKENDS = ("auto", "dict", "csr", "numpy", "native")


def numpy_available() -> bool:
    """True when the optional NumPy dependency is importable.

    Gate for the ``numpy`` engine: ``backend="auto"`` consults this (plus
    the :func:`~repro.graph.csr.resolve_numpy_threshold` size gate) before
    preferring the vectorized engine, and an explicit ``backend="numpy"``
    raises a :class:`~repro.errors.ParameterError` when it returns False.
    Module-level on purpose so tests can monkeypatch NumPy "absent".

    Setting ``KH_CORE_DISABLE_NUMPY=1`` forces False even when NumPy is
    installed — an operator kill switch for broken NumPy builds, and the
    lever the test suite uses to exercise the pure-Python fallback without
    uninstalling anything.
    """
    if os.environ.get("KH_CORE_DISABLE_NUMPY", "") not in ("", "0"):
        return False
    return importlib.util.find_spec("numpy") is not None


def native_available() -> bool:
    """True when the compiled ``native`` engine can run.

    Gate for the ``native`` engine, mirroring :func:`numpy_available`:
    ``backend="auto"`` consults this (plus
    :func:`~repro.graph.csr.resolve_native_threshold`) before preferring the
    compiled engine, and an explicit ``backend="native"`` raises a
    :class:`~repro.errors.ParameterError` when it returns False.

    The engine needs both optional extras: NumPy for the arrays and Numba
    for the JIT (``pip install 'kh-core-repro[native]'``).  Two levers:

    * ``KH_CORE_DISABLE_NATIVE=1`` forces False even with Numba installed —
      the operator kill switch for broken Numba/LLVM builds (it also
      respects ``KH_CORE_DISABLE_NUMPY``, since the kernels run on
      ndarrays).
    * ``KH_CORE_NATIVE_ALLOW_INTERPRETED=1`` allows True with Numba absent
      (NumPy still required): the kernels then run as interpreted Python —
      bit-identical results, none of the speed.  A test/debug lever for
      exercising the native codepaths on machines without a compiler; never
      set it in production.
    """
    if os.environ.get("KH_CORE_DISABLE_NATIVE", "") not in ("", "0"):
        return False
    if not numpy_available():
        return False
    if importlib.util.find_spec("numba") is not None:
        return True
    return os.environ.get("KH_CORE_NATIVE_ALLOW_INTERPRETED", "") not in (
        "", "0")


class DictEngine:
    """Reference engine over the dict-of-sets :class:`Graph`."""

    name = "dict"

    __slots__ = ("graph", "_process_delegate")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # Lazily-built CSREngine serving executor="process" bulk passes, so
        # one dict-backend decomposition spins the worker pool up once, not
        # once per pass (see bulk_h_degrees).
        self._process_delegate = None

    # -- handle space -------------------------------------------------- #
    def nodes(self) -> List[Vertex]:
        return list(self.graph.vertices())

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    def label(self, handle: Vertex) -> Vertex:
        return handle

    def handle_of(self, label: Vertex) -> Vertex:
        return label

    def labels_of(self, handles: Iterable[Vertex]) -> List[Vertex]:
        return list(handles)

    def to_labels(self, mapping) -> Dict[Vertex, int]:
        # Handles are the labels; dict-engine core maps are plain dicts.
        return mapping

    def degree(self, handle: Vertex) -> int:
        return self.graph.degree(handle)

    # -- alive sets ---------------------------------------------------- #
    def full_alive(self) -> set:
        return set(self.graph.vertices())

    def alive_subset(self, handles: Iterable[Vertex]) -> set:
        return set(handles)

    def refresh(self, touched=None) -> None:
        """Near no-op: the dict engine reads the live graph directly.

        Only the process-executor delegate (a CSR snapshot) needs syncing.
        """
        if self._process_delegate is not None:
            self._process_delegate.refresh(touched)

    def close(self) -> None:
        """Tear down the process-executor delegate's pool, if one was built."""
        delegate, self._process_delegate = self._process_delegate, None
        if delegate is not None:
            delegate.close()

    @property
    def resilience(self) -> Optional[ResilienceReport]:
        """Recovery tally of the process delegate (None before one exists)."""
        delegate = self._process_delegate
        return delegate.resilience if delegate is not None else None

    # -- traversal primitives ------------------------------------------ #
    def h_degree(self, handle: Vertex, h: int, alive=None,
                 counters: Counters = NULL_COUNTERS) -> int:
        return _dict_h_degree(self.graph, handle, h, alive=alive,
                              counters=counters)

    def h_neighborhood(self, handle: Vertex, h: int, alive=None,
                       counters: Counters = NULL_COUNTERS) -> List[Vertex]:
        return list(h_bounded_neighbors(self.graph, handle, h, alive=alive,
                                        counters=counters))

    def h_neighbors_with_distance(self, handle: Vertex, h: int, alive=None,
                                  counters: Counters = NULL_COUNTERS
                                  ) -> List[Tuple[Vertex, int]]:
        return list(h_bounded_neighbors(self.graph, handle, h, alive=alive,
                                        counters=counters).items())

    def bulk_h_degrees(self, h: int, targets=None, alive=None,
                       num_threads: Optional[int] = None,
                       counters: Counters = NULL_COUNTERS,
                       executor: str = "thread",
                       num_workers: Optional[int] = None) -> Dict[Vertex, int]:
        from repro.core.parallel import compute_h_degrees
        workers = resolve_worker_count(num_workers, num_threads)
        backend: object = "dict"
        if executor == "process" and workers > 1:
            # Process dispatch needs a CSR snapshot; cache one engine (and
            # its worker pool) across this engine's bulk passes instead of
            # paying a pool spin-up per pass.  A frozen view already carries
            # its snapshot — reuse it instead of re-expanding the graph.
            if self._process_delegate is None:
                self._process_delegate = CSREngine(
                    self.graph, csr=getattr(self.graph, "csr", None))
            elif self._process_delegate.built_version != self.graph.version:
                self._process_delegate.refresh(None)
            backend = self._process_delegate
        return compute_h_degrees(self.graph, h, vertices=targets, alive=alive,
                                 num_workers=workers, counters=counters,
                                 backend=backend, executor=executor)


class CSREngine:
    """Array engine over a :class:`CSRGraph` snapshot; handles are indices."""

    name = "csr"

    __slots__ = ("graph", "csr", "_scratch", "built_version", "_shm_pool",
                 "relabel", "_storage", "_storage_dir", "_owns_csr",
                 "resilience")

    def __init__(self, graph: Graph, csr: Optional[CSRGraph] = None,
                 relabel: Optional[str] = None,
                 storage: str = "auto",
                 storage_dir: Optional[str] = None) -> None:
        self.graph = graph
        self._shm_pool = None
        #: Recovery tally for this engine's supervised dispatches (all-zero
        #: on a fault-free run); printed by ``kh-core --verbose``.
        self.resilience = ResilienceReport()
        #: Cache-locality permutation requested for this engine's snapshots;
        #: re-applied if a refresh ever falls back to a full rebuild.
        self.relabel = relabel
        #: Storage tier for engine-built snapshots ("ram" / "mmap" / "auto")
        #: and where mmap spill files go; supplied snapshots keep theirs.
        self._storage = storage
        self._storage_dir = storage_dir
        if csr is not None and relabel is not None:
            raise ParameterError(
                "relabel only applies when the engine builds its own CSR "
                "snapshot; the supplied snapshot's vertex order is fixed"
            )
        if csr is not None and (
                (csr.source_version is not None
                 and csr.source_version != graph.version)
                or csr.num_vertices != graph.num_vertices
                or csr.num_edges != graph.num_edges):
            # The built_version stamp below only vouches for snapshots
            # taken *now*, so validate a supplied snapshot here: its
            # recorded source version must match (catching equal-size
            # mutations like remove+add of an edge), with the size check as
            # a backstop for hand-assembled snapshots that carry no stamp.
            raise ParameterError(
                "the supplied CSR snapshot does not match the graph "
                "(was the graph mutated after CSRGraph.from_graph?)"
            )
        # The engine owns (and closes) only storage it allocated itself; a
        # supplied snapshot's mmap block belongs to whoever built it.
        self._owns_csr = csr is None
        self.csr = csr if csr is not None else CSRGraph.from_graph(
            graph, relabel=relabel, storage=storage,
            storage_dir=storage_dir)
        self._scratch = self._make_scratch()
        self.built_version = graph.version

    def _make_scratch(self):
        """Fresh traversal scratch for the current snapshot.

        The single point a subclass overrides to swap the traversal kernel
        (the :class:`NumpyEngine` plugs its vectorized scratch in here);
        called at construction and after every :meth:`refresh`.
        """
        return ArrayBFS(self.csr)

    @property
    def scratch(self):
        """The engine's reusable BFS scratch (current for this snapshot).

        An :class:`~repro.traversal.array_bfs.ArrayBFS` here, its
        structural twin :class:`~repro.traversal.numpy_bfs.NumpyBFS` on the
        vectorized subclass.  Exposed for the array-native peel kernels,
        which read the scratch's ``order`` / ``level_ends`` buffers directly
        instead of materializing per-neighbor lists.  Not thread-safe —
        same caveat as every other single-scratch traversal primitive on
        this engine.
        """
        return self._scratch

    def refresh(self, touched=None) -> None:
        """Re-snapshot a mutated graph, reusing untouched CSR rows.

        ``touched`` is the set of vertex labels whose adjacency may have
        changed since the snapshot (see :meth:`CSRGraph.rebuilt`); passing
        ``None`` forces a full rebuild.  Indices of surviving vertices are
        stable across a delta refresh, so handles held by callers remain
        valid.  No-op when the snapshot is already current.
        """
        if self.built_version == self.graph.version:
            return
        previous = self.csr
        if self._storage == "ram":
            self.csr = previous.rebuilt(self.graph, touched,
                                        relabel=self.relabel)
        else:
            # Delta reuse only applies to RAM lists; a storage-tiered
            # engine rebuilds under its configured policy so a spilled
            # snapshot stays spilled across refreshes.
            self.csr = CSRGraph.from_graph(self.graph, relabel=self.relabel,
                                           storage=self._storage,
                                           storage_dir=self._storage_dir)
        if self._owns_csr and previous is not self.csr:
            previous.close()
        self._owns_csr = True
        self._scratch = self._make_scratch()
        self.built_version = self.graph.version
        if self._shm_pool is not None:
            # Version-stamped re-export: the worker pool survives the
            # refresh, but the stale block is unlinked now and the next
            # process dispatch exports the new snapshot under a bumped
            # generation (every dispatch calls ensure_export), so no worker
            # ever traverses the stale topology.  Invalidate-only keeps a
            # mutation stream from paying an O(n + m) export per refresh
            # when no dispatch happens in between.
            self._shm_pool.invalidate_export()

    def close(self) -> None:
        """Tear down the process pool, shared export and owned storage.

        Idempotent with respect to the pool; the engine remains usable for
        RAM snapshots afterwards (a later ``executor="process"`` bulk pass
        simply spins the pool up again).  An *owned* mmap-backed snapshot is
        closed too — its temp spill file is unlinked — so call ``close``
        only when done with the engine; supplied snapshots are left alone.
        """
        pool, self._shm_pool = self._shm_pool, None
        if pool is not None:
            pool.close()
        if self._owns_csr and self.csr.storage_kind != "ram":
            self.csr.close()

    def _process_pool(self, num_workers: int,
                      start_method: Optional[str] = None):
        """Return the persistent shared-memory executor, (re)building it
        when the requested worker count (or supervision mode) changes.

        By default the raw executor is wrapped in a
        :class:`~repro.resilience.supervisor.SupervisedExecutor` sharing
        this engine's :class:`ResilienceReport`; ``KH_CORE_SUPERVISED=0``
        selects the unsupervised executor (benchmarks measure the
        supervision overhead against it).
        """
        from repro.parallel.pool import SharedMemoryExecutor
        from repro.resilience.supervisor import (
            SupervisedExecutor,
            supervision_enabled,
        )
        supervised = supervision_enabled()
        pool = self._shm_pool
        if pool is not None and (
                pool.closed
                or pool.num_workers != num_workers
                or isinstance(pool, SupervisedExecutor) != supervised):
            # A failed dispatch tears its executor down; discard it here so
            # the next process request recovers with a fresh pool instead
            # of erroring forever on the cached corpse.
            pool.close()
            pool = None
        if pool is None:
            if supervised:
                pool = SupervisedExecutor(num_workers,
                                          start_method=start_method,
                                          report=self.resilience)
            else:
                pool = SharedMemoryExecutor(num_workers,
                                            start_method=start_method)
            self._shm_pool = pool
        return pool

    # -- handle space -------------------------------------------------- #
    def nodes(self) -> range:
        return range(self.csr.num_vertices)

    @property
    def num_nodes(self) -> int:
        return self.csr.num_vertices

    def label(self, handle: int) -> Vertex:
        return self.csr.labels[handle]

    def handle_of(self, label: Vertex) -> int:
        return self.csr.index(label)

    def labels_of(self, handles: Iterable[int]) -> List[Vertex]:
        labels = self.csr.labels
        return [labels[i] for i in handles]

    def to_labels(self, mapping) -> Dict[Vertex, int]:
        # Accepts any ``items()``-bearing handle-keyed map — a dict or the
        # runtime's flat ArrayCoreMap.
        labels = self.csr.labels
        return {labels[i]: value for i, value in mapping.items()}

    def degree(self, handle: int) -> int:
        return self.csr.degree(handle)

    # -- alive sets ---------------------------------------------------- #
    def full_alive(self) -> AliveMask:
        return AliveMask.full(self.csr.num_vertices)

    def alive_subset(self, handles: Iterable[int]) -> AliveMask:
        return AliveMask.of(self.csr.num_vertices, handles)

    # -- traversal primitives ------------------------------------------ #
    def h_degree(self, handle: int, h: int, alive: Optional[AliveMask] = None,
                 counters: Counters = NULL_COUNTERS) -> int:
        return self._scratch.run(handle, h, alive, counters)

    def h_neighborhood(self, handle: int, h: int,
                       alive: Optional[AliveMask] = None,
                       counters: Counters = NULL_COUNTERS) -> List[int]:
        self._scratch.run(handle, h, alive, counters)
        return self._scratch.visited()

    def h_neighbors_with_distance(self, handle: int, h: int,
                                  alive: Optional[AliveMask] = None,
                                  counters: Counters = NULL_COUNTERS
                                  ) -> List[Tuple[int, int]]:
        self._scratch.run(handle, h, alive, counters)
        return self._scratch.visited_with_distance()

    def bulk_h_degrees(self, h: int, targets=None,
                       alive: Optional[AliveMask] = None,
                       num_threads: Optional[int] = None,
                       counters: Counters = NULL_COUNTERS,
                       executor: str = "thread",
                       num_workers: Optional[int] = None) -> Dict[int, int]:
        """h-degree of every target index, optionally across a worker pool.

        ``executor`` selects the scheduler (see
        :data:`repro.core.parallel.EXECUTORS`).  The thread path mirrors
        :func:`repro.core.parallel.compute_h_degrees`: each worker owns a
        private :class:`ArrayBFS` scratch (the shared one is not
        thread-safe) and a private :class:`Counters`, merged at the end.
        The process path exports the CSR arrays into shared memory once per
        snapshot generation and fans degree-weighted chunks out to a
        persistent worker pool (:mod:`repro.parallel`) — the only executor
        that scales on CPython.

        The dispatch (executor validation, worker resolution, target
        defaulting, degree-weighted process fan-out) lives here exactly
        once; the serial and per-thread *kernels* are the
        :meth:`_bulk_serial` / :meth:`_bulk_worker_batch` hooks the
        vectorized subclass overrides, and ``engine_kind=self.name`` rides
        the shared-memory task descriptors so workers run the matching
        kernel.
        """
        from repro.core.parallel import _validate_executor
        _validate_executor(executor)
        workers = resolve_worker_count(num_workers, num_threads)
        if targets is None:
            targets = alive if alive is not None else range(self.csr.num_vertices)
        indices = list(targets)

        if executor == "process" and workers > 1 and len(indices) >= 2:
            indptr = self.csr.indptr
            weights = [indptr[i + 1] - indptr[i] for i in indices]
            pool = self._process_pool(workers)
            try:
                return pool.bulk_h_degrees(self.csr, h, indices, alive=alive,
                                           counters=counters, weights=weights,
                                           engine_kind=self.name)
            except (WorkerPoolError, DeadlineExceededError):
                # First rung of the degradation ladder: the supervised pool
                # exhausted its retry/rebuild budget, so finish this pass
                # (and run subsequent ones) on threads.  Only the
                # supervisor raises these, so an unsupervised executor
                # keeps its historical fail-fast contract.
                self.resilience.record_downgrade("process", "thread")
                if counters is not NULL_COUNTERS:
                    counters.bump("resilience.downgrades")
                executor = "thread"

        if workers <= 1 or len(indices) < 2 or executor == "serial":
            return self._bulk_serial(indices, h, alive, counters)

        from repro.core.parallel import map_batches

        def worker(batch, local: Counters) -> Dict[int, int]:
            return self._bulk_worker_batch(batch, h, alive, local)

        try:
            return map_batches(indices, workers, worker, counters)
        except RuntimeError:
            # Last rung: thread creation failed (resource exhaustion).  The
            # serial kernel needs no scheduler at all, so the pass still
            # completes.
            self.resilience.record_downgrade("thread", "serial")
            if counters is not NULL_COUNTERS:
                counters.bump("resilience.downgrades")
            return self._bulk_serial(indices, h, alive, counters)

    def _bulk_serial(self, indices: List[int], h: int,
                     alive: Optional[AliveMask],
                     counters: Counters) -> Dict[int, int]:
        """Serial bulk kernel: one interpreted BFS per target."""
        run = self._scratch.run
        result: Dict[int, int] = {}
        for i in indices:
            result[i] = run(i, h, alive, counters)
            counters.count_hdegree()
        return result

    def _bulk_worker_batch(self, batch: List[int], h: int,
                           alive: Optional[AliveMask],
                           local: Counters) -> Dict[int, int]:
        """Thread-pool bulk kernel for one batch.

        Private scratch per worker: ArrayBFS state is not thread-safe.
        The shared mask is installed without hooking — workers only read
        it, so sentinel upkeep stays with the engine's scratch.
        """
        scratch = ArrayBFS(self.csr)
        out: Dict[int, int] = {}
        for i in batch:
            out[i] = scratch.run(i, h, alive, local, hook=False)
            local.count_hdegree()
        return out


class NumpyEngine(CSREngine):
    """Vectorized engine: the CSR snapshot traversed by NumPy kernels.

    Same handle space, alive masks, snapshot/refresh lifecycle,
    bulk-dispatch logic and shared-memory process path as
    :class:`CSREngine` — the subclass overrides only the kernel hooks: the
    per-vertex BFS scratch becomes a
    :class:`~repro.traversal.numpy_bfs.NumpyBFS` (level-synchronous
    frontier gathers over flat ndarrays), and the serial/thread bulk leaves
    run its many-sources kernels, expanding whole blocks of BFS sources per
    NumPy dispatch.  Traversal orders, removal orders and counter totals
    are identical to the CSR engine; only the constant factors differ.

    Requires the optional NumPy dependency (``pip install
    kh-core-repro[numpy]``); :func:`resolve_engine` raises a clear error
    when it is missing, and ``backend="auto"`` simply never selects it.
    """

    name = "numpy"

    __slots__ = ()

    def _make_scratch(self):
        from repro.traversal.numpy_bfs import NumpyBFS

        return NumpyBFS(self.csr)

    def _bulk_serial(self, indices: List[int], h: int,
                     alive: Optional[AliveMask],
                     counters: Counters) -> Dict[int, int]:
        """Serial bulk kernel: whole blocks of sources per NumPy dispatch.

        Result dicts preserve target order, so downstream bucket fills see
        the exact sequence the CSR engine produces.
        """
        degrees = self._scratch.bulk(indices, h, alive, counters)
        counters.count_hdegrees(len(indices))
        return dict(zip(indices, degrees.tolist()))

    def _bulk_worker_batch(self, batch: List[int], h: int,
                           alive: Optional[AliveMask],
                           local: Counters) -> Dict[int, int]:
        """Thread-pool bulk kernel: a private cloned scratch per batch.

        The block stamp array is not thread-safe; the CSR ndarrays
        themselves are shared read-only.
        """
        scratch = self._scratch.clone()
        degrees = scratch.bulk(batch, h, alive, local)
        local.count_hdegrees(len(batch))
        return dict(zip(batch, degrees.tolist()))


class NativeEngine(CSREngine):
    """Compiled engine: the CSR snapshot traversed by Numba-JIT kernels.

    Same handle space, alive masks, snapshot/refresh lifecycle,
    bulk-dispatch logic and shared-memory process path as
    :class:`CSREngine`; the kernel hooks swap in
    :class:`~repro.traversal.native_bfs.NativeBFS`, whose h-bounded level
    loop runs as a single ``@njit(nogil=True, cache=True)`` call.  Results
    (traversal orders, removal orders, counter totals) are bit-identical to
    every other engine; what changes is the constant factor — the whole
    BFS compiles to machine code — and the concurrency story: because the
    kernels release the GIL, ``executor="thread"`` bulk passes fan
    :func:`~repro.core.parallel.chunk_plan` batches out over threads that
    genuinely run in parallel on the *shared* snapshot, with none of the
    process pool's export cost.

    Requires the optional Numba extra (``pip install
    'kh-core-repro[native]'``); :func:`resolve_engine` raises a clear error
    when it is missing and ``backend="auto"`` simply never selects it.
    Construction pre-compiles (or cache-loads) the kernels unless
    ``KH_CORE_NATIVE_WARMUP=0``, so first-traversal timings are
    steady-state.
    """

    name = "native"

    __slots__ = ()

    def __init__(self, *args, **kwargs) -> None:
        if os.environ.get("KH_CORE_NATIVE_WARMUP", "1") not in ("", "0"):
            from repro.traversal.native_bfs import warmup_kernels

            warmup_kernels()
        super().__init__(*args, **kwargs)

    def _make_scratch(self):
        from repro.traversal.native_bfs import NativeBFS

        return NativeBFS(self.csr)

    def _bulk_serial(self, indices: List[int], h: int,
                     alive: Optional[AliveMask],
                     counters: Counters) -> Dict[int, int]:
        """Serial bulk kernel: all sources in one compiled, GIL-free call."""
        degrees = self._scratch.bulk(indices, h, alive, counters)
        counters.count_hdegrees(len(indices))
        return dict(zip(indices, degrees.tolist()))

    def _bulk_worker_batch(self, batch: List[int], h: int,
                           alive: Optional[AliveMask],
                           local: Counters) -> Dict[int, int]:
        """Thread-pool bulk kernel: a private cloned scratch per batch.

        The scratch's stamp/queue buffers are per-thread; the CSR ndarrays
        are shared read-only — and the kernel drops the GIL for the whole
        batch, which is what makes this executor finally scale.
        """
        scratch = self._scratch.clone()
        degrees = scratch.bulk(batch, h, alive, local)
        local.count_hdegrees(len(batch))
        return dict(zip(batch, degrees.tolist()))


Engine = Union[DictEngine, CSREngine]

#: Graph-like inputs the resolver accepts: a mutable dict graph or a frozen
#: CSR snapshot view (the out-of-core entry path).
GraphLike = Union[Graph, FrozenGraphView]


def resolve_engine(graph: GraphLike, backend: Union[str, Engine] = "dict",
                   csr_threshold: Optional[int] = None,
                   relabel: Optional[str] = None,
                   storage: str = "auto",
                   storage_dir: Optional[str] = None) -> Engine:
    """Return the engine requested by ``backend`` for ``graph``.

    ``backend`` may be one of the names in :data:`BACKENDS` or an
    already-constructed engine (useful to amortize a CSR build across
    several decompositions of the same graph).  ``"auto"`` climbs the
    engine ladder as far as the graph and the installed extras allow: the
    compiled native engine for integer-friendly graphs clearing the native
    size threshold (when Numba is importable), the vectorized NumPy engine
    above the NumPy threshold (when NumPy is importable), the interpreted
    CSR engine for smaller integer-friendly graphs, and the dict reference
    engine otherwise; ``csr_threshold`` overrides the minimum vertex count
    for the CSR choice (default: the ``KH_CORE_CSR_THRESHOLD`` environment
    variable, with ``KH_CORE_NUMPY_THRESHOLD`` / ``KH_CORE_NATIVE_THRESHOLD``
    gating the step-ups).

    ``relabel`` applies a cache-locality vertex permutation at CSR build
    time (``"degree"`` / ``"bfs"`` — see
    :func:`~repro.graph.csr.relabel_order`); it changes only the internal
    index order, never label-space results, and is ignored by the dict
    engine (which has no index layout to permute).

    ``storage`` / ``storage_dir`` select the storage tier for engine-built
    CSR snapshots (:data:`repro.graph.storage.STORAGES`): ``"auto"`` (the
    default) keeps historical in-RAM behavior below the mmap threshold and
    spills giant snapshots to a temp block file; ``"mmap"`` forces the
    spill.  A :class:`~repro.graph.views.FrozenGraphView` input skips the
    build entirely — its embedded snapshot (whatever tier it lives on) is
    reused as the engine's arrays, which is how a stream-loaded on-disk
    graph decomposes without ever expanding into dicts.
    """
    if isinstance(backend, (DictEngine, CSREngine)):
        if relabel is not None:
            # Same conflict as CSREngine(csr=..., relabel=...): an existing
            # engine's index order is fixed, so silently ignoring the
            # request would leave the caller believing the permutation is
            # active.
            raise ParameterError(
                "relabel only applies when an engine is built from a "
                "backend name; the supplied engine's vertex order is fixed"
            )
        if backend.graph is not graph:
            raise ParameterError(
                "the supplied engine was built for a different graph"
            )
        if isinstance(backend, CSREngine) and (
                backend.built_version != graph.version):
            # The CSR snapshot is immutable; a mutated graph would silently
            # decompose the old topology.  The graph's version counter makes
            # this an exact staleness test — refresh the engine
            # (CSREngine.refresh) after any mutation.
            raise ParameterError(
                "the supplied CSR engine is stale: the graph was mutated "
                "after the snapshot was built (call engine.refresh() or "
                "rebuild with resolve_engine)"
            )
        return backend
    # Single source of truth for name validation and the "auto" policy.
    name = resolved_backend_name(graph, backend, csr_threshold)
    # A frozen view carries its snapshot: hand it straight to the engine
    # (its version property matches the snapshot's stamp, so the supplied-
    # snapshot validation passes) instead of rebuilding the arrays.
    frozen_csr = graph.csr if isinstance(graph, FrozenGraphView) else None
    if frozen_csr is not None and relabel is not None:
        raise ParameterError(
            "relabel does not apply to a FrozenGraphView: its snapshot's "
            "vertex order is fixed"
        )
    if name == "dict":
        return DictEngine(graph)
    if name == "numpy":
        if not numpy_available():
            if os.environ.get("KH_CORE_DISABLE_NUMPY", "") not in ("", "0"):
                raise ParameterError(
                    "backend='numpy' is disabled by KH_CORE_DISABLE_NUMPY "
                    "in this environment; unset it (or use the 'csr' / "
                    "'dict' engines)"
                )
            raise ParameterError(
                "backend='numpy' requires the optional NumPy dependency "
                "(pip install 'kh-core-repro[numpy]'); the 'csr' and "
                "'dict' engines run without it"
            )
        return NumpyEngine(graph, csr=frozen_csr, relabel=relabel,
                           storage=storage, storage_dir=storage_dir)
    if name == "native":
        if not native_available():
            if os.environ.get("KH_CORE_DISABLE_NATIVE", "") not in ("", "0"):
                raise ParameterError(
                    "backend='native' is disabled by KH_CORE_DISABLE_NATIVE "
                    "in this environment; unset it (or use the 'numpy' / "
                    "'csr' / 'dict' engines)"
                )
            raise ParameterError(
                "backend='native' requires the optional Numba dependency "
                "(pip install 'kh-core-repro[native]'); the 'numpy', 'csr' "
                "and 'dict' engines run without it"
            )
        return NativeEngine(graph, csr=frozen_csr, relabel=relabel,
                            storage=storage, storage_dir=storage_dir)
    return CSREngine(graph, csr=frozen_csr, relabel=relabel,
                     storage=storage, storage_dir=storage_dir)


def resolved_backend_name(graph: GraphLike, backend: Union[str, Engine],
                          csr_threshold: Optional[int] = None) -> str:
    """Return the concrete backend name ``backend`` resolves to for ``graph``.

    Cheap (no engine is built): used by the CLI to surface which backend an
    ``"auto"`` request actually selected.  The ``"auto"`` ladder: dict for
    graphs that are not integer-friendly or below the CSR threshold, then
    native when Numba is importable and the graph clears the native size
    threshold, then numpy when NumPy is importable and the graph clears
    the NumPy size threshold, csr otherwise.  A frozen CSR view skips the
    suitability probe — its arrays already exist, so ``"auto"`` never
    falls back to dict for it.
    """
    if isinstance(backend, (DictEngine, CSREngine)):
        return backend.name
    if backend == "auto":
        if isinstance(graph, FrozenGraphView):
            if (native_available()
                    and graph.num_vertices >= resolve_native_threshold()):
                return "native"
            if (numpy_available()
                    and graph.num_vertices >= resolve_numpy_threshold()):
                return "numpy"
            return "csr"
        if not csr_suitable(graph, csr_threshold):
            return "dict"
        if (native_available()
                and graph.num_vertices >= resolve_native_threshold()):
            return "native"
        if (numpy_available()
                and graph.num_vertices >= resolve_numpy_threshold()):
            return "numpy"
        return "csr"
    if backend in BACKENDS:
        return backend
    raise ParameterError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )

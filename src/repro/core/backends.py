"""Backend engines: one peeling-primitive API over two graph representations.

The (k,h)-core algorithms only touch a graph through a handful of primitives
— h-degree, h-neighborhood, h-neighbors-with-distance, bulk h-degrees, and an
"alive" set restricting traversals to the surviving vertices.  This module
packages those primitives behind two interchangeable *engines*:

* :class:`DictEngine` — the reference implementation.  Handles are the
  original vertex objects, the alive set is a plain Python ``set``, and every
  primitive delegates to the dict-of-sets traversal code in
  :mod:`repro.traversal`.
* :class:`CSREngine` — the fast path.  The graph is snapshotted into a
  :class:`~repro.graph.csr.CSRGraph`, handles are vertex *indices*, the alive
  set is a byte mask (:class:`AliveMask`) and traversals run through the
  array-based :class:`~repro.traversal.array_bfs.ArrayBFS` with its
  generation trick.

Algorithms are written once against the engine API (see
:mod:`repro.core.hbz`, :mod:`repro.core.peeling`, :mod:`repro.core.bounds`),
which is what guarantees both backends produce identical core numbers.

The bulk h-degree pass additionally selects an *executor* (``"serial"``,
``"thread"`` or ``"process"`` — see :data:`repro.core.parallel.EXECUTORS`).
The process executor is the only one that scales on CPython; on the CSR
engine it runs through the shared-memory subsystem (:mod:`repro.parallel`):
the flat arrays are exported once per snapshot generation, a persistent
worker pool attaches to the block, and :meth:`CSREngine.refresh` re-exports
with a bumped generation so workers never traverse a stale topology.
Engines that spun up a process pool own it — call :meth:`CSREngine.close`
(the facade does this for engines it resolved itself) to shut the pool down
and unlink the shared block; a GC finalizer backstops forgotten engines.

Engine contract
---------------
Handles are opaque to the algorithms; only the engine translates them back to
vertex labels (:meth:`label`, :meth:`labels_of`, :meth:`to_labels`).
``h_neighborhood`` and ``h_neighbors_with_distance`` return **materialized
snapshots** — the CSR scratch buffers are overwritten by the next traversal,
so lazily yielding from them would be a correctness bug.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ParameterError
from repro.graph.csr import CSRGraph, csr_suitable
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.runtime.workers import resolve_worker_count
from repro.traversal.array_bfs import AliveMask, ArrayBFS
from repro.traversal.bfs import h_bounded_neighbors
from repro.traversal.hneighborhood import h_degree as _dict_h_degree

#: Backend names accepted by the decomposition entry points.
BACKENDS = ("auto", "dict", "csr")


class DictEngine:
    """Reference engine over the dict-of-sets :class:`Graph`."""

    name = "dict"

    __slots__ = ("graph", "_process_delegate")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # Lazily-built CSREngine serving executor="process" bulk passes, so
        # one dict-backend decomposition spins the worker pool up once, not
        # once per pass (see bulk_h_degrees).
        self._process_delegate = None

    # -- handle space -------------------------------------------------- #
    def nodes(self) -> List[Vertex]:
        return list(self.graph.vertices())

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    def label(self, handle: Vertex) -> Vertex:
        return handle

    def handle_of(self, label: Vertex) -> Vertex:
        return label

    def labels_of(self, handles: Iterable[Vertex]) -> List[Vertex]:
        return list(handles)

    def to_labels(self, mapping) -> Dict[Vertex, int]:
        # Handles are the labels; dict-engine core maps are plain dicts.
        return mapping

    def degree(self, handle: Vertex) -> int:
        return self.graph.degree(handle)

    # -- alive sets ---------------------------------------------------- #
    def full_alive(self) -> set:
        return set(self.graph.vertices())

    def alive_subset(self, handles: Iterable[Vertex]) -> set:
        return set(handles)

    def refresh(self, touched=None) -> None:
        """Near no-op: the dict engine reads the live graph directly.

        Only the process-executor delegate (a CSR snapshot) needs syncing.
        """
        if self._process_delegate is not None:
            self._process_delegate.refresh(touched)

    def close(self) -> None:
        """Tear down the process-executor delegate's pool, if one was built."""
        delegate, self._process_delegate = self._process_delegate, None
        if delegate is not None:
            delegate.close()

    # -- traversal primitives ------------------------------------------ #
    def h_degree(self, handle: Vertex, h: int, alive=None,
                 counters: Counters = NULL_COUNTERS) -> int:
        return _dict_h_degree(self.graph, handle, h, alive=alive,
                              counters=counters)

    def h_neighborhood(self, handle: Vertex, h: int, alive=None,
                       counters: Counters = NULL_COUNTERS) -> List[Vertex]:
        return list(h_bounded_neighbors(self.graph, handle, h, alive=alive,
                                        counters=counters))

    def h_neighbors_with_distance(self, handle: Vertex, h: int, alive=None,
                                  counters: Counters = NULL_COUNTERS
                                  ) -> List[Tuple[Vertex, int]]:
        return list(h_bounded_neighbors(self.graph, handle, h, alive=alive,
                                        counters=counters).items())

    def bulk_h_degrees(self, h: int, targets=None, alive=None,
                       num_threads: Optional[int] = None,
                       counters: Counters = NULL_COUNTERS,
                       executor: str = "thread",
                       num_workers: Optional[int] = None) -> Dict[Vertex, int]:
        from repro.core.parallel import compute_h_degrees
        workers = resolve_worker_count(num_workers, num_threads)
        backend: object = "dict"
        if executor == "process" and workers > 1:
            # Process dispatch needs a CSR snapshot; cache one engine (and
            # its worker pool) across this engine's bulk passes instead of
            # paying a pool spin-up per pass.
            if self._process_delegate is None:
                self._process_delegate = CSREngine(self.graph)
            elif self._process_delegate.built_version != self.graph.version:
                self._process_delegate.refresh(None)
            backend = self._process_delegate
        return compute_h_degrees(self.graph, h, vertices=targets, alive=alive,
                                 num_workers=workers, counters=counters,
                                 backend=backend, executor=executor)


class CSREngine:
    """Array engine over a :class:`CSRGraph` snapshot; handles are indices."""

    name = "csr"

    __slots__ = ("graph", "csr", "_scratch", "built_version", "_shm_pool")

    def __init__(self, graph: Graph, csr: Optional[CSRGraph] = None) -> None:
        self.graph = graph
        self._shm_pool = None
        if csr is not None and (
                (csr.source_version is not None
                 and csr.source_version != graph.version)
                or csr.num_vertices != graph.num_vertices
                or csr.num_edges != graph.num_edges):
            # The built_version stamp below only vouches for snapshots
            # taken *now*, so validate a supplied snapshot here: its
            # recorded source version must match (catching equal-size
            # mutations like remove+add of an edge), with the size check as
            # a backstop for hand-assembled snapshots that carry no stamp.
            raise ParameterError(
                "the supplied CSR snapshot does not match the graph "
                "(was the graph mutated after CSRGraph.from_graph?)"
            )
        self.csr = csr if csr is not None else CSRGraph.from_graph(graph)
        self._scratch = ArrayBFS(self.csr)
        self.built_version = graph.version

    @property
    def scratch(self) -> ArrayBFS:
        """The engine's reusable BFS scratch (current for this snapshot).

        Exposed for the array-native peel kernels, which read the scratch's
        ``order`` / ``level_ends`` buffers directly instead of materializing
        per-neighbor lists.  Not thread-safe — same caveat as every other
        single-scratch traversal primitive on this engine.
        """
        return self._scratch

    def refresh(self, touched=None) -> None:
        """Re-snapshot a mutated graph, reusing untouched CSR rows.

        ``touched`` is the set of vertex labels whose adjacency may have
        changed since the snapshot (see :meth:`CSRGraph.rebuilt`); passing
        ``None`` forces a full rebuild.  Indices of surviving vertices are
        stable across a delta refresh, so handles held by callers remain
        valid.  No-op when the snapshot is already current.
        """
        if self.built_version == self.graph.version:
            return
        self.csr = self.csr.rebuilt(self.graph, touched)
        self._scratch = ArrayBFS(self.csr)
        self.built_version = self.graph.version
        if self._shm_pool is not None:
            # Version-stamped re-export: the worker pool survives the
            # refresh, but the stale block is unlinked now and the next
            # process dispatch exports the new snapshot under a bumped
            # generation (every dispatch calls ensure_export), so no worker
            # ever traverses the stale topology.  Invalidate-only keeps a
            # mutation stream from paying an O(n + m) export per refresh
            # when no dispatch happens in between.
            self._shm_pool.invalidate_export()

    def close(self) -> None:
        """Tear down the process pool and shared-memory export, if any.

        Idempotent; the engine remains usable afterwards (a later
        ``executor="process"`` bulk pass simply spins the pool up again).
        """
        pool, self._shm_pool = self._shm_pool, None
        if pool is not None:
            pool.close()

    def _process_pool(self, num_workers: int,
                      start_method: Optional[str] = None):
        """Return the persistent shared-memory executor, (re)building it
        when the requested worker count changes."""
        from repro.parallel.pool import SharedMemoryExecutor
        pool = self._shm_pool
        if pool is not None and (pool.closed
                                 or pool.num_workers != num_workers):
            # A failed dispatch tears its executor down; discard it here so
            # the next process request recovers with a fresh pool instead
            # of erroring forever on the cached corpse.
            pool.close()
            pool = None
        if pool is None:
            pool = SharedMemoryExecutor(num_workers,
                                        start_method=start_method)
            self._shm_pool = pool
        return pool

    # -- handle space -------------------------------------------------- #
    def nodes(self) -> range:
        return range(self.csr.num_vertices)

    @property
    def num_nodes(self) -> int:
        return self.csr.num_vertices

    def label(self, handle: int) -> Vertex:
        return self.csr.labels[handle]

    def handle_of(self, label: Vertex) -> int:
        return self.csr.index(label)

    def labels_of(self, handles: Iterable[int]) -> List[Vertex]:
        labels = self.csr.labels
        return [labels[i] for i in handles]

    def to_labels(self, mapping) -> Dict[Vertex, int]:
        # Accepts any ``items()``-bearing handle-keyed map — a dict or the
        # runtime's flat ArrayCoreMap.
        labels = self.csr.labels
        return {labels[i]: value for i, value in mapping.items()}

    def degree(self, handle: int) -> int:
        return self.csr.degree(handle)

    # -- alive sets ---------------------------------------------------- #
    def full_alive(self) -> AliveMask:
        return AliveMask.full(self.csr.num_vertices)

    def alive_subset(self, handles: Iterable[int]) -> AliveMask:
        return AliveMask.of(self.csr.num_vertices, handles)

    # -- traversal primitives ------------------------------------------ #
    def h_degree(self, handle: int, h: int, alive: Optional[AliveMask] = None,
                 counters: Counters = NULL_COUNTERS) -> int:
        return self._scratch.run(handle, h, alive, counters)

    def h_neighborhood(self, handle: int, h: int,
                       alive: Optional[AliveMask] = None,
                       counters: Counters = NULL_COUNTERS) -> List[int]:
        self._scratch.run(handle, h, alive, counters)
        return self._scratch.visited()

    def h_neighbors_with_distance(self, handle: int, h: int,
                                  alive: Optional[AliveMask] = None,
                                  counters: Counters = NULL_COUNTERS
                                  ) -> List[Tuple[int, int]]:
        self._scratch.run(handle, h, alive, counters)
        return self._scratch.visited_with_distance()

    def bulk_h_degrees(self, h: int, targets=None,
                       alive: Optional[AliveMask] = None,
                       num_threads: Optional[int] = None,
                       counters: Counters = NULL_COUNTERS,
                       executor: str = "thread",
                       num_workers: Optional[int] = None) -> Dict[int, int]:
        """h-degree of every target index, optionally across a worker pool.

        ``executor`` selects the scheduler (see
        :data:`repro.core.parallel.EXECUTORS`).  The thread path mirrors
        :func:`repro.core.parallel.compute_h_degrees`: each worker owns a
        private :class:`ArrayBFS` scratch (the shared one is not
        thread-safe) and a private :class:`Counters`, merged at the end.
        The process path exports the CSR arrays into shared memory once per
        snapshot generation and fans degree-weighted chunks out to a
        persistent worker pool (:mod:`repro.parallel`) — the only executor
        that scales on CPython.
        """
        from repro.core.parallel import _validate_executor
        _validate_executor(executor)
        workers = resolve_worker_count(num_workers, num_threads)
        if targets is None:
            targets = alive if alive is not None else range(self.csr.num_vertices)
        indices = list(targets)

        if executor == "process" and workers > 1 and len(indices) >= 2:
            indptr = self.csr.indptr
            weights = [indptr[i + 1] - indptr[i] for i in indices]
            pool = self._process_pool(workers)
            return pool.bulk_h_degrees(self.csr, h, indices, alive=alive,
                                       counters=counters, weights=weights)

        if workers <= 1 or len(indices) < 2 or executor == "serial":
            run = self._scratch.run
            result: Dict[int, int] = {}
            for i in indices:
                result[i] = run(i, h, alive, counters)
                counters.count_hdegree()
            return result

        from repro.core.parallel import map_batches

        def worker(batch, local: Counters) -> Dict[int, int]:
            # Private scratch per worker: ArrayBFS state is not thread-safe.
            # The shared mask is installed without hooking — workers only
            # read it, so sentinel upkeep stays with the engine's scratch.
            scratch = ArrayBFS(self.csr)
            out: Dict[int, int] = {}
            for i in batch:
                out[i] = scratch.run(i, h, alive, local, hook=False)
                local.count_hdegree()
            return out

        return map_batches(indices, workers, worker, counters)


Engine = Union[DictEngine, CSREngine]


def resolve_engine(graph: Graph, backend: Union[str, Engine] = "dict",
                   csr_threshold: Optional[int] = None) -> Engine:
    """Return the engine requested by ``backend`` for ``graph``.

    ``backend`` may be one of the names in :data:`BACKENDS` or an
    already-constructed engine (useful to amortize a CSR build across
    several decompositions of the same graph).  ``"auto"`` picks CSR for
    integer-friendly graphs (see :func:`~repro.graph.csr.csr_suitable`)
    and the dict reference engine otherwise; ``csr_threshold`` overrides the
    minimum vertex count for that choice (default: the
    ``KH_CORE_CSR_THRESHOLD`` environment variable).
    """
    if isinstance(backend, (DictEngine, CSREngine)):
        if backend.graph is not graph:
            raise ParameterError(
                "the supplied engine was built for a different graph"
            )
        if isinstance(backend, CSREngine) and (
                backend.built_version != graph.version):
            # The CSR snapshot is immutable; a mutated graph would silently
            # decompose the old topology.  The graph's version counter makes
            # this an exact staleness test — refresh the engine
            # (CSREngine.refresh) after any mutation.
            raise ParameterError(
                "the supplied CSR engine is stale: the graph was mutated "
                "after the snapshot was built (call engine.refresh() or "
                "rebuild with resolve_engine)"
            )
        return backend
    # Single source of truth for name validation and the "auto" policy.
    name = resolved_backend_name(graph, backend, csr_threshold)
    if name == "dict":
        return DictEngine(graph)
    return CSREngine(graph)


def resolved_backend_name(graph: Graph, backend: Union[str, Engine],
                          csr_threshold: Optional[int] = None) -> str:
    """Return the concrete backend name ``backend`` resolves to for ``graph``.

    Cheap (no engine is built): used by the CLI to surface which backend an
    ``"auto"`` request actually selected.
    """
    if isinstance(backend, (DictEngine, CSREngine)):
        return backend.name
    if backend == "auto":
        return "csr" if csr_suitable(graph, csr_threshold) else "dict"
    if backend in BACKENDS:
        return backend
    raise ParameterError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )

"""Backend engines: one peeling-primitive API over two graph representations.

The (k,h)-core algorithms only touch a graph through a handful of primitives
— h-degree, h-neighborhood, h-neighbors-with-distance, bulk h-degrees, and an
"alive" set restricting traversals to the surviving vertices.  This module
packages those primitives behind two interchangeable *engines*:

* :class:`DictEngine` — the reference implementation.  Handles are the
  original vertex objects, the alive set is a plain Python ``set``, and every
  primitive delegates to the dict-of-sets traversal code in
  :mod:`repro.traversal`.
* :class:`CSREngine` — the fast path.  The graph is snapshotted into a
  :class:`~repro.graph.csr.CSRGraph`, handles are vertex *indices*, the alive
  set is a byte mask (:class:`AliveMask`) and traversals run through the
  array-based :class:`~repro.traversal.array_bfs.ArrayBFS` with its
  generation trick.

Algorithms are written once against the engine API (see
:mod:`repro.core.hbz`, :mod:`repro.core.peeling`, :mod:`repro.core.bounds`),
which is what guarantees both backends produce identical core numbers.

Engine contract
---------------
Handles are opaque to the algorithms; only the engine translates them back to
vertex labels (:meth:`label`, :meth:`labels_of`, :meth:`to_labels`).
``h_neighborhood`` and ``h_neighbors_with_distance`` return **materialized
snapshots** — the CSR scratch buffers are overwritten by the next traversal,
so lazily yielding from them would be a correctness bug.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ParameterError
from repro.graph.csr import CSRGraph, csr_suitable
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.array_bfs import AliveMask, ArrayBFS
from repro.traversal.bfs import h_bounded_neighbors
from repro.traversal.hneighborhood import h_degree as _dict_h_degree

#: Backend names accepted by the decomposition entry points.
BACKENDS = ("auto", "dict", "csr")


class DictEngine:
    """Reference engine over the dict-of-sets :class:`Graph`."""

    name = "dict"

    __slots__ = ("graph",)

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # -- handle space -------------------------------------------------- #
    def nodes(self) -> List[Vertex]:
        return list(self.graph.vertices())

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    def label(self, handle: Vertex) -> Vertex:
        return handle

    def handle_of(self, label: Vertex) -> Vertex:
        return label

    def labels_of(self, handles: Iterable[Vertex]) -> List[Vertex]:
        return list(handles)

    def to_labels(self, mapping: Dict[Vertex, int]) -> Dict[Vertex, int]:
        return mapping

    def degree(self, handle: Vertex) -> int:
        return self.graph.degree(handle)

    # -- alive sets ---------------------------------------------------- #
    def full_alive(self) -> set:
        return set(self.graph.vertices())

    def alive_subset(self, handles: Iterable[Vertex]) -> set:
        return set(handles)

    def refresh(self, touched=None) -> None:
        """No-op: the dict engine reads the live graph, it has no snapshot."""

    # -- traversal primitives ------------------------------------------ #
    def h_degree(self, handle: Vertex, h: int, alive=None,
                 counters: Counters = NULL_COUNTERS) -> int:
        return _dict_h_degree(self.graph, handle, h, alive=alive,
                              counters=counters)

    def h_neighborhood(self, handle: Vertex, h: int, alive=None,
                       counters: Counters = NULL_COUNTERS) -> List[Vertex]:
        return list(h_bounded_neighbors(self.graph, handle, h, alive=alive,
                                        counters=counters))

    def h_neighbors_with_distance(self, handle: Vertex, h: int, alive=None,
                                  counters: Counters = NULL_COUNTERS
                                  ) -> List[Tuple[Vertex, int]]:
        return list(h_bounded_neighbors(self.graph, handle, h, alive=alive,
                                        counters=counters).items())

    def bulk_h_degrees(self, h: int, targets=None, alive=None,
                       num_threads: int = 1,
                       counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
        from repro.core.parallel import compute_h_degrees
        return compute_h_degrees(self.graph, h, vertices=targets, alive=alive,
                                 num_threads=num_threads, counters=counters)


class CSREngine:
    """Array engine over a :class:`CSRGraph` snapshot; handles are indices."""

    name = "csr"

    __slots__ = ("graph", "csr", "_scratch", "built_version")

    def __init__(self, graph: Graph, csr: Optional[CSRGraph] = None) -> None:
        self.graph = graph
        if csr is not None and (
                (csr.source_version is not None
                 and csr.source_version != graph.version)
                or csr.num_vertices != graph.num_vertices
                or csr.num_edges != graph.num_edges):
            # The built_version stamp below only vouches for snapshots
            # taken *now*, so validate a supplied snapshot here: its
            # recorded source version must match (catching equal-size
            # mutations like remove+add of an edge), with the size check as
            # a backstop for hand-assembled snapshots that carry no stamp.
            raise ParameterError(
                "the supplied CSR snapshot does not match the graph "
                "(was the graph mutated after CSRGraph.from_graph?)"
            )
        self.csr = csr if csr is not None else CSRGraph.from_graph(graph)
        self._scratch = ArrayBFS(self.csr)
        self.built_version = graph.version

    def refresh(self, touched=None) -> None:
        """Re-snapshot a mutated graph, reusing untouched CSR rows.

        ``touched`` is the set of vertex labels whose adjacency may have
        changed since the snapshot (see :meth:`CSRGraph.rebuilt`); passing
        ``None`` forces a full rebuild.  Indices of surviving vertices are
        stable across a delta refresh, so handles held by callers remain
        valid.  No-op when the snapshot is already current.
        """
        if self.built_version == self.graph.version:
            return
        self.csr = self.csr.rebuilt(self.graph, touched)
        self._scratch = ArrayBFS(self.csr)
        self.built_version = self.graph.version

    # -- handle space -------------------------------------------------- #
    def nodes(self) -> range:
        return range(self.csr.num_vertices)

    @property
    def num_nodes(self) -> int:
        return self.csr.num_vertices

    def label(self, handle: int) -> Vertex:
        return self.csr.labels[handle]

    def handle_of(self, label: Vertex) -> int:
        return self.csr.index(label)

    def labels_of(self, handles: Iterable[int]) -> List[Vertex]:
        labels = self.csr.labels
        return [labels[i] for i in handles]

    def to_labels(self, mapping: Dict[int, int]) -> Dict[Vertex, int]:
        labels = self.csr.labels
        return {labels[i]: value for i, value in mapping.items()}

    def degree(self, handle: int) -> int:
        return self.csr.degree(handle)

    # -- alive sets ---------------------------------------------------- #
    def full_alive(self) -> AliveMask:
        return AliveMask.full(self.csr.num_vertices)

    def alive_subset(self, handles: Iterable[int]) -> AliveMask:
        return AliveMask.of(self.csr.num_vertices, handles)

    # -- traversal primitives ------------------------------------------ #
    def h_degree(self, handle: int, h: int, alive: Optional[AliveMask] = None,
                 counters: Counters = NULL_COUNTERS) -> int:
        return self._scratch.run(handle, h, alive, counters)

    def h_neighborhood(self, handle: int, h: int,
                       alive: Optional[AliveMask] = None,
                       counters: Counters = NULL_COUNTERS) -> List[int]:
        self._scratch.run(handle, h, alive, counters)
        return self._scratch.visited()

    def h_neighbors_with_distance(self, handle: int, h: int,
                                  alive: Optional[AliveMask] = None,
                                  counters: Counters = NULL_COUNTERS
                                  ) -> List[Tuple[int, int]]:
        self._scratch.run(handle, h, alive, counters)
        return self._scratch.visited_with_distance()

    def bulk_h_degrees(self, h: int, targets=None,
                       alive: Optional[AliveMask] = None,
                       num_threads: int = 1,
                       counters: Counters = NULL_COUNTERS) -> Dict[int, int]:
        """h-degree of every target index, optionally across a thread pool.

        Mirrors :func:`repro.core.parallel.compute_h_degrees`: each worker
        owns a private :class:`ArrayBFS` scratch (the shared one is not
        thread-safe) and a private :class:`Counters`, merged at the end.
        """
        if targets is None:
            targets = alive if alive is not None else range(self.csr.num_vertices)
        indices = list(targets)

        if num_threads <= 1 or len(indices) < 2:
            run = self._scratch.run
            result: Dict[int, int] = {}
            for i in indices:
                result[i] = run(i, h, alive, counters)
                counters.count_hdegree()
            return result

        from repro.core.parallel import map_batches

        def worker(batch, local: Counters) -> Dict[int, int]:
            # Private scratch per worker: ArrayBFS state is not thread-safe.
            # The shared mask is installed without hooking — workers only
            # read it, so sentinel upkeep stays with the engine's scratch.
            scratch = ArrayBFS(self.csr)
            out: Dict[int, int] = {}
            for i in batch:
                out[i] = scratch.run(i, h, alive, local, hook=False)
                local.count_hdegree()
            return out

        return map_batches(indices, num_threads, worker, counters)


Engine = Union[DictEngine, CSREngine]


def resolve_engine(graph: Graph, backend: Union[str, Engine] = "dict",
                   csr_threshold: Optional[int] = None) -> Engine:
    """Return the engine requested by ``backend`` for ``graph``.

    ``backend`` may be one of the names in :data:`BACKENDS` or an
    already-constructed engine (useful to amortize a CSR build across
    several decompositions of the same graph).  ``"auto"`` picks CSR for
    integer-friendly graphs (see :func:`~repro.graph.csr.csr_suitable`)
    and the dict reference engine otherwise; ``csr_threshold`` overrides the
    minimum vertex count for that choice (default: the
    ``KH_CORE_CSR_THRESHOLD`` environment variable).
    """
    if isinstance(backend, (DictEngine, CSREngine)):
        if backend.graph is not graph:
            raise ParameterError(
                "the supplied engine was built for a different graph"
            )
        if isinstance(backend, CSREngine) and (
                backend.built_version != graph.version):
            # The CSR snapshot is immutable; a mutated graph would silently
            # decompose the old topology.  The graph's version counter makes
            # this an exact staleness test — refresh the engine
            # (CSREngine.refresh) after any mutation.
            raise ParameterError(
                "the supplied CSR engine is stale: the graph was mutated "
                "after the snapshot was built (call engine.refresh() or "
                "rebuild with resolve_engine)"
            )
        return backend
    # Single source of truth for name validation and the "auto" policy.
    name = resolved_backend_name(graph, backend, csr_threshold)
    if name == "dict":
        return DictEngine(graph)
    return CSREngine(graph)


def resolved_backend_name(graph: Graph, backend: Union[str, Engine],
                          csr_threshold: Optional[int] = None) -> str:
    """Return the concrete backend name ``backend`` resolves to for ``graph``.

    Cheap (no engine is built): used by the CLI to surface which backend an
    ``"auto"`` request actually selected.
    """
    if isinstance(backend, (DictEngine, CSREngine)):
        return backend.name
    if backend == "auto":
        return "csr" if csr_suitable(graph, csr_threshold) else "dict"
    if backend in BACKENDS:
        return backend
    raise ParameterError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )

"""The bucket structure used by all peeling algorithms.

The paper (§4.1, footnote 2) models the bucket vector ``B`` as a *vector of
lists* rather than the flat array used by Khaouid et al. for the classic
decomposition, because deleting one vertex can decrease the h-degree of an
h-neighbor by more than 1, and a flat array would need a linear number of
swaps per move.  :class:`BucketQueue` keeps one set per degree value plus a
position map, so insert / move / pop are all O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.instrumentation import Counters, NULL_COUNTERS

Vertex = Hashable


class BucketQueue:
    """Vertices bucketed by an integer key, with O(1) moves.

    The decomposition algorithms drive the bucket index ``k`` externally, so
    this class only provides the storage: :meth:`insert`, :meth:`move`,
    :meth:`pop_from`, :meth:`remove` and emptiness checks.
    """

    __slots__ = ("_buckets", "_position", "_counters")

    def __init__(self, counters: Counters = NULL_COUNTERS) -> None:
        self._buckets: Dict[int, Set[Vertex]] = {}
        self._position: Dict[Vertex, int] = {}
        self._counters = counters

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._position

    def insert(self, vertex: Vertex, key: int) -> None:
        """Insert ``vertex`` with bucket ``key`` (it must not be present)."""
        if vertex in self._position:
            raise ValueError(f"vertex {vertex!r} is already in the bucket queue")
        if key < 0:
            raise ValueError("bucket keys must be non-negative")
        self._buckets.setdefault(key, set()).add(vertex)
        self._position[vertex] = key

    def move(self, vertex: Vertex, key: int) -> None:
        """Move ``vertex`` to bucket ``key`` (no-op if it is already there)."""
        current = self._position.get(vertex)
        if current is None:
            raise KeyError(f"vertex {vertex!r} is not in the bucket queue")
        if current == key:
            return
        if key < 0:
            raise ValueError("bucket keys must be non-negative")
        bucket = self._buckets[current]
        bucket.discard(vertex)
        if not bucket:
            del self._buckets[current]
        self._buckets.setdefault(key, set()).add(vertex)
        self._position[vertex] = key
        self._counters.record_bucket_move()

    def key_of(self, vertex: Vertex) -> int:
        """Return the current bucket key of ``vertex``."""
        return self._position[vertex]

    def remove(self, vertex: Vertex) -> None:
        """Remove ``vertex`` from the queue entirely."""
        key = self._position.pop(vertex)
        bucket = self._buckets[key]
        bucket.discard(vertex)
        if not bucket:
            del self._buckets[key]

    def is_empty(self, key: int) -> bool:
        """Return True if bucket ``key`` contains no vertices."""
        return not self._buckets.get(key)

    def pop_from(self, key: int) -> Optional[Vertex]:
        """Pop and return an arbitrary vertex from bucket ``key`` (or None)."""
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        vertex = bucket.pop()
        if not bucket:
            del self._buckets[key]
        del self._position[vertex]
        return vertex

    def occupied_keys(self) -> List[int]:
        """Return the sorted list of non-empty bucket keys."""
        return sorted(self._buckets)

    def min_key(self) -> Optional[int]:
        """Return the smallest non-empty bucket key, or None if empty."""
        return min(self._buckets) if self._buckets else None

    def clear(self) -> None:
        """Remove every vertex."""
        self._buckets.clear()
        self._position.clear()

"""Distance-generalized core decomposition — the paper's primary contribution.

Public entry points:

* :func:`repro.core.core_decomposition` — unified facade (algorithm dispatch).
* :func:`repro.core.h_bz`, :func:`repro.core.h_lb`, :func:`repro.core.h_lb_ub`
  — the three exact algorithms of §4.
* :func:`repro.core.classic_core_decomposition` — classic k-core (h = 1).
* Bounds: :func:`repro.core.lower_bound_lb1`, :func:`repro.core.lower_bound_lb2`,
  :func:`repro.core.upper_bound`, :func:`repro.core.improve_lb`.
* Oracles: :func:`repro.core.naive_core_decomposition`,
  :func:`repro.core.naive_kh_core`.
"""

from repro.core.backends import (
    BACKENDS,
    AliveMask,
    CSREngine,
    DictEngine,
    NativeEngine,
    NumpyEngine,
    native_available,
    numpy_available,
    resolve_engine,
)
from repro.core.buckets import BucketQueue
from repro.core.result import CoreDecomposition
from repro.core.classic import classic_core_decomposition, classic_core_indices
from repro.core.naive import (
    naive_core_decomposition,
    naive_core_index_by_membership,
    naive_kh_core,
)
from repro.core.bounds import (
    lower_bound_lb1,
    lower_bound_lb2,
    upper_bound,
    improve_lb,
)
from repro.core.hbz import h_bz
from repro.core.hlb import h_lb
from repro.core.hlbub import h_lb_ub, build_partitions
from repro.core.parallel import EXECUTORS, chunk_plan, compute_h_degrees, map_batches
from repro.core.decomposition import (
    ALGORITHMS,
    core_decomposition,
    core_decomposition_with_report,
)
from repro.core.spectrum import VertexSpectrum, core_spectrum

__all__ = [
    "BACKENDS",
    "AliveMask",
    "CSREngine",
    "DictEngine",
    "NativeEngine",
    "NumpyEngine",
    "native_available",
    "numpy_available",
    "resolve_engine",
    "BucketQueue",
    "CoreDecomposition",
    "classic_core_decomposition",
    "classic_core_indices",
    "naive_core_decomposition",
    "naive_core_index_by_membership",
    "naive_kh_core",
    "lower_bound_lb1",
    "lower_bound_lb2",
    "upper_bound",
    "improve_lb",
    "h_bz",
    "h_lb",
    "h_lb_ub",
    "build_partitions",
    "compute_h_degrees",
    "chunk_plan",
    "map_batches",
    "ALGORITHMS",
    "EXECUTORS",
    "core_decomposition",
    "core_decomposition_with_report",
    "VertexSpectrum",
    "core_spectrum",
]

"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses signal problems with
graph construction, algorithm parameters, or experiment configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Problem with a graph's structure or with an operation on it."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex identifier was not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class ParameterError(ReproError, ValueError):
    """An algorithm received an invalid parameter value."""


class InvalidDistanceThresholdError(ParameterError):
    """The distance threshold ``h`` must be a positive integer."""

    def __init__(self, h: object) -> None:
        super().__init__(f"distance threshold h must be a positive integer, got {h!r}")
        self.h = h


class GraphFormatError(GraphError):
    """A graph file could not be parsed."""


class DatasetNotFoundError(ReproError, KeyError):
    """A named dataset is not present in the dataset registry."""

    def __init__(self, name: str, available: tuple) -> None:
        super().__init__(
            f"unknown dataset {name!r}; available datasets: {', '.join(available)}"
        )
        self.name = name
        self.available = available


class DatasetChecksumError(ReproError):
    """A downloaded dataset's bytes do not match the recorded checksum.

    Raised by :func:`repro.datasets.fetch.fetch_dataset` both for a
    mismatch against a pinned checksum in the spec and against the
    trust-on-first-use sidecar recorded by an earlier fetch.
    """

    def __init__(self, name: str, expected: str, actual: str) -> None:
        super().__init__(
            f"dataset {name!r}: checksum mismatch (expected {expected}, "
            f"got {actual}); delete the cached file to re-download"
        )
        self.name = name
        self.expected = expected
        self.actual = actual


class CoreIndexError(ReproError):
    """Problem with a persistent core-index store (see :mod:`repro.index`)."""


class IndexCorruptionError(CoreIndexError):
    """A core-index database is unreadable, incomplete or fails checksums.

    Raised instead of ever returning answers from a store that cannot be
    proven to describe a consistent epoch (truncated file, interrupted
    build, checksum mismatch, schema from a different library version).
    """


class IndexMismatchError(CoreIndexError):
    """A core index describes a different graph than the one supplied."""


class StaleIndexError(CoreIndexError):
    """The requested index artifact is stale at the current epoch.

    Incremental refreshes keep the core tables exact but invalidate the
    persisted removal orders (a re-peel of a dirty region does not produce
    a global peeling order); asking for an order afterwards raises this
    instead of returning an order from an older epoch.
    """


class ResilienceError(ReproError):
    """Problem inside the fault-tolerant execution layer (:mod:`repro.resilience`)."""


class WorkerPoolError(ResilienceError):
    """The supervised worker pool exhausted its retry / rebuild budget.

    Raised by :class:`~repro.resilience.supervisor.SupervisedExecutor` when a
    dispatch cannot be completed within the configured
    :class:`~repro.resilience.policies.RetryPolicy` — the signal for the
    engine's degradation ladder to fall back to the thread (then serial)
    executor instead of failing the decomposition.
    """


class DeadlineExceededError(ResilienceError):
    """A supervised operation ran past its configured deadline budget."""

    def __init__(self, message: str, budget_seconds: float) -> None:
        super().__init__(message)
        self.budget_seconds = budget_seconds


class ServiceOverloadedError(ResilienceError):
    """The query service shed a request under overload (HTTP 503).

    Raised before any engine work happens, so a shed request has no side
    effects; the HTTP layer maps it to ``503`` with a ``Retry-After`` header.
    """


class FaultInjectedError(ResilienceError):
    """A deterministic fault-injection point fired (chaos testing only).

    Never raised unless a :class:`~repro.resilience.faults.FaultPlan` is
    armed (programmatically or via ``KH_CORE_FAULTS``); production runs with
    no plan armed can never see this error.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        message = f"injected fault at {site!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.site = site


class SolverTimeoutError(ReproError):
    """An exact solver exceeded its configured time budget."""

    def __init__(self, budget_seconds: float) -> None:
        super().__init__(f"solver exceeded its time budget of {budget_seconds:.1f}s")
        self.budget_seconds = budget_seconds


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or cannot be run."""

"""Connected components."""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

from repro.graph.graph import Graph, Vertex


def connected_components(graph: Graph,
                         alive: Optional[Set[Vertex]] = None) -> List[Set[Vertex]]:
    """Return the connected components (as vertex sets) of ``graph``.

    If ``alive`` is given, components are computed in the induced subgraph.
    """
    universe = set(alive) if alive is not None else set(graph.vertices())
    components: List[Set[Vertex]] = []
    unvisited = set(universe)
    while unvisited:
        start = next(iter(unvisited))
        component = {start}
        queue = deque([start])
        unvisited.discard(start)
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in unvisited:
                    unvisited.discard(u)
                    component.add(u)
                    queue.append(u)
        components.append(component)
    return components


def is_connected(graph: Graph, alive: Optional[Set[Vertex]] = None) -> bool:
    """Return True if the (induced) graph is connected (empty graphs count as connected)."""
    components = connected_components(graph, alive=alive)
    return len(components) <= 1


def largest_component(graph: Graph,
                      alive: Optional[Set[Vertex]] = None) -> Set[Vertex]:
    """Return the vertex set of the largest connected component (empty set if none)."""
    components = connected_components(graph, alive=alive)
    if not components:
        return set()
    return max(components, key=len)


def same_component(graph: Graph, vertices: Set[Vertex],
                   alive: Optional[Set[Vertex]] = None) -> bool:
    """Return True if all ``vertices`` lie in one connected component.

    Used by the cocktail-party (community search) application, which must
    check that the query vertices are connected inside a candidate core.
    """
    if not vertices:
        return True
    components = connected_components(graph, alive=alive)
    for component in components:
        if vertices <= component:
            return True
    return False

"""Shortest-path distances, eccentricities and diameters (unweighted)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.graph import Graph, Vertex
from repro.traversal.bfs import bfs_distances


def single_source_distances(graph: Graph, source: Vertex,
                            alive: Optional[Set[Vertex]] = None) -> Dict[Vertex, int]:
    """Return shortest-path distances from ``source`` to all reachable vertices."""
    return bfs_distances(graph, source, alive=alive)


def shortest_path_distance(graph: Graph, u: Vertex, v: Vertex,
                           alive: Optional[Set[Vertex]] = None) -> Optional[int]:
    """Return ``d(u, v)``, or ``None`` if ``v`` is unreachable from ``u``."""
    if v not in graph:
        raise VertexNotFoundError(v)
    distances = bfs_distances(graph, u, alive=alive)
    return distances.get(v)


def all_pairs_distances(graph: Graph,
                        vertices: Optional[Iterable[Vertex]] = None
                        ) -> Dict[Vertex, Dict[Vertex, int]]:
    """Return the distance map from every vertex (or every listed vertex).

    Quadratic in the graph size; intended for small graphs, oracles in tests,
    and the landmark-quality evaluation.
    """
    sources = list(vertices) if vertices is not None else list(graph.vertices())
    return {s: bfs_distances(graph, s) for s in sources}


def eccentricity(graph: Graph, vertex: Vertex,
                 alive: Optional[Set[Vertex]] = None) -> int:
    """Return the eccentricity of ``vertex`` within its connected component."""
    distances = bfs_distances(graph, vertex, alive=alive)
    return max(distances.values()) if distances else 0


def diameter(graph: Graph) -> int:
    """Return the exact diameter of a connected graph.

    Raises
    ------
    GraphError
        If the graph is empty or disconnected.
    """
    if graph.num_vertices == 0:
        raise GraphError("the empty graph has no diameter")
    best = 0
    expected = graph.num_vertices
    for v in graph.vertices():
        distances = bfs_distances(graph, v)
        if len(distances) != expected:
            raise GraphError("diameter is undefined for disconnected graphs")
        best = max(best, max(distances.values()))
    return best


def double_sweep_diameter_estimate(graph: Graph, sweeps: int = 4) -> int:
    """Return a double-sweep lower-bound estimate of the diameter.

    Repeatedly: BFS from the current start vertex, jump to the farthest vertex
    found, and BFS again.  Exact on trees and typically within one or two hops
    of the true diameter on real networks; used for Table 1 on graphs that are
    too large for the exact all-BFS computation.
    """
    if graph.num_vertices == 0:
        raise GraphError("the empty graph has no diameter")
    start = next(iter(graph.vertices()))
    best = 0
    for _ in range(max(1, sweeps)):
        distances = bfs_distances(graph, start)
        farthest = max(distances, key=distances.get)
        best = max(best, distances[farthest])
        if farthest == start:
            break
        start = farthest
    return best


def induced_diameter_at_most(graph: Graph, vertices: Set[Vertex], h: int) -> bool:
    """Return True if the subgraph induced by ``vertices`` has diameter <= h.

    This is the verification predicate for h-clubs (Definition 5): every pair
    of vertices must be within distance ``h`` *using only edges inside the
    induced subgraph*.
    """
    if not vertices:
        return True
    for v in vertices:
        distances = bfs_distances(graph, v, alive=vertices)
        for u in vertices:
            if u == v:
                continue
            if u not in distances or distances[u] > h:
                return False
    return True

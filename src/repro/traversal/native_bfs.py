"""Compiled h-bounded BFS kernels over CSR arrays (the ``native`` engine).

This is the fourth traversal tier, above the dict-of-sets reference BFS
(:mod:`repro.traversal.bfs`), the interpreted flat-array loop
(:mod:`repro.traversal.array_bfs`) and the vectorized NumPy kernels
(:mod:`repro.traversal.numpy_bfs`).  The motivation is the residual the
BENCH_PR5 matrix exposed: the NumPy engine wins 12-31x on dense bulk passes
but only ~2.4-2.8x on *frontier-bound* workloads (sparse meshes, small-world
rings), where per-level dispatch overhead dominates — and the thread
executor adds nothing anywhere, because every kernel holds the GIL.  Both
residuals have the same cure: compile the level loop itself.

* **One JIT-compiled loop per traversal.**  The kernels here are the
  interpreted :class:`~repro.traversal.array_bfs.ArrayBFS` loop transcribed
  into Numba ``@njit`` functions over contiguous ``int64`` arrays — same
  visit order (frontier vertices in discovery order, neighbors in adjacency
  order), same generation-stamped ``seen`` marks, same ``DEAD`` sentinel
  folding for alive masks.  No per-level Python dispatch, no boxing: the
  whole h-bounded BFS is one compiled call.
* **``nogil=True`` makes threads real.**  The compiled kernels release the
  GIL for their entire run, so the existing ``executor="thread"`` fan-out
  (:func:`repro.core.parallel.map_batches` over ``chunk_plan`` batches)
  becomes an actual parallelism path: worker threads traverse the *shared*
  CSR arrays concurrently with zero export/IPC cost — the shared-memory
  process pool's win without its setup tax.
* **``cache=True`` persists compilation.**  Compiled kernels land in the
  on-disk Numba cache (``__pycache__`` next to this module, or
  ``NUMBA_CACHE_DIR``), so the first-call JIT latency is paid once per
  machine, not once per process.  :func:`warmup_kernels` forces compilation
  eagerly — engines call it at construction (see
  :class:`~repro.core.backends.NativeEngine`) so steady-state timings never
  include compile time.

Numba is an optional extra (``pip install kh-core-repro[native]``).  When it
is absent the module still imports (it only hard-requires NumPy) and the
kernels run as plain interpreted Python over ndarrays — bit-identical
results, none of the speed.  That interpreted mode is deliberately reachable
(``KH_CORE_NATIVE_ALLOW_INTERPRETED=1``) so the full parity battery can
exercise every engine codepath on machines without a working Numba; the
engine resolver (:func:`repro.core.backends.native_available`) never selects
the native engine in production without the real compiler.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.array_bfs import DEAD, AliveMask
from repro.traversal.numpy_bfs import _alive_view

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the no-native CI leg
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):  # type: ignore[no-redef]
        """Identity stand-in: kernels run as interpreted Python."""

        def decorate(func):
            return func

        return decorate


def native_kernels_enabled() -> bool:
    """True when the kernels below actually run compiled (or are allowed not to).

    Numba importable means compiled; ``KH_CORE_NATIVE_ALLOW_INTERPRETED=1``
    opts into the interpreted fallback (a test/debug lever — identical
    results, none of the speed).  The shared-memory worker consults this to
    decide whether a ``native`` task downgrades to the NumPy or interpreted
    kernel.
    """
    if NUMBA_AVAILABLE:
        return True
    return os.environ.get("KH_CORE_NATIVE_ALLOW_INTERPRETED", "") not in (
        "",
        "0",
    )


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
# Both kernels are the ArrayBFS loop over flat int64 arrays, written in the
# Numba-compilable subset (typed scalars, preallocated output arrays, no
# Python containers).  ``h < 0`` encodes "unbounded" — Optional arguments
# would force object mode.  The frontier lives *inside* the order/queue
# array (levels are contiguous segments), which is exactly how the
# interpreted loop builds its visit order, so removal orders downstream are
# bit-identical across engines.


@_njit(nogil=True, cache=True)
def _bfs_kernel(indptr, adjacency, seen, order, level_ends, source, h, generation):
    """Single-source h-bounded BFS; fills ``order`` / ``level_ends``.

    Returns ``(total, levels)``: visited count including the source, and the
    number of level segments written to ``level_ends`` (cumulative ends,
    ``level_ends[0] == 1`` for the source's own segment).
    """
    seen[source] = generation
    order[0] = source
    level_ends[0] = 1
    levels = 1
    frontier_start = 0
    frontier_end = 1
    depth = 0
    while frontier_end > frontier_start and (h < 0 or depth < h):
        depth += 1
        write = frontier_end
        for i in range(frontier_start, frontier_end):
            v = order[i]
            for j in range(indptr[v], indptr[v + 1]):
                u = adjacency[j]
                if seen[u] < generation:
                    seen[u] = generation
                    order[write] = u
                    write += 1
        if write == frontier_end:
            break
        frontier_start = frontier_end
        frontier_end = write
        level_ends[levels] = write
        levels += 1
    return frontier_end, levels


@_njit(nogil=True, cache=True)
def _bulk_kernel(
    indptr, adjacency, seen, queue, sources, out, h, generation, use_alive, alive
):
    """h-degree of every source: one compiled loop over all traversals.

    ``seen`` carries plain generation stamps (no DEAD folding — deaths are
    tested against ``alive`` directly, matching the NumPy bulk kernel's
    vectorized frontier filter).  Returns the last generation used so the
    caller can keep the scratch's counter in sync across calls.
    """
    gen = generation
    for s in range(sources.shape[0]):
        gen += 1
        source = sources[s]
        seen[source] = gen
        queue[0] = source
        frontier_start = 0
        frontier_end = 1
        depth = 0
        while frontier_end > frontier_start and (h < 0 or depth < h):
            depth += 1
            write = frontier_end
            for i in range(frontier_start, frontier_end):
                v = queue[i]
                for j in range(indptr[v], indptr[v + 1]):
                    u = adjacency[j]
                    if seen[u] < gen and (not use_alive or alive[u] != 0):
                        seen[u] = gen
                        queue[write] = u
                        write += 1
            frontier_start = frontier_end
            frontier_end = write
        out[s] = frontier_end - 1
    return gen


_WARMED = False


def warmup_kernels() -> None:
    """Force JIT compilation (or cache load) of both kernels, once.

    Engines call this at construction (gated by ``KH_CORE_NATIVE_WARMUP``)
    so the first *measured* traversal runs at steady-state speed — compile
    latency must never pollute benchmarks, and with ``cache=True`` the cost
    after the first process on a machine is a cache read, not a compile.
    Idempotent and cheap to re-call.
    """
    global _WARMED
    if _WARMED:
        return
    indptr = np.array([0, 1, 2], dtype=np.int64)
    adjacency = np.array([1, 0], dtype=np.int64)
    seen = np.zeros(2, dtype=np.int64)
    order = np.zeros(2, dtype=np.int64)
    level_ends = np.zeros(3, dtype=np.int64)
    _bfs_kernel(indptr, adjacency, seen, order, level_ends, 0, 1, 1)
    out = np.zeros(2, dtype=np.int64)
    alive = np.ones(2, dtype=np.uint8)
    sources = np.array([0, 1], dtype=np.int64)
    _bulk_kernel(
        indptr, adjacency, seen, order, sources, out, 1, 2, False, alive
    )
    _bulk_kernel(
        indptr, adjacency, seen, order, sources, out, 1, 4, True, alive
    )
    _WARMED = True


def _as_int64(values: object) -> "np.ndarray":
    """Contiguous int64 ndarray view/copy of ``values``.

    int64 on purpose (where the NumPy scratch prefers int32): one dtype
    means one compiled specialization of each kernel, shared by every
    snapshot — RAM lists, mmap casts and zero-copy shm views alike.
    """
    return np.ascontiguousarray(values, dtype=np.int64)


class NativeBFS:
    """Reusable compiled-BFS scratch over one CSR snapshot.

    Drop-in structural twin of :class:`~repro.traversal.array_bfs.ArrayBFS`
    and :class:`~repro.traversal.numpy_bfs.NumpyBFS`: same constructor shape
    (anything exposing ``indptr`` / ``adjacency`` / ``num_vertices``), same
    :meth:`run` contract, same ``order`` / ``level_ends`` buffers the array
    peel kernels read directly, and the same :class:`AliveMask`
    install/discard protocol — which is what lets the ``native`` engine
    drive the *unchanged* peel kernels and produce bit-identical removal
    orders.  Not thread-safe; clone per worker via :meth:`clone` (the CSR
    arrays are shared, only the scratch buffers are private — and because
    the kernels release the GIL, cloned scratches genuinely run in
    parallel on a thread pool).
    """

    __slots__ = (
        "indptr",
        "adjacency",
        "num_vertices",
        "order",
        "level_ends",
        "_seen",
        "_order_buf",
        "_ends_buf",
        "_generation",
        "_active",
        "_bulk_seen",
        "_bulk_queue",
        "_bulk_generation",
    )

    def __init__(self, csr: object) -> None:
        self.indptr = _as_int64(csr.indptr)
        self.adjacency = _as_int64(csr.adjacency)
        self.num_vertices = int(csr.num_vertices)
        self.order: List[int] = []
        self.level_ends: List[int] = []
        n = max(1, self.num_vertices)
        self._seen = np.zeros(self.num_vertices, dtype=np.int64)
        self._order_buf = np.zeros(n, dtype=np.int64)
        self._ends_buf = np.zeros(n + 1, dtype=np.int64)
        self._generation = 0
        self._active: Optional[AliveMask] = None
        # Bulk-mode scratch, allocated lazily: plain generation stamps (no
        # DEAD folding) plus the shared frontier queue.
        self._bulk_seen: Optional["np.ndarray"] = None
        self._bulk_queue: Optional["np.ndarray"] = None
        self._bulk_generation = 0

    @classmethod
    def from_arrays(cls, indptr: "np.ndarray", adjacency: "np.ndarray") -> "NativeBFS":
        """Build a scratch over pre-existing arrays (no copy when int64).

        Used by the shared-memory workers, whose arrays are zero-copy
        ``np.frombuffer`` views of the shared block, and by :meth:`clone`.
        """
        return cls(_CSRArrays(indptr, adjacency))

    def clone(self) -> "NativeBFS":
        """A new scratch sharing this one's CSR arrays (for worker threads)."""
        return NativeBFS.from_arrays(self.indptr, self.adjacency)

    # ------------------------------------------------------------------ #
    # single-source traversal (peel hot path)
    # ------------------------------------------------------------------ #
    def _install(self, alive: Optional[AliveMask], hook: bool) -> None:
        """Rebuild ``seen`` for a new alive context (O(n), vectorized).

        Identical protocol to the NumPy scratch: dead vertices get the
        integer ``DEAD`` sentinel, and with ``hook`` the mask receives a
        back-reference so ``AliveMask.discard`` keeps the sentinels current.
        """
        previous = self._active
        if previous is not None and previous._seen is self._seen:
            previous._seen = None
        if alive is None:
            self._seen = np.zeros(self.num_vertices, dtype=np.int64)
        else:
            seen = np.full(self.num_vertices, DEAD, dtype=np.int64)
            mask = _alive_view(alive)
            if mask is not None and mask.size:
                seen[mask != 0] = 0
            self._seen = seen
            if hook:
                alive._seen = self._seen
        self._active = alive

    def run(
        self,
        source: int,
        h: Optional[int],
        alive: Optional[AliveMask] = None,
        counters: Counters = NULL_COUNTERS,
        hook: bool = True,
    ) -> int:
        """BFS from index ``source`` truncated at depth ``h``.

        Identical contract (and identical visit order, level segmentation
        and counter recording) to :meth:`ArrayBFS.run
        <repro.traversal.array_bfs.ArrayBFS.run>`; the level loop runs as
        one compiled, GIL-releasing kernel call.
        """
        if alive is not self._active:
            self._install(alive, hook)
        if self._generation + 1 >= DEAD:
            # Same rollover guard as ArrayBFS: reinstalling resets every
            # stamp to 0/DEAD, so restarting from generation 1 is sound.
            self._install(self._active, hook)
            self._generation = 0
        self._generation += 1
        total, levels = _bfs_kernel(
            self.indptr,
            self.adjacency,
            self._seen,
            self._order_buf,
            self._ends_buf,
            source,
            -1 if h is None else h,
            self._generation,
        )
        self.order = self._order_buf[:total].tolist()
        self.level_ends = self._ends_buf[:levels].tolist()
        counters.record_bfs(total - 1)
        return total - 1

    def visited(self) -> List[int]:
        """Visited vertex indices of the last run, source excluded (a copy)."""
        return self.order[1:]

    def visited_with_distance(self) -> List[Tuple[int, int]]:
        """``(index, distance)`` pairs of the last run, source excluded."""
        out: List[Tuple[int, int]] = []
        order = self.order
        start = 1
        for depth, end in enumerate(self.level_ends[1:], start=1):
            out.extend((u, depth) for u in order[start:end])
            start = end
        return out

    # ------------------------------------------------------------------ #
    # many-sources bulk mode (the initial h-degree pass)
    # ------------------------------------------------------------------ #
    def bulk(
        self,
        sources: Sequence[int],
        h: Optional[int],
        alive: Union[AliveMask, "np.ndarray", None] = None,
        counters: Counters = NULL_COUNTERS,
    ) -> "np.ndarray":
        """h-degree of every source, one compiled kernel call for all of them.

        ``alive`` may be an :class:`AliveMask`, a raw ``uint8`` ndarray view
        (the shared-memory workers pass the mapped region directly), or
        ``None``.  Records one BFS per source into ``counters`` (batch
        form; totals identical to the per-source engines).  Returns an
        int64 ndarray aligned with ``sources``.
        """
        src = _as_int64(list(sources))
        out = np.zeros(src.size, dtype=np.int64)
        if src.size == 0:
            counters.record_bfs_batch(0, 0)
            return out
        n = self.num_vertices
        if self._bulk_seen is None:
            self._bulk_seen = np.zeros(n, dtype=np.int64)
            self._bulk_queue = np.zeros(max(1, n), dtype=np.int64)
            self._bulk_generation = 0
        if self._bulk_generation + src.size >= DEAD - 1:
            # Rollover guard, mirroring the single-source scratches: a
            # wrapped counter would make stale stamps look visited.
            self._bulk_seen[:] = 0
            self._bulk_generation = 0
        mask = _alive_view(alive)
        use_alive = mask is not None
        if not use_alive:
            mask = _EMPTY_ALIVE
        self._bulk_generation = _bulk_kernel(
            self.indptr,
            self.adjacency,
            self._bulk_seen,
            self._bulk_queue,
            src,
            out,
            -1 if h is None else h,
            self._bulk_generation,
            use_alive,
            mask,
        )
        counters.record_bfs_batch(int(src.size), int(out.sum()))
        return out


#: Placeholder alive array for maskless bulk calls — Numba needs a
#: consistent argument type, the kernel never reads it when ``use_alive``
#: is False.
_EMPTY_ALIVE = np.ones(1, dtype=np.uint8)


class _CSRArrays:
    """Minimal CSR-shaped holder for :meth:`NativeBFS.from_arrays`."""

    __slots__ = ("indptr", "adjacency", "num_vertices")

    def __init__(self, indptr: "np.ndarray", adjacency: "np.ndarray") -> None:
        self.indptr = indptr
        self.adjacency = adjacency
        self.num_vertices = len(indptr) - 1

"""Array-based h-bounded BFS over :class:`~repro.graph.csr.CSRGraph`.

This is the CSR counterpart of :func:`repro.traversal.bfs.h_bounded_bfs` and
the hot loop of the ``backend="csr"`` decomposition path.  Four ideas keep
the per-call cost down:

* **Flat int arrays instead of dicts.**  Visit marks live in a pre-allocated
  list indexed by vertex index, and the traversal walks neighbor slices of
  the flat CSR ``adjacency`` array.
* **Generation (epoch) trick.**  Instead of clearing the visit marks between
  calls, every call increments a generation counter and a vertex counts as
  visited only if ``seen[v]`` equals the current generation.  Resetting state
  is O(1) no matter how small the traversal was.
* **Alive set folded into the visit marks.**  The peeling algorithms restrict
  traversals to the surviving vertices (an :class:`AliveMask` byte array).
  When a mask is *installed* into the scratch, dead vertices get the
  integer ``DEAD`` sentinel in ``seen``, so the inner loop needs one combined
  test — ``seen[u] < generation`` — instead of a visited check plus an alive
  lookup.  ``AliveMask.discard`` keeps the installed sentinels in sync.
* **Level-synchronous frontiers.**  Distances are not written per vertex;
  the BFS expands whole levels and records segment boundaries, from which
  per-vertex distances are recovered on demand (the peeling only ever asks
  "is the distance exactly h?", i.e. "is it in the last segment?").

One :class:`ArrayBFS` instance is a reusable scratch area; it is **not**
thread-safe (each worker thread owns its own — see
:meth:`repro.core.backends.CSREngine.bulk_h_degrees`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, MutableSequence, Optional, Tuple

from repro.errors import VertexNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Vertex
from repro.instrumentation import Counters, NULL_COUNTERS

#: Sentinel stored in ``seen`` for dead vertices: compares greater than every
#: generation number, so ``seen[u] < generation`` rejects dead vertices with
#: the same comparison that rejects already-visited ones.  An *integer*
#: sentinel (``int64`` max) keeps ``seen`` homogeneous-int in both the list
#: scratch here and the ``int64`` ndarray scratch of the NumPy engine
#: (:mod:`repro.traversal.numpy_bfs`), which share :class:`AliveMask` and its
#: sentinel-upkeep protocol.  Generations count traversals, so they can never
#: realistically approach ``2**63 - 1``; :meth:`ArrayBFS.run` still guards
#: the rollover and resets the scratch if it ever happens.
DEAD = 2**63 - 1


class AliveMask:
    """Byte-mask alive set for the CSR backend.

    Supports the small protocol the peeling algorithms need — membership,
    ``discard``, truthiness/length, iteration.  The ``mask`` bytearray is
    always authoritative; while the mask is installed in an :class:`ArrayBFS`
    scratch, ``discard`` additionally plants the ``DEAD`` sentinel there so
    in-flight peelings never rebuild the scratch.
    """

    __slots__ = ("mask", "_count", "_seen")

    def __init__(self, mask: bytearray, count: int) -> None:
        self.mask = mask
        self._count = count
        # The installed scratch's visit marks: a plain list of ints for
        # ArrayBFS, an int64 ndarray for the NumPy scratch — both support
        # the only operation upkeep needs, ``seen[index] = DEAD``.
        self._seen: Optional[MutableSequence[int]] = None

    @classmethod
    def full(cls, n: int) -> "AliveMask":
        return cls(bytearray(b"\x01") * n if n else bytearray(), n)

    @classmethod
    def of(cls, n: int, members: Iterable[int]) -> "AliveMask":
        mask = bytearray(n)
        count = 0
        for i in members:
            if not mask[i]:
                mask[i] = 1
                count += 1
        return cls(mask, count)

    def __contains__(self, index: int) -> bool:
        return self.mask[index] != 0

    def discard(self, index: int) -> None:
        if self.mask[index]:
            self.mask[index] = 0
            self._count -= 1
            seen = self._seen
            if seen is not None:
                seen[index] = DEAD

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[int]:
        return (i for i, byte in enumerate(self.mask) if byte)


class ArrayBFS:
    """Reusable scratch state for h-bounded BFS on one :class:`CSRGraph`.

    After :meth:`run` returns, :meth:`visited` / :meth:`visited_with_distance`
    expose the traversal (source excluded) as fresh lists.  The scratch
    buffers are overwritten by the next call, which is why those accessors
    copy.
    """

    __slots__ = ("csr", "order", "level_ends", "_seen", "_generation",
                 "_active")

    def __init__(self, csr: CSRGraph) -> None:
        self.csr = csr
        self.order: List[int] = []
        self.level_ends: List[int] = []
        self._seen: List[int] = [0] * csr.num_vertices
        self._generation = 0
        self._active: Optional[AliveMask] = None

    def _install(self, alive: Optional[AliveMask], hook: bool) -> None:
        """Rebuild ``seen`` for a new alive context.

        Costs O(n), paid only when the active alive set changes (once per
        decomposition for h-BZ/h-LB, once per partition for h-LB+UB).  The
        mask bytes are always current, so rebuilding from them is safe no
        matter how many discards happened while the mask was not installed.
        With ``hook`` the mask gets a back-reference for sentinel upkeep;
        worker threads install without hooking (they never discard).
        """
        previous = self._active
        if previous is not None and previous._seen is self._seen:
            previous._seen = None
        if alive is None:
            self._seen = [0] * self.csr.num_vertices
        else:
            self._seen = [0 if byte else DEAD for byte in alive.mask]
            if hook:
                alive._seen = self._seen
        self._active = alive

    def run(self, source: int, h: Optional[int],
            alive: Optional[AliveMask] = None,
            counters: Counters = NULL_COUNTERS,
            hook: bool = True) -> int:
        """BFS from index ``source``, truncated at depth ``h``.

        Parameters
        ----------
        source:
            Start vertex index; assumed alive (the decomposition algorithms
            only start traversals from surviving vertices).
        h:
            Maximum distance explored; ``None`` means unbounded.
        alive:
            Optional :class:`AliveMask` restricting the traversal; ``None``
            traverses the whole graph.
        counters:
            Instrumentation sink; records one BFS with the number of visited
            vertices (excluding the source), exactly like the dict-based
            :func:`~repro.traversal.bfs.h_bounded_bfs`.
        hook:
            Whether to keep the installed mask's sentinels in sync with
            future ``discard`` calls.  Leave True except from worker threads
            that share the mask read-only.

        Returns
        -------
        int
            The number of vertices visited, source excluded — i.e. the
            h-degree of ``source`` within the alive subgraph.
        """
        if alive is not self._active:
            self._install(alive, hook)
        if self._generation + 1 >= DEAD:
            # Generation rollover (unreachable in practice — it would take
            # 2**63 - 1 traversals — but cheap to guard): a wrapped counter
            # would make every stale stamp look "visited" and, worse, collide
            # with the DEAD sentinel.  Reinstalling resets all stamps to
            # 0/DEAD, so restarting from generation 1 is sound.
            self._install(self._active, hook)
            self._generation = 0
        seen = self._seen
        indptr = self.csr.indptr
        adjacency = self.csr.adjacency
        self._generation += 1
        generation = self._generation

        seen[source] = generation
        visited = [source]
        level_ends = [1]
        frontier = visited
        depth = 0
        while frontier and (h is None or depth < h):
            depth += 1
            next_frontier: List[int] = []
            append = next_frontier.append
            for v in frontier:
                for u in adjacency[indptr[v]:indptr[v + 1]]:
                    if seen[u] < generation:
                        seen[u] = generation
                        append(u)
            if not next_frontier:
                break
            visited.extend(next_frontier)
            level_ends.append(len(visited))
            frontier = next_frontier
        self.order = visited
        self.level_ends = level_ends
        counters.record_bfs(len(visited) - 1)
        return len(visited) - 1

    def visited(self) -> List[int]:
        """Visited vertex indices of the last run, source excluded (a copy)."""
        return self.order[1:]

    def visited_with_distance(self) -> List[Tuple[int, int]]:
        """``(index, distance)`` pairs of the last run, source excluded."""
        out: List[Tuple[int, int]] = []
        order = self.order
        start = 1
        for depth, end in enumerate(self.level_ends[1:], start=1):
            out.extend((u, depth) for u in order[start:end])
            start = end
        return out


def csr_h_bounded_bfs(csr: CSRGraph, source: Vertex, h: Optional[int],
                      alive=None,
                      counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Label-space convenience wrapper around :class:`ArrayBFS`.

    Returns ``{vertex: distance}`` for every vertex within distance ``h`` of
    ``source`` — the same contract as the dict backend's
    :func:`~repro.traversal.bfs.h_bounded_bfs`, including the source itself
    at distance 0.  ``alive`` may be any iterable of vertex labels.  A fresh
    scratch area is allocated per call, so this is meant for tests and one-off
    queries; the decomposition engine reuses one scratch across calls.
    """
    source_index = csr.index(source)
    mask: Optional[AliveMask] = None
    if alive is not None:
        alive_labels = set(alive)
        if source not in alive_labels:
            raise VertexNotFoundError(source)
        # Alive labels that are not graph vertices are ignored, matching the
        # dict backend (membership in a larger set restricts nothing extra).
        index_of = csr.index_of
        mask = AliveMask.of(csr.num_vertices,
                            (index for index in map(index_of.get, alive_labels)
                             if index is not None))
    scratch = ArrayBFS(csr)
    scratch.run(source_index, h, mask, counters=counters)
    labels = csr.labels
    result = {labels[scratch.order[0]]: 0}
    for index, distance in scratch.visited_with_distance():
        result[labels[index]] = distance
    return result

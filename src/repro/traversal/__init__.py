"""Traversal substrate: BFS, h-neighborhoods, distances, components, centrality.

Everything the decomposition algorithms and the applications need in terms of
shortest-path machinery lives here: h-bounded BFS (the workhorse of the
paper), h-neighborhood / h-degree computation, exact pairwise distances,
eccentricities and diameter, connected components, the h-power graph, and the
closeness / betweenness centralities used as landmark-selection baselines in
§6.6.
"""

from repro.traversal.bfs import (
    bfs_distances,
    h_bounded_bfs,
    h_bounded_neighbors,
    bfs_tree,
)
from repro.traversal.array_bfs import ArrayBFS, csr_h_bounded_bfs
from repro.traversal.hneighborhood import (
    h_neighborhood,
    h_degree,
    all_h_degrees,
    h_neighbors_with_distance,
)
from repro.traversal.distances import (
    shortest_path_distance,
    single_source_distances,
    all_pairs_distances,
    eccentricity,
    diameter,
    double_sweep_diameter_estimate,
)
from repro.traversal.components import connected_components, is_connected, largest_component
from repro.traversal.power_graph import power_graph
from repro.traversal.centrality import closeness_centrality, betweenness_centrality

__all__ = [
    "bfs_distances",
    "h_bounded_bfs",
    "h_bounded_neighbors",
    "bfs_tree",
    "ArrayBFS",
    "csr_h_bounded_bfs",
    "h_neighborhood",
    "h_degree",
    "all_h_degrees",
    "h_neighbors_with_distance",
    "shortest_path_distance",
    "single_source_distances",
    "all_pairs_distances",
    "eccentricity",
    "diameter",
    "double_sweep_diameter_estimate",
    "connected_components",
    "is_connected",
    "largest_component",
    "power_graph",
    "closeness_centrality",
    "betweenness_centrality",
]

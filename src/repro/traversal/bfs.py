"""Breadth-first search primitives.

:func:`h_bounded_bfs` is the hot path of the whole library: every h-degree
(re-)computation in the decomposition algorithms is one call to it.  It takes
an optional ``alive`` set so peeling algorithms can restrict the traversal to
the surviving vertices without building subgraphs, and an optional
:class:`~repro.instrumentation.Counters` sink so the number of visited
vertices can be reported (the paper's "visits" metric).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.errors import VertexNotFoundError
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS


def bfs_distances(graph: Graph, source: Vertex,
                  alive: Optional[Set[Vertex]] = None) -> Dict[Vertex, int]:
    """Return shortest-path distances from ``source`` to every reachable vertex.

    If ``alive`` is given, only vertices in that set are traversed (and the
    source must belong to it).
    """
    return h_bounded_bfs(graph, source, h=None, alive=alive)


def h_bounded_bfs(graph: Graph, source: Vertex, h: Optional[int],
                  alive: Optional[Set[Vertex]] = None,
                  counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """BFS from ``source`` truncated at depth ``h``.

    Parameters
    ----------
    graph:
        The base graph.
    source:
        Start vertex; must be in the graph (and in ``alive`` if given).
    h:
        Maximum distance explored; ``None`` means unbounded.
    alive:
        Optional set restricting the traversal to an induced subgraph.
    counters:
        Instrumentation sink; the number of visited vertices (excluding the
        source) is recorded as one BFS.

    Returns
    -------
    dict
        Mapping ``vertex -> distance`` for every vertex at distance ``<= h``
        from the source **including the source itself at distance 0**.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if alive is not None and source not in alive:
        raise VertexNotFoundError(source)

    distances: Dict[Vertex, int] = {source: 0}
    if h is not None and h <= 0:
        counters.record_bfs(0)
        return distances

    queue = deque([source])
    while queue:
        v = queue.popleft()
        next_distance = distances[v] + 1
        if h is not None and next_distance > h:
            continue
        for u in graph.neighbors(v):
            if u in distances:
                continue
            if alive is not None and u not in alive:
                continue
            distances[u] = next_distance
            queue.append(u)
    counters.record_bfs(len(distances) - 1)
    return distances


def bfs_tree(graph: Graph, source: Vertex,
             alive: Optional[Set[Vertex]] = None) -> Dict[Vertex, Optional[Vertex]]:
    """Return a BFS tree as a ``vertex -> parent`` mapping (source maps to None)."""
    if source not in graph:
        raise VertexNotFoundError(source)
    if alive is not None and source not in alive:
        raise VertexNotFoundError(source)
    parents: Dict[Vertex, Optional[Vertex]] = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in parents:
                continue
            if alive is not None and u not in alive:
                continue
            parents[u] = v
            queue.append(u)
    return parents

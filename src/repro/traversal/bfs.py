"""Breadth-first search primitives.

:func:`h_bounded_bfs` is the hot path of the whole library: every h-degree
(re-)computation in the decomposition algorithms is one call to it.  It takes
an optional ``alive`` set so peeling algorithms can restrict the traversal to
the surviving vertices without building subgraphs, and an optional
:class:`~repro.instrumentation.Counters` sink so the number of visited
vertices can be reported (the paper's "visits" metric).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.errors import VertexNotFoundError
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS


def bfs_distances(graph: Graph, source: Vertex,
                  alive: Optional[Set[Vertex]] = None) -> Dict[Vertex, int]:
    """Return shortest-path distances from ``source`` to every reachable vertex.

    If ``alive`` is given, only vertices in that set are traversed (and the
    source must belong to it).
    """
    return h_bounded_bfs(graph, source, h=None, alive=alive)


def _level_bfs(graph: Graph, source: Vertex, h: Optional[int],
               alive: Optional[Set[Vertex]],
               distances: Dict[Vertex, int]) -> int:
    """Level-synchronous BFS core shared by the two public variants.

    Fills ``distances`` with every vertex *other than the source* at distance
    ``<= h`` (the caller decides whether the source belongs in the result, so
    the hot path never builds an entry only to delete it).  Returns the
    number of vertices visited, source excluded.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if alive is not None and source not in alive:
        raise VertexNotFoundError(source)
    if h is not None and h <= 0:
        return 0

    visited: Set[Vertex] = {source}
    frontier = [source]
    depth = 0
    while frontier and (h is None or depth < h):
        depth += 1
        next_frontier = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u in visited:
                    continue
                if alive is not None and u not in alive:
                    continue
                visited.add(u)
                distances[u] = depth
                next_frontier.append(u)
        frontier = next_frontier
    return len(visited) - 1


def h_bounded_bfs(graph: Graph, source: Vertex, h: Optional[int],
                  alive: Optional[Set[Vertex]] = None,
                  counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """BFS from ``source`` truncated at depth ``h``.

    Parameters
    ----------
    graph:
        The base graph.
    source:
        Start vertex; must be in the graph (and in ``alive`` if given).
    h:
        Maximum distance explored; ``None`` means unbounded.
    alive:
        Optional set restricting the traversal to an induced subgraph.
    counters:
        Instrumentation sink; the number of visited vertices (excluding the
        source) is recorded as one BFS.

    Returns
    -------
    dict
        Mapping ``vertex -> distance`` for every vertex at distance ``<= h``
        from the source **including the source itself at distance 0**.
    """
    distances: Dict[Vertex, int] = {source: 0}
    counters.record_bfs(_level_bfs(graph, source, h, alive, distances))
    return distances


def h_bounded_neighbors(graph: Graph, source: Vertex, h: Optional[int],
                        alive: Optional[Set[Vertex]] = None,
                        counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Like :func:`h_bounded_bfs` but the source is excluded from the result.

    This is the variant the h-neighborhood/h-degree hot path wants
    (Definition 2 excludes the vertex itself); keeping it separate avoids
    building a ``{source: 0}`` entry only to delete it on every call.
    """
    distances: Dict[Vertex, int] = {}
    counters.record_bfs(_level_bfs(graph, source, h, alive, distances))
    return distances


def bfs_tree(graph: Graph, source: Vertex,
             alive: Optional[Set[Vertex]] = None) -> Dict[Vertex, Optional[Vertex]]:
    """Return a BFS tree as a ``vertex -> parent`` mapping (source maps to None)."""
    if source not in graph:
        raise VertexNotFoundError(source)
    if alive is not None and source not in alive:
        raise VertexNotFoundError(source)
    parents: Dict[Vertex, Optional[Vertex]] = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in parents:
                continue
            if alive is not None and u not in alive:
                continue
            parents[u] = v
            queue.append(u)
    return parents

"""h-neighborhoods and h-degrees (§3 of the paper).

The *h-neighborhood* of a vertex ``v`` within an induced subgraph ``G[S]`` is
the set of vertices ``u != v`` in ``S`` with ``d_{G[S]}(u, v) <= h``; the
*h-degree* is its size.  These are the quantities the (k,h)-core definition is
built on, and every algorithm in :mod:`repro.core` ultimately calls into this
module.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph, Vertex
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.bfs import h_bounded_neighbors


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


def h_neighborhood(graph: Graph, vertex: Vertex, h: int,
                   alive: Optional[Set[Vertex]] = None,
                   counters: Counters = NULL_COUNTERS) -> Set[Vertex]:
    """Return ``N_{G[alive]}(vertex, h)``: vertices within distance ``h``.

    The vertex itself is excluded, matching Definition 2 of the paper.
    """
    _validate_h(h)
    return set(h_bounded_neighbors(graph, vertex, h, alive=alive,
                                   counters=counters))


def h_neighbors_with_distance(graph: Graph, vertex: Vertex, h: int,
                              alive: Optional[Set[Vertex]] = None,
                              counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Return ``{u: d(u, vertex)}`` for the h-neighborhood of ``vertex``.

    The h-LB algorithm needs the distances themselves (to distinguish
    neighbors at distance exactly ``h`` — Algorithm 3, line 14), so this
    variant keeps them.
    """
    _validate_h(h)
    return h_bounded_neighbors(graph, vertex, h, alive=alive,
                               counters=counters)


def h_degree(graph: Graph, vertex: Vertex, h: int,
             alive: Optional[Set[Vertex]] = None,
             counters: Counters = NULL_COUNTERS) -> int:
    """Return the h-degree ``deg^h_{G[alive]}(vertex)``."""
    return len(h_neighborhood(graph, vertex, h, alive=alive, counters=counters))


def all_h_degrees(graph: Graph, h: int,
                  alive: Optional[Set[Vertex]] = None,
                  vertices: Optional[Iterable[Vertex]] = None,
                  counters: Counters = NULL_COUNTERS) -> Dict[Vertex, int]:
    """Return the h-degree of every vertex (or of ``vertices`` if given).

    This is the sequential version of the initial h-degree computation; the
    multi-threaded variant lives in :mod:`repro.core.parallel`.
    """
    _validate_h(h)
    if vertices is None:
        vertices = alive if alive is not None else graph.vertices()
    return {
        v: h_degree(graph, v, h, alive=alive, counters=counters)
        for v in vertices
    }

"""Closeness and betweenness centrality.

The landmark-selection experiment (§6.6, Table 7) compares landmarks drawn
from the maximum (k,h)-core against the top-ℓ vertices by closeness
centrality, betweenness centrality, and h-degree.  These two centralities are
implemented here: closeness by one BFS per vertex, betweenness with Brandes'
algorithm (unweighted variant).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.graph.graph import Graph, Vertex
from repro.traversal.bfs import bfs_distances


def closeness_centrality(graph: Graph,
                         vertices: Optional[List[Vertex]] = None,
                         wf_improved: bool = True) -> Dict[Vertex, float]:
    """Return the closeness centrality of every vertex (or of ``vertices``).

    Uses the Wasserman–Faust correction for disconnected graphs when
    ``wf_improved`` is True (the same convention as networkx), so values are
    comparable across components.
    """
    n = graph.num_vertices
    targets = list(vertices) if vertices is not None else list(graph.vertices())
    centrality: Dict[Vertex, float] = {}
    for v in targets:
        distances = bfs_distances(graph, v)
        total = sum(distances.values())
        reachable = len(distances)  # includes v itself
        if total > 0 and n > 1:
            closeness = (reachable - 1) / total
            if wf_improved:
                closeness *= (reachable - 1) / (n - 1)
        else:
            closeness = 0.0
        centrality[v] = closeness
    return centrality


def betweenness_centrality(graph: Graph, normalized: bool = True) -> Dict[Vertex, float]:
    """Return the (unweighted) betweenness centrality of every vertex.

    Brandes' algorithm: one BFS + dependency accumulation per source vertex,
    ``O(|V| |E|)`` total.
    """
    centrality: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
    for source in graph.vertices():
        # Single-source shortest-path DAG via BFS.
        stack: List[Vertex] = []
        predecessors: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices()}
        sigma: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
        distance: Dict[Vertex, int] = {}
        sigma[source] = 1.0
        distance[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in graph.neighbors(v):
                if w not in distance:
                    distance[w] = distance[v] + 1
                    queue.append(w)
                if distance[w] == distance[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        # Back-propagation of dependencies.
        delta: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                if sigma[w] > 0:
                    delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]
        del predecessors, sigma, distance, delta

    n = graph.num_vertices
    # Each undirected shortest path is counted twice (once per endpoint as source).
    for v in centrality:
        centrality[v] /= 2.0
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2) / 2.0)
        for v in centrality:
            centrality[v] *= scale
    return centrality


def top_k_by_centrality(centrality: Dict[Vertex, float], k: int) -> List[Vertex]:
    """Return the ``k`` vertices with the highest centrality (ties by repr)."""
    ranked = sorted(centrality.items(), key=lambda item: (-item[1], repr(item[0])))
    return [v for v, _ in ranked[:k]]

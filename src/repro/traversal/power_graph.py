"""h-power graphs.

The h-power ``G^h`` of an undirected graph ``G`` has the same vertex set and
an edge between every pair of vertices at distance at most ``h`` in ``G``.
The paper shows (Example 2) that decomposing ``G^h`` with the classic k-core
algorithm does **not** give the (k,h)-core decomposition — but the resulting
core indices *are* valid upper bounds, which is the key idea behind the
h-LB+UB algorithm.  Materializing the power graph is also used in tests as an
independent check of that upper-bound property.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph, Vertex
from repro.traversal.bfs import h_bounded_bfs


def power_graph(graph: Graph, h: int,
                alive: Optional[Set[Vertex]] = None) -> Graph:
    """Return the materialized h-power graph of ``graph`` (or of ``G[alive]``).

    Warning: the power graph can be dense — ``O(n^2)`` edges for moderate
    ``h`` — which is exactly why the h-LB+UB algorithm avoids materializing it
    (§4.4).  Use only on small or sparse graphs.
    """
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)
    vertices = set(alive) if alive is not None else set(graph.vertices())
    powered = Graph(vertices=vertices)
    for v in vertices:
        distances = h_bounded_bfs(graph, v, h, alive=vertices)
        for u in distances:
            if u != v:
                powered.add_edge(u, v)
    return powered

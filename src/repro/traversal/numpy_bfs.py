"""Vectorized h-bounded BFS kernels over CSR arrays (the ``numpy`` engine).

This is the third traversal tier, above the dict-of-sets reference BFS
(:mod:`repro.traversal.bfs`) and the interpreted flat-array loop
(:mod:`repro.traversal.array_bfs`).  The structure is the level-synchronous
frontier batching that the SIGMOD-contest analyses identify as the winning
pattern for neighborhood-heavy graph queries, mapped 1:1 onto NumPy
gather/scatter primitives:

* **Frontier expansion is one gather.**  The neighbors of the whole frontier
  are materialized with a single ``indptr``-sliced gather of ``adjacency``
  (the ``arange + repeat`` range-concatenation trick), filtered against the
  visit marks with one vectorized compare, and deduplicated in
  first-occurrence order — exactly the visit order of the interpreted loop,
  so removal orders and counter totals stay identical across engines.
* **Generation-stamped ``seen`` ndarray.**  Visit marks live in one ``int64``
  ndarray; a call bumps the generation instead of clearing, and installed
  :class:`~repro.traversal.array_bfs.AliveMask` deaths are folded in as the
  integer :data:`~repro.traversal.array_bfs.DEAD` sentinel — the same
  protocol as :class:`~repro.traversal.array_bfs.ArrayBFS`, sharing the same
  mask objects and ``discard`` upkeep.
* **Many-sources block mode.**  :meth:`NumpyBFS.bulk` expands a whole block
  of BFS sources per kernel invocation: frontiers are ``(slot, vertex)``
  pairs in flat arrays, visit marks live in one flat ``slot·n + vertex``
  stamped array, and per-source h-degrees fall out of a ``bincount``.  The
  per-level NumPy dispatch cost is amortized over the entire block, which is
  what makes the bulk h-degree pass fast — single-source dispatch overhead
  is the reason ``backend="auto"`` keeps tiny graphs on the interpreted CSR
  engine.
* **Bit-parallel dense mode.**  When the h-balls cover a large fraction of
  the graph (hub-dominated topologies, larger ``h``), the frontier kernel
  pays per *candidate edge* while a bit-parallel sweep pays per 64: 64
  sources share one ``uint64`` lane, a level is one gather +
  ``bitwise_or.reduceat`` over the whole edge array, and h-degrees are bit
  counts of the reachability rows (the multi-source trick of Akiba et al.'s
  pruned landmark labeling).  :meth:`NumpyBFS.bulk` picks the cheaper of
  the two kernels per call from a sampled candidate-volume probe; both
  produce identical counts, so the choice is invisible to callers.

Importing this module requires NumPy (the ``numpy`` optional extra); callers
gate on :func:`repro.core.backends.numpy_available` and fall back to the
pure-Python engines when it is absent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.instrumentation import Counters, NULL_COUNTERS
from repro.traversal.array_bfs import DEAD, AliveMask

#: Upper bound on the number of *entries* of the block-mode visit-mark
#: scratch (``block_size × num_vertices`` uint8 stamps, 4 MiB at the
#: default — sized to stay L3-resident, which is what keeps the per-level
#: random gathers cheap).  The block size adapts: large graphs get smaller
#: blocks.
BLOCK_SCRATCH_BUDGET = 1 << 22

#: Sources per bit-parallel batch (8 ``uint64`` lanes).  One batch-level is
#: a ``(lanes, |adjacency|)`` gather + reduceat, so the working set stays a
#: few MiB for the graphs the dense mode targets.
DENSE_BATCH_SOURCES = 512

#: Byte budget for one dense batch's arrays (reachability rows + the
#: gathered edge matrix); graphs whose single-lane batch would exceed it
#: stay on the frontier kernel.
DENSE_MEMORY_BUDGET = 256 << 20

#: Minimum sources for the dense mode to be worth probing for at all —
#: below this the frontier kernel's fixed costs are already negligible.
DENSE_MIN_SOURCES = 256

#: Single-source BFS probes used to estimate the bulk candidate volume.
DENSE_PROBE_SAMPLES = 8

#: Calibrated break-even: the dense sweep wins once the frontier kernel
#: would touch more than ``sources · h · |adjacency| / DENSE_SELECT_DIVISOR``
#: candidate edges (measured per-candidate ~28ns vs per-lane-word ~6ns,
#: with a ~1.5x safety margin so near-ties keep the battle-tested kernel).
DENSE_SELECT_DIVISOR = 200

_INT32_MAX = 2**31 - 1


def _as_int64(values: object) -> "np.ndarray":
    """View/convert ``values`` as a 1-D contiguous int64 ndarray."""
    return np.ascontiguousarray(values, dtype=np.int64)


def _as_index_array(values: object) -> "np.ndarray":
    """Convert ``values`` to a contiguous integer ndarray, int32 preferred.

    Already-ndarray inputs (e.g. the shared-memory workers' zero-copy int64
    views) are passed through untouched — never copied, whatever their
    width.  Fresh conversions from Python lists use int32 when every value
    fits: the traversal kernels are memory-bandwidth-bound, so halving the
    element width is a direct throughput win (and doubles sort speed in the
    dedup step).
    """
    if isinstance(values, np.ndarray):
        return np.ascontiguousarray(values)
    array = np.ascontiguousarray(values, dtype=np.int64)
    if array.size == 0 or (0 <= int(array.min())
                           and int(array.max()) <= _INT32_MAX):
        return array.astype(np.int32)
    return array


def _alive_view(alive: Union[AliveMask, "np.ndarray", None]
                ) -> Optional["np.ndarray"]:
    """Zero-copy uint8 view of an alive set (mask object, ndarray or None)."""
    if alive is None:
        return None
    if isinstance(alive, np.ndarray):
        return alive
    # AliveMask.mask is a bytearray (or a shared-memory region); both
    # support the buffer protocol, so this is a view, not a copy.
    return np.frombuffer(alive.mask, dtype=np.uint8)


def _gather_neighbors(indptr: "np.ndarray", adjacency: "np.ndarray",
                      frontier: "np.ndarray"
                      ) -> Tuple[Optional["np.ndarray"], "np.ndarray"]:
    """Concatenated CSR rows of every frontier vertex, in frontier order.

    Returns ``(neighbors, degs)`` where ``neighbors`` is the concatenation
    of ``adjacency[indptr[v]:indptr[v+1]]`` for each ``v`` (``None`` when
    every row is empty) and ``degs`` the per-vertex row lengths.  This is
    the ``arange + repeat`` range-concatenation trick: position ``j`` inside
    row ``i`` maps to ``starts[i] + (j - row_begin_i)``.
    """
    starts = indptr[frontier]
    degs = indptr[frontier + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return None, degs
    ends = np.cumsum(degs)
    shift = np.repeat(starts - (ends - degs), degs)
    positions = np.arange(total, dtype=shift.dtype) + shift
    return adjacency[positions], degs


def _dedup_first(keys: "np.ndarray", claim: "np.ndarray") -> "np.ndarray":
    """Boolean mask keeping the *first* occurrence of every key, in O(k).

    NumPy scatter assignment with repeated indices applies the writes in
    index-array order (last write wins), so scattering the *reversed*
    positions leaves each ``claim[key]`` holding the position of the key's
    first occurrence; gathering back and comparing yields the winners.  No
    sort anywhere — this is what keeps frontier dedup linear where
    ``np.unique`` would pay O(k log k) per level.  ``claim`` needs no
    clearing between calls: every entry read here was written one line
    earlier.
    """
    positions = np.arange(keys.size, dtype=np.int64)
    claim[keys[::-1]] = positions[::-1]
    return claim[keys] == positions


class NumpyBFS:
    """Reusable vectorized BFS scratch over one CSR snapshot.

    Drop-in structural twin of :class:`~repro.traversal.array_bfs.ArrayBFS`:
    same constructor shape (anything exposing ``indptr`` / ``adjacency`` /
    ``num_vertices``), same :meth:`run` contract, same ``order`` /
    ``level_ends`` buffers the array peel kernels read directly, and the
    same :class:`AliveMask` install/discard protocol — which is what lets
    the ``numpy`` engine drive the *unchanged* peel kernels and produce
    bit-identical removal orders.  Not thread-safe; clone per worker via
    :meth:`clone`.
    """

    __slots__ = ("indptr", "adjacency", "num_vertices", "order", "level_ends",
                 "_seen", "_claim", "_generation", "_active", "_block_seen",
                 "_dense_idx", "_dense_empty")

    def __init__(self, csr: object) -> None:
        self.indptr = _as_index_array(csr.indptr)
        self.adjacency = _as_index_array(csr.adjacency)
        self.num_vertices = int(csr.num_vertices)
        self.order: List[int] = []
        self.level_ends: List[int] = []
        self._seen = np.zeros(self.num_vertices, dtype=np.int64)
        # Scratch for the O(k) scatter-claim dedup (see _dedup_first): never
        # needs clearing — every entry read was written in the same level.
        self._claim = np.zeros(self.num_vertices, dtype=np.int64)
        self._generation = 0
        self._active: Optional[AliveMask] = None
        self._block_seen: Optional["np.ndarray"] = None
        # Lazy dense-mode caches: reduceat row starts (intp, clipped for the
        # trailing-empty-row quirk) and the empty-row mask.
        self._dense_idx: Optional["np.ndarray"] = None
        self._dense_empty: Optional["np.ndarray"] = None

    @classmethod
    def from_arrays(cls, indptr: "np.ndarray",
                    adjacency: "np.ndarray") -> "NumpyBFS":
        """Build a scratch over pre-existing int64 arrays (no copy).

        Used by the shared-memory workers, whose arrays are zero-copy
        ``np.frombuffer`` views of the shared block.
        """
        holder = _CSRArrays(indptr, adjacency)
        return cls(holder)

    def clone(self) -> "NumpyBFS":
        """A new scratch sharing this one's CSR arrays (for worker threads)."""
        return NumpyBFS.from_arrays(self.indptr, self.adjacency)

    # ------------------------------------------------------------------ #
    # single-source traversal (peel hot path)
    # ------------------------------------------------------------------ #
    def _install(self, alive: Optional[AliveMask], hook: bool) -> None:
        """Rebuild ``seen`` for a new alive context (O(n), vectorized)."""
        previous = self._active
        if previous is not None and previous._seen is self._seen:
            previous._seen = None
        if alive is None:
            self._seen = np.zeros(self.num_vertices, dtype=np.int64)
        else:
            seen = np.full(self.num_vertices, DEAD, dtype=np.int64)
            mask = _alive_view(alive)
            if mask is not None and mask.size:
                seen[mask != 0] = 0
            self._seen = seen
            if hook:
                alive._seen = self._seen
        self._active = alive

    def run(self, source: int, h: Optional[int],
            alive: Optional[AliveMask] = None,
            counters: Counters = NULL_COUNTERS,
            hook: bool = True) -> int:
        """BFS from index ``source`` truncated at depth ``h``.

        Identical contract (and identical visit order, level segmentation
        and counter recording) to :meth:`ArrayBFS.run
        <repro.traversal.array_bfs.ArrayBFS.run>`; only the frontier
        expansion is vectorized.
        """
        if alive is not self._active:
            self._install(alive, hook)
        if self._generation + 1 >= DEAD:
            # Same rollover guard as ArrayBFS: reinstalling resets every
            # stamp to 0/DEAD, so restarting from generation 1 is sound.
            self._install(self._active, hook)
            self._generation = 0
        seen = self._seen
        indptr = self.indptr
        adjacency = self.adjacency
        self._generation += 1
        generation = self._generation

        seen[source] = generation
        frontier = np.array([source], dtype=np.int64)
        levels = [frontier]
        level_ends = [1]
        total = 1
        depth = 0
        while frontier.size and (h is None or depth < h):
            depth += 1
            cand, _ = _gather_neighbors(indptr, adjacency, frontier)
            if cand is None:
                break
            cand = cand[seen[cand] < generation]
            if cand.size == 0:
                break
            # First-occurrence dedup: matches the order in which the
            # interpreted loop first reaches each vertex, so removal orders
            # stay engine-identical.
            frontier = cand[_dedup_first(cand, self._claim)]
            seen[frontier] = generation
            levels.append(frontier)
            total += frontier.size
            level_ends.append(total)
        order = levels[0] if len(levels) == 1 else np.concatenate(levels)
        self.order = order.tolist()
        self.level_ends = level_ends
        counters.record_bfs(total - 1)
        return total - 1

    def visited(self) -> List[int]:
        """Visited vertex indices of the last run, source excluded (a copy)."""
        return self.order[1:]

    def visited_with_distance(self) -> List[Tuple[int, int]]:
        """``(index, distance)`` pairs of the last run, source excluded."""
        out: List[Tuple[int, int]] = []
        order = self.order
        start = 1
        for depth, end in enumerate(self.level_ends[1:], start=1):
            out.extend((u, depth) for u in order[start:end])
            start = end
        return out

    # ------------------------------------------------------------------ #
    # many-sources block mode (bulk h-degree passes)
    # ------------------------------------------------------------------ #
    def _block_capacity(self, num_sources: int) -> int:
        """Sources per block so the flat stamp scratch stays in budget."""
        per_source = max(1, self.num_vertices)
        return max(1, min(num_sources, BLOCK_SCRATCH_BUDGET // per_source))

    def bulk(self, sources: Sequence[int], h: Optional[int],
             alive: Union[AliveMask, "np.ndarray", None] = None,
             counters: Counters = NULL_COUNTERS) -> "np.ndarray":
        """h-degree of every source, computed block-at-a-time.

        ``alive`` may be an :class:`AliveMask`, a raw ``uint8`` ndarray view
        (the shared-memory workers pass the mapped region directly), or
        ``None``.  Deaths are applied as a vectorized filter on each
        frontier rather than folded into the stamps — the O(n·block) stamp
        scratch would make per-discard upkeep quadratic.

        Full passes (``alive is None``) are dispatched to the cheaper of two
        kernels: the stamped frontier kernel (:meth:`_run_block`) or the
        bit-parallel dense sweep (:meth:`_run_dense`), selected by a sampled
        candidate-volume estimate (:meth:`_dense_preferred`).  The kernels
        produce identical counts — the probe decides speed, never results.

        Records one BFS per source into ``counters`` (batch form; totals
        identical to the per-source engines).  Returns an int64 ndarray
        aligned with ``sources``.
        """
        src = _as_index_array(list(sources))
        out = np.zeros(src.size, dtype=np.int64)
        if src.size == 0:
            counters.record_bfs_batch(0, 0)
            return out
        mask = _alive_view(alive)
        if mask is None and self._dense_preferred(src, h):
            out = self._run_dense(src, h)
            counters.record_bfs_batch(int(src.size), int(out.sum()))
            return out
        capacity = self._block_capacity(src.size)
        need = capacity * max(1, self.num_vertices)
        if self._block_seen is None or self._block_seen.size < need:
            # uint8 on purpose: a compact scratch keeps the per-level
            # gathers cache-friendly.  Allocated zeroed; every block clears
            # the stamps it made before returning (see _run_block), so the
            # zero state is an invariant between blocks.
            self._block_seen = np.zeros(need, dtype=np.uint8)
        for begin in range(0, src.size, capacity):
            block = src[begin:begin + capacity]
            out[begin:begin + capacity] = self._run_block(block, h, mask)
        counters.record_bfs_batch(int(src.size), int(out.sum()))
        return out

    #: ``seen`` stamp marking a block's source vertices; level marks cycle
    #: through [1, 250] so they can never collide with it.
    _SOURCE_MARK = 255

    def _run_block(self, src: "np.ndarray", h: Optional[int],
                   alive: Optional["np.ndarray"]) -> "np.ndarray":
        """One block of simultaneous BFS expansions; returns visit counts.

        State per live ``(slot, vertex)`` pair is one byte in the flat
        ``slot·n + vertex`` scratch, stamped with the level that first
        reached it; each level gathers the neighbors of every pair at once
        and a ``bincount`` over the deduplicated keys accumulates per-slot
        visits.  Dedup within a level is adaptive:

        * sparse levels sort the candidate keys (``np.unique`` touches only
          the candidates — cache-friendly O(k log k));
        * dense levels (candidates within a small factor of the whole
          scratch) skip the sort and recover the frontier with one
          sequential scan for the level's mark, O(block·n) but streaming.

        Visit *sets* are identical either way, so counts — the only thing
        that leaves this kernel — don't depend on the branch taken.
        """
        n = self.num_vertices
        block = src.size
        used = block * n
        seen = self._block_seen
        assert seen is not None
        # 32-bit key arithmetic whenever the key space fits (it always does
        # at the default scratch budget): the kernel is bandwidth-bound.
        key_dtype = np.int32 if used <= _INT32_MAX else np.int64
        bases = np.arange(block, dtype=key_dtype) * n
        source_keys = bases + src.astype(key_dtype, copy=False)
        seen[source_keys] = self._SOURCE_MARK
        # Every stamp this block writes, for the O(visits) cleanup below —
        # a full memset of the scratch would be O(block·n) per block and
        # dominate shallow traversals on large graphs.
        stamped = [source_keys]
        counts = np.zeros(block, dtype=np.int64)
        frontier_v = src
        frontier_bases = bases
        indptr = self.indptr
        adjacency = self.adjacency
        depth = 0
        while frontier_v.size and (h is None or depth < h):
            depth += 1
            cand_v, degs = _gather_neighbors(indptr, adjacency, frontier_v)
            if cand_v is None:
                break
            # One repeat of the per-pair key bases replaces a repeat of the
            # slot ids plus a length-k multiply.
            keys = np.repeat(frontier_bases, degs) + cand_v
            keep = seen[keys] == 0
            if alive is not None:
                keep &= alive[cand_v] != 0
            keys = keys[keep]
            if keys.size == 0:
                break
            mark = (depth - 1) % 250 + 1
            seen[keys] = mark
            stamped.append(keys)
            if keys.size * 16 >= used and depth <= 250:
                # Dense level: one streaming scan beats sorting millions of
                # keys.  (Guarded to depths before marks recycle; deeper
                # traversals fall back to the sort, which needs no marks.)
                frontier_keys = np.flatnonzero(
                    seen[:used] == mark).astype(key_dtype, copy=False)
            else:
                # Sorted-unique by hand: np.sort + a shift-compare mask.
                # (np.unique is avoided deliberately — its hash-based path
                # is an order of magnitude slower than a plain sort here.)
                frontier_keys = np.sort(keys)
                distinct = np.empty(frontier_keys.size, dtype=bool)
                distinct[0] = True
                np.not_equal(frontier_keys[1:], frontier_keys[:-1],
                             out=distinct[1:])
                frontier_keys = frontier_keys[distinct]
            # Both branches yield *sorted* keys, so per-slot frontier sizes
            # fall out of a binary search against the slot bases — no
            # elementwise integer division (int64 division has no SIMD path
            # and would dominate dense levels).
            boundaries = np.searchsorted(frontier_keys, bases)
            per_slot = np.empty(block, dtype=np.int64)
            per_slot[:-1] = boundaries[1:] - boundaries[:-1]
            per_slot[-1] = frontier_keys.size - boundaries[-1]
            counts += per_slot
            frontier_bases = np.repeat(bases, per_slot)
            frontier_v = frontier_keys - frontier_bases
        # Restore the all-zeros invariant: scatter-clear exactly the stamps
        # written (O(visits)), unless this block touched so much of the
        # scratch that one streaming memset is cheaper.
        if sum(keys.size for keys in stamped) * 4 >= used:
            seen[:used] = 0
        else:
            for keys in stamped:
                seen[keys] = 0
        return counts

    # ------------------------------------------------------------------ #
    # bit-parallel dense mode
    # ------------------------------------------------------------------ #
    def _dense_batch_lanes(self) -> int:
        """``uint64`` lanes per dense batch fitting the memory budget (0: none).

        One batch keeps four ``(lanes, n)`` reachability/frontier arrays
        plus the ``(lanes, |adjacency|)`` gathered edge matrix and its
        reduceat output live at once.
        """
        per_lane = (4 * max(1, self.num_vertices)
                    + 2 * self.adjacency.size) * 8
        return min(DENSE_BATCH_SOURCES // 64, DENSE_MEMORY_BUDGET // per_lane)

    def _dense_preferred(self, src: "np.ndarray", h: Optional[int]) -> bool:
        """Probe-based kernel choice for a full (no alive mask) bulk pass.

        The frontier kernel's cost is proportional to the *candidate
        volume* — every adjacency entry of every expanded vertex.  The
        dense sweep's cost is exactly ``sources/64 · levels · |adjacency|``
        lane-words, known a priori.  A handful of single-source probes
        (strided through ``src``, so skewed degree distributions are
        represented) estimates the former; the calibrated break-even is
        :data:`DENSE_SELECT_DIVISOR`.  Deterministic for a given graph and
        source list — the probe never consults timers.
        """
        if h is None or h < 2 or src.size < DENSE_MIN_SOURCES:
            return False
        m2 = self.adjacency.size
        if m2 == 0 or self._dense_batch_lanes() < 1:
            return False
        if np.unique(src).size != src.size:
            # Duplicate sources would collide on one (lane, vertex) bit in
            # the dense init; the frontier kernel gives each its own slot.
            # (Engine callers always pass unique targets — this is a guard
            # for direct scratch users.)
            return False
        stride = max(1, src.size // DENSE_PROBE_SAMPLES)
        sample = src[::stride][:DENSE_PROBE_SAMPLES]
        indptr = self.indptr
        candidates = []
        for source in sample.tolist():
            # Only vertices within distance h-1 are ever expanded (the
            # final level is reached, never gathered from), so a depth-(h-1)
            # traversal prices the pass exactly at a fraction of its cost.
            self.run(int(source), h - 1)
            rows = np.asarray(self.order, dtype=np.int64)
            candidates.append(int((indptr[rows + 1] - indptr[rows]).sum()))
        # Median, not mean: on skewed degree distributions the strided
        # sample can land on a hub whose ball dwarfs the typical source's,
        # and one outlier must not flip the whole pass to the dense sweep.
        estimated = float(np.median(candidates)) * src.size
        return estimated * DENSE_SELECT_DIVISOR > src.size * h * m2

    def _run_dense(self, src: "np.ndarray", h: int) -> "np.ndarray":
        """Bit-parallel many-source sweep; returns h-degrees aligned with src.

        64 sources share one ``uint64`` lane: row ``v`` of the ``(lanes, n)``
        reachability matrix holds, per bit, "has source *b* reached ``v``".
        A level for *all* lanes at once is one fancy-index gather of the
        frontier columns through ``adjacency`` plus one
        ``bitwise_or.reduceat`` over the CSR row extents — per-edge-per-64-
        sources work, which is what beats the per-candidate frontier kernel
        on dense h-balls.  Per-source degrees are the column popcounts of
        the final matrix (minus the self bit).
        """
        n = self.num_vertices
        adjacency = self.adjacency
        if self._dense_idx is None:
            indptr = self.indptr
            starts = indptr[:-1].astype(np.intp)
            self._dense_empty = indptr[1:] == indptr[:-1]
            # reduceat quirk: an index equal to len(adjacency) (trailing
            # zero-degree rows) raises, and equal consecutive indices
            # return the *element* rather than an empty reduction — both
            # repaired by clipping here and zeroing empty rows below.
            self._dense_idx = np.minimum(starts, max(0, adjacency.size - 1))
        row_starts = self._dense_idx
        empty = self._dense_empty
        has_empty = bool(empty.any())
        out = np.zeros(src.size, dtype=np.int64)
        per_batch = self._dense_batch_lanes() * 64
        for begin in range(0, src.size, per_batch):
            batch = src[begin:begin + per_batch]
            lanes = (batch.size + 63) // 64
            slots = np.arange(batch.size)
            reached = np.zeros((lanes, n), dtype=np.uint64)
            # Sources are distinct vertices, so the (lane, vertex) pairs
            # are unique and plain fancy assignment cannot collide.
            reached[slots >> 6, batch] = (
                np.uint64(1) << (slots & 63).astype(np.uint64))
            frontier = reached.copy()
            for _ in range(h):
                gathered = frontier[:, adjacency]
                acc = np.bitwise_or.reduceat(gathered, row_starts, axis=1)
                if has_empty:
                    acc[:, empty] = 0
                np.bitwise_and(acc, ~reached, out=acc)
                if not acc.any():
                    break
                reached |= acc
                frontier = acc
            for lane in range(lanes):
                bits = np.unpackbits(reached[lane].view(np.uint8),
                                     bitorder="little")
                totals = bits.reshape(n, 64).sum(axis=0, dtype=np.int64)
                lane_begin = begin + lane * 64
                count = min(64, src.size - lane_begin)
                # Minus the source's own bit, set at initialization.
                out[lane_begin:lane_begin + count] = totals[:count] - 1
        return out


class _CSRArrays:
    """Minimal CSR-shaped holder for :meth:`NumpyBFS.from_arrays`."""

    __slots__ = ("indptr", "adjacency", "num_vertices")

    def __init__(self, indptr: "np.ndarray", adjacency: "np.ndarray") -> None:
        self.indptr = indptr
        self.adjacency = adjacency
        self.num_vertices = len(indptr) - 1

"""h-cliques (Definition 4).

An h-clique is a vertex set whose members are pairwise within distance ``h``
*in the original graph* (paths may leave the set); it is exactly a clique of
the h-power graph.  Maximum h-clique is NP-hard; the exact solver here is a
branch-and-bound maximum-clique search over the (implicit) power graph,
suitable for the small/medium graphs of the experiments, plus a greedy
heuristic used as a warm start.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import InvalidDistanceThresholdError
from repro.graph.graph import Graph, Vertex
from repro.traversal.hneighborhood import h_neighborhood


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


def _power_adjacency(graph: Graph, h: int,
                     vertices: Optional[Set[Vertex]] = None) -> Dict[Vertex, Set[Vertex]]:
    """Return the h-power-graph adjacency restricted to ``vertices`` (as a dict).

    Distances are measured in the full graph (h-clique semantics).
    """
    universe = set(vertices) if vertices is not None else set(graph.vertices())
    adjacency: Dict[Vertex, Set[Vertex]] = {}
    for v in universe:
        adjacency[v] = {u for u in h_neighborhood(graph, v, h) if u in universe}
    return adjacency


def is_h_clique(graph: Graph, vertices: Set[Vertex], h: int) -> bool:
    """Return True if ``vertices`` is an h-clique of ``graph``."""
    _validate_h(h)
    members = set(vertices)
    for v in members:
        if v not in graph:
            return False
        reachable = h_neighborhood(graph, v, h)
        if not (members - {v}) <= reachable:
            return False
    return True


def greedy_h_clique(graph: Graph, h: int,
                    seed_vertex: Optional[Vertex] = None) -> Set[Vertex]:
    """Return a (maximal, not maximum) h-clique grown greedily.

    Starts from ``seed_vertex`` (default: the vertex of maximum h-degree) and
    repeatedly adds the candidate adjacent (in the power graph) to every
    current member, preferring high-h-degree candidates.
    """
    _validate_h(h)
    if graph.num_vertices == 0:
        return set()
    adjacency = _power_adjacency(graph, h)
    if seed_vertex is None:
        seed_vertex = max(adjacency, key=lambda v: (len(adjacency[v]), repr(v)))
    clique = {seed_vertex}
    candidates = set(adjacency[seed_vertex])
    while candidates:
        best = max(candidates, key=lambda v: (len(adjacency[v] & candidates), repr(v)))
        clique.add(best)
        candidates &= adjacency[best]
    return clique


def maximum_h_clique(graph: Graph, h: int,
                     candidate_vertices: Optional[Set[Vertex]] = None) -> Set[Vertex]:
    """Return a maximum h-clique by branch-and-bound (Bron–Kerbosch style).

    The search runs over the implicit h-power graph restricted to
    ``candidate_vertices`` (default: all vertices).  Exponential worst case;
    intended for the modest graph sizes of the reproduction experiments.
    """
    _validate_h(h)
    if graph.num_vertices == 0:
        return set()
    adjacency = _power_adjacency(graph, h, candidate_vertices)
    best: Set[Vertex] = set(greedy_h_clique(graph, h)) if candidate_vertices is None else set()
    if candidate_vertices is not None:
        best = set()

    # Order candidates by degeneracy-ish order (ascending power degree) for
    # the outer loop, the standard maximum-clique trick.
    order = sorted(adjacency, key=lambda v: (len(adjacency[v]), repr(v)))
    position = {v: i for i, v in enumerate(order)}

    def expand(current: List[Vertex], candidates: Set[Vertex]) -> None:
        nonlocal best
        if len(current) + len(candidates) <= len(best):
            return
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        # Pick candidates in a fixed order; classic branch and bound.
        for v in sorted(candidates, key=lambda u: (-len(adjacency[u] & candidates), repr(u))):
            if len(current) + len(candidates) <= len(best):
                return
            candidates = candidates - {v}
            current.append(v)
            expand(current, candidates & adjacency[v])
            current.pop()

    for v in order:
        later = {u for u in adjacency[v] if position[u] > position[v]}
        expand([v], later)
    return best

"""Distance-h coloring and the chromatic-number bound (§5.1, Theorem 1).

A distance-h coloring assigns colors so that any two vertices of the same
color are more than ``h`` hops apart (equivalently: a proper coloring of the
h-power graph).  Finding the distance-h chromatic number is NP-hard for any
fixed h >= 2 (McCormick), but Theorem 1 bounds it by ``1 + Ĉ_h(G)`` where
``Ĉ_h(G)`` is the h-degeneracy, and a greedy coloring in reverse peeling
(smallest-last) order realizes a small number of colors in practice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.decomposition import core_decomposition
from repro.core.hlb import h_lb
from repro.core.classic import classic_core_decomposition
from repro.traversal.hneighborhood import h_neighborhood


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


def smallest_last_order(graph: Graph, h: int) -> List[Vertex]:
    """Return a smallest-last (degeneracy) ordering w.r.t. h-degrees.

    The order is the removal order of the peeling algorithm: the vertex
    removed first (smallest current h-degree) comes first.  Coloring in the
    *reverse* of this order is the greedy strategy of Theorem 1's proof.
    """
    _validate_h(h)
    if h == 1:
        decomposition = classic_core_decomposition(graph)
    else:
        decomposition = h_lb(graph, h)
    assert decomposition.removal_order is not None
    return decomposition.removal_order


def distance_h_greedy_coloring(graph: Graph, h: int,
                               order: Optional[Sequence[Vertex]] = None
                               ) -> Dict[Vertex, int]:
    """Greedily build a valid distance-h coloring of ``graph``.

    Vertices are colored in the given order (default: reverse smallest-last
    order); each vertex receives the smallest color not used by any
    already-colored vertex within distance ``h`` **in the full graph**, so the
    returned coloring is always a valid distance-h coloring.

    Returns
    -------
    dict
        ``vertex -> color`` with colors ``0 .. num_colors - 1``.
    """
    _validate_h(h)
    if order is None:
        order = list(reversed(smallest_last_order(graph, h)))
    else:
        order = list(order)
        if set(order) != set(graph.vertices()):
            raise ParameterError("the coloring order must contain every vertex exactly once")

    colors: Dict[Vertex, int] = {}
    for v in order:
        forbidden = {
            colors[u]
            for u in h_neighborhood(graph, v, h)
            if u in colors
        }
        color = 0
        while color in forbidden:
            color += 1
        colors[v] = color
    return colors


def is_valid_distance_h_coloring(graph: Graph, h: int,
                                 colors: Dict[Vertex, int]) -> bool:
    """Check that ``colors`` is a valid distance-h coloring of ``graph``."""
    _validate_h(h)
    for v in graph.vertices():
        if v not in colors:
            return False
        for u in h_neighborhood(graph, v, h):
            if colors.get(u) == colors[v]:
                return False
    return True


def chromatic_number_upper_bound(graph: Graph, h: int) -> int:
    """Return ``1 + Ĉ_h(G)``, the Theorem 1 upper bound on χ_h(G)."""
    _validate_h(h)
    if graph.num_vertices == 0:
        return 0
    return 1 + core_decomposition(graph, h).degeneracy


def exact_distance_h_chromatic_number(graph: Graph, h: int,
                                      max_vertices: int = 24) -> int:
    """Return the exact distance-h chromatic number by backtracking search.

    Exponential in the worst case — guarded by ``max_vertices`` — and used
    only as a test oracle and in the tiny illustrative examples.
    """
    _validate_h(h)
    n = graph.num_vertices
    if n == 0:
        return 0
    if n > max_vertices:
        raise ParameterError(
            f"exact chromatic number limited to {max_vertices} vertices (got {n})"
        )
    vertices = sorted(graph.vertices(), key=repr)
    conflict = {v: h_neighborhood(graph, v, h) for v in vertices}
    # Order vertices by decreasing conflict degree: hard vertices first prunes better.
    vertices.sort(key=lambda v: -len(conflict[v]))

    def can_color(num_colors: int) -> bool:
        colors: Dict[Vertex, int] = {}

        def backtrack(index: int) -> bool:
            if index == len(vertices):
                return True
            v = vertices[index]
            forbidden = {colors[u] for u in conflict[v] if u in colors}
            used_so_far = max(colors.values(), default=-1)
            # Only try one brand-new color (symmetry breaking).
            limit = min(num_colors, used_so_far + 2)
            for color in range(limit):
                if color in forbidden:
                    continue
                colors[v] = color
                if backtrack(index + 1):
                    return True
                del colors[v]
            return False

        return backtrack(0)

    for num_colors in range(1, n + 1):
        if can_color(num_colors):
            return num_colors
    return n

"""Landmark selection for shortest-path distance estimation (§6.6, Table 7).

Given a set ``L`` of landmarks with precomputed single-source distances, the
distance ``d(s, t)`` is sandwiched by the triangle-inequality bounds

    max_{u in L} |d(s,u) - d(u,t)|   <=   d(s,t)   <=   min_{u in L} d(s,u) + d(u,t)

and estimated by the midpoint of the two bounds.  The paper's hypothesis —
confirmed by Table 7 — is that picking landmarks at random from the **maximum
(k,h)-core** (for h around 3-4) beats the standard closeness / betweenness /
degree heuristics, because inner-core vertices sit inside a large dense
region and are therefore close to most of the network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.graph import Graph, Vertex
from repro.core.decomposition import core_decomposition
from repro.core.result import CoreDecomposition
from repro.traversal.bfs import bfs_distances
from repro.traversal.centrality import (
    betweenness_centrality,
    closeness_centrality,
    top_k_by_centrality,
)
from repro.traversal.hneighborhood import all_h_degrees

#: Selection strategies accepted by :func:`select_landmarks`.
LANDMARK_STRATEGIES = (
    "max-core",       # random vertices from the maximum (k,h)-core (the paper's proposal)
    "closeness",      # top-ℓ closeness centrality
    "betweenness",    # top-ℓ betweenness centrality
    "h-degree",       # top-ℓ h-degree (deg^h_G)
    "degree",         # top-ℓ plain degree (h-degree with h = 1)
    "random",         # uniform random vertices (sanity baseline)
)


def select_landmarks(graph: Graph, num_landmarks: int, strategy: str = "max-core",
                     h: int = 3, seed: Optional[int] = None,
                     decomposition: Optional[CoreDecomposition] = None
                     ) -> List[Vertex]:
    """Return ``num_landmarks`` landmark vertices chosen by ``strategy``.

    ``h`` is used by the ``"max-core"`` and ``"h-degree"`` strategies; the
    other strategies ignore it.  When the maximum core is smaller than the
    requested number of landmarks, lower cores are added until enough
    vertices are available (so the function always returns exactly
    ``min(num_landmarks, |V|)`` landmarks).
    """
    if num_landmarks <= 0:
        raise ParameterError("num_landmarks must be positive")
    if strategy not in LANDMARK_STRATEGIES:
        raise ParameterError(
            f"unknown landmark strategy {strategy!r}; expected one of {LANDMARK_STRATEGIES}"
        )
    vertices = sorted(graph.vertices(), key=repr)
    num_landmarks = min(num_landmarks, len(vertices))
    rng = random.Random(seed)

    if strategy == "random":
        return rng.sample(vertices, num_landmarks)
    if strategy == "closeness":
        return top_k_by_centrality(closeness_centrality(graph), num_landmarks)
    if strategy == "betweenness":
        return top_k_by_centrality(betweenness_centrality(graph), num_landmarks)
    if strategy in ("h-degree", "degree"):
        effective_h = 1 if strategy == "degree" else h
        degrees = all_h_degrees(graph, effective_h)
        ranked = sorted(degrees.items(), key=lambda item: (-item[1], repr(item[0])))
        return [v for v, _ in ranked[:num_landmarks]]

    # strategy == "max-core": random vertices from the deepest (k,h)-core,
    # falling back to progressively lower cores if it is too small.
    if decomposition is None:
        decomposition = core_decomposition(graph, h)
    chosen: List[Vertex] = []
    k = decomposition.degeneracy
    already = set()
    while len(chosen) < num_landmarks and k >= 0:
        candidates = sorted(decomposition.core(k) - already, key=repr)
        take = min(num_landmarks - len(chosen), len(candidates))
        if take > 0:
            picked = rng.sample(candidates, take)
            chosen.extend(picked)
            already.update(picked)
        k -= 1
    return chosen


class LandmarkOracle:
    """A landmark-based approximate shortest-path-distance oracle.

    Precomputes one BFS per landmark; queries combine the stored distances
    with the triangle inequality to produce a lower bound, an upper bound,
    and a midpoint estimate.
    """

    def __init__(self, graph: Graph, landmarks: Sequence[Vertex]) -> None:
        if not landmarks:
            raise ParameterError("at least one landmark is required")
        for landmark in landmarks:
            if landmark not in graph:
                raise VertexNotFoundError(landmark)
        self.graph = graph
        self.landmarks = list(landmarks)
        self._distances: Dict[Vertex, Dict[Vertex, int]] = {
            landmark: bfs_distances(graph, landmark) for landmark in self.landmarks
        }

    def bounds(self, s: Vertex, t: Vertex) -> Tuple[Optional[int], Optional[int]]:
        """Return ``(lower_bound, upper_bound)`` on ``d(s, t)``.

        Either bound is None when no landmark reaches both endpoints.
        """
        if s == t:
            return 0, 0
        lower: Optional[int] = None
        upper: Optional[int] = None
        for landmark in self.landmarks:
            table = self._distances[landmark]
            if s not in table or t not in table:
                continue
            ds, dt = table[s], table[t]
            pair_lower = abs(ds - dt)
            pair_upper = ds + dt
            lower = pair_lower if lower is None else max(lower, pair_lower)
            upper = pair_upper if upper is None else min(upper, pair_upper)
        return lower, upper

    def estimate(self, s: Vertex, t: Vertex) -> Optional[float]:
        """Return the midpoint estimate ``(LB + UB) / 2`` (None if unbounded)."""
        lower, upper = self.bounds(s, t)
        if lower is None or upper is None:
            return None
        return (lower + upper) / 2.0


@dataclass
class LandmarkEvaluation:
    """Aggregated approximation quality of one landmark selection."""

    strategy: str
    h: int
    num_landmarks: int
    num_pairs: int
    mean_relative_error: float
    errors: List[float] = field(default_factory=list)


def evaluate_landmarks(graph: Graph, landmarks: Sequence[Vertex],
                       num_pairs: int = 500, seed: Optional[int] = None,
                       strategy: str = "", h: int = 0) -> LandmarkEvaluation:
    """Measure the mean relative error of the midpoint estimate on random pairs.

    Pairs are sampled uniformly among connected (s, t) pairs with ``s != t``;
    the error of one pair is ``|estimate - d(s,t)| / d(s,t)`` — the metric of
    Table 7.
    """
    rng = random.Random(seed)
    oracle = LandmarkOracle(graph, landmarks)
    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) < 2:
        return LandmarkEvaluation(strategy, h, len(landmarks), 0, 0.0, [])

    errors: List[float] = []
    attempts = 0
    max_attempts = num_pairs * 20
    while len(errors) < num_pairs and attempts < max_attempts:
        attempts += 1
        s, t = rng.sample(vertices, 2)
        true_distances = bfs_distances(graph, s)
        if t not in true_distances:
            continue
        true_distance = true_distances[t]
        if true_distance == 0:
            continue
        estimate = oracle.estimate(s, t)
        if estimate is None:
            continue
        errors.append(abs(estimate - true_distance) / true_distance)
    mean_error = sum(errors) / len(errors) if errors else 0.0
    return LandmarkEvaluation(
        strategy=strategy,
        h=h,
        num_landmarks=len(landmarks),
        num_pairs=len(errors),
        mean_relative_error=mean_error,
        errors=errors,
    )

"""Distance-generalized cocktail party / community search (Appendix B).

Given a set of query vertices ``Q``, find a connected vertex set containing
``Q`` that maximizes the *minimum h-degree* of its members — the
distance-generalization of Sozio & Gionis' cocktail-party problem.  The
optimal solution is the connected component, inside the (k,h)-core with the
largest ``k`` that keeps all query vertices connected, that contains them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set

from repro.errors import InvalidDistanceThresholdError, ParameterError, VertexNotFoundError
from repro.graph.graph import Graph, Vertex
from repro.core.decomposition import core_decomposition
from repro.core.result import CoreDecomposition
from repro.traversal.components import connected_components
from repro.applications.densest import average_h_degree
from repro.traversal.hneighborhood import all_h_degrees


@dataclass
class CommunityResult:
    """Solution of a distance-generalized cocktail-party query."""

    vertices: Set[Vertex] = field(default_factory=set)
    min_h_degree: int = 0
    k: int = 0

    @property
    def size(self) -> int:
        """Number of vertices in the community."""
        return len(self.vertices)


def cocktail_party(graph: Graph, query_vertices: Iterable[Vertex], h: int,
                   decomposition: Optional[CoreDecomposition] = None,
                   algorithm: str = "auto") -> CommunityResult:
    """Solve the distance-generalized cocktail-party problem (Problem 2).

    Parameters
    ----------
    graph:
        The input graph.
    query_vertices:
        Non-empty set of query vertices that must be contained (and mutually
        connected) in the returned community.
    h:
        Distance threshold for the h-degree objective.
    decomposition:
        Optionally reuse a precomputed decomposition.
    algorithm:
        Decomposition algorithm used when ``decomposition`` is None.

    Returns
    -------
    CommunityResult
        The connected component of the deepest core that contains all query
        vertices; its ``min_h_degree`` is the achieved objective value.

    Raises
    ------
    ParameterError
        If the query set is empty or the query vertices can never be
        connected (they lie in different connected components of the graph).
    """
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)
    query = set(query_vertices)
    if not query:
        raise ParameterError("the cocktail-party query needs at least one vertex")
    for q in query:
        if q not in graph:
            raise VertexNotFoundError(q)

    if decomposition is None:
        decomposition = core_decomposition(graph, h, algorithm=algorithm)

    # The community can be at best as deep as the shallowest query vertex.
    k_start = min(decomposition.core_index[q] for q in query)
    for k in range(k_start, -1, -1):
        core_vertices = decomposition.core(k)
        if not query <= core_vertices:
            continue
        for component in connected_components(graph, alive=core_vertices):
            if query <= component:
                degrees = all_h_degrees(graph, h, alive=component, vertices=component)
                return CommunityResult(
                    vertices=component,
                    min_h_degree=min(degrees.values()) if degrees else 0,
                    k=k,
                )
    raise ParameterError(
        "the query vertices lie in different connected components of the graph"
    )


def community_density(graph: Graph, community: CommunityResult, h: int) -> float:
    """Convenience helper: the average h-degree of a community's vertex set."""
    return average_h_degree(graph, community.vertices, h)

"""Distance-h densest subgraph (§5.3, Problem 1, Theorem 4).

The distance-h densest subgraph maximizes the *average h-degree* of its
vertices, generalizing the classic average-degree densest subgraph (h = 1).
The exact problem is not tractable at scale, so the paper approximates it by
the (k,h)-core with the largest average h-degree, with the guarantee of
Theorem 4: ``f_h(C) >= sqrt(f_h(S*) + 0.25) - 0.5``.

This module provides:

* :func:`average_h_degree` — the objective ``f_h(S)``.
* :func:`densest_core_approximation` — the paper's core-based approximation.
* :func:`greedy_peeling_densest` — the Charikar-style greedy peeling baseline
  (remove the minimum-h-degree vertex, keep the best prefix).
* :func:`exact_densest_subgraph` — brute force over all subsets, usable only
  on tiny graphs, as a test oracle for the approximation guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Set

from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.decomposition import core_decomposition
from repro.core.result import CoreDecomposition
from repro.traversal.hneighborhood import all_h_degrees


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


def average_h_degree(graph: Graph, vertices: Set[Vertex], h: int) -> float:
    """Return ``f_h(S)``: the average h-degree of ``vertices`` in G[vertices]."""
    _validate_h(h)
    members = set(vertices)
    if not members:
        return 0.0
    degrees = all_h_degrees(graph, h, alive=members, vertices=members)
    return sum(degrees.values()) / len(members)


@dataclass
class DensestSubgraphResult:
    """A candidate distance-h densest subgraph and its objective value."""

    vertices: Set[Vertex] = field(default_factory=set)
    density: float = 0.0
    method: str = "core-approximation"

    @property
    def size(self) -> int:
        """Number of vertices of the candidate subgraph."""
        return len(self.vertices)


def densest_core_approximation(graph: Graph, h: int,
                               decomposition: Optional[CoreDecomposition] = None,
                               algorithm: str = "auto") -> DensestSubgraphResult:
    """Return the (k,h)-core with the maximum average h-degree (Theorem 4).

    The returned density is guaranteed to be at least
    ``sqrt(f_h(S*) + 0.25) - 0.5`` where ``S*`` is the true optimum.
    """
    _validate_h(h)
    if graph.num_vertices == 0:
        return DensestSubgraphResult(set(), 0.0, "core-approximation")
    if decomposition is None:
        decomposition = core_decomposition(graph, h, algorithm=algorithm)
    best_vertices: Set[Vertex] = set(graph.vertices())
    best_density = average_h_degree(graph, best_vertices, h)
    for k in range(1, decomposition.degeneracy + 1):
        core_vertices = decomposition.core(k)
        if not core_vertices:
            continue
        density = average_h_degree(graph, core_vertices, h)
        if density > best_density:
            best_density = density
            best_vertices = core_vertices
    return DensestSubgraphResult(best_vertices, best_density, "core-approximation")


def greedy_peeling_densest(graph: Graph, h: int) -> DensestSubgraphResult:
    """Charikar-style greedy peeling for the distance-h densest subgraph.

    Iteratively removes the vertex of minimum h-degree (recomputing h-degrees
    from scratch, so quadratic-ish — fine at experiment scale) and returns the
    densest prefix encountered.
    """
    _validate_h(h)
    alive: Set[Vertex] = set(graph.vertices())
    best_vertices: Set[Vertex] = set(alive)
    best_density = average_h_degree(graph, alive, h) if alive else 0.0
    while len(alive) > 1:
        degrees = all_h_degrees(graph, h, alive=alive, vertices=alive)
        victim = min(degrees, key=lambda v: (degrees[v], repr(v)))
        alive.discard(victim)
        density = average_h_degree(graph, alive, h)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)
    return DensestSubgraphResult(best_vertices, best_density, "greedy-peeling")


def exact_densest_subgraph(graph: Graph, h: int,
                           max_vertices: int = 14) -> DensestSubgraphResult:
    """Brute-force the distance-h densest subgraph (tiny graphs only).

    Enumerates every non-empty vertex subset; guarded by ``max_vertices``.
    Used as the oracle in the Theorem 4 approximation-ratio tests.
    """
    _validate_h(h)
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "exact")
    if n > max_vertices:
        raise ParameterError(
            f"exact densest subgraph limited to {max_vertices} vertices (got {n})"
        )
    vertices = sorted(graph.vertices(), key=repr)
    best: Set[Vertex] = {vertices[0]}
    best_density = 0.0
    for size in range(1, n + 1):
        for subset in combinations(vertices, size):
            members = set(subset)
            density = average_h_degree(graph, members, h)
            if density > best_density:
                best_density = density
                best = members
    return DensestSubgraphResult(best, best_density, "exact")


def theorem4_lower_bound(optimal_density: float) -> float:
    """Return the Theorem 4 guarantee ``sqrt(f_h(S*) + 0.25) - 0.5``."""
    if optimal_density < 0:
        raise ParameterError("densities are non-negative")
    return math.sqrt(optimal_density + 0.25) - 0.5

"""Applications of the distance-generalized core decomposition (§5, §6.5-6.6).

* :mod:`repro.applications.coloring` — distance-h coloring and the chromatic
  number bound of Theorem 1.
* :mod:`repro.applications.hclique` — h-cliques (and their relation to the
  power graph).
* :mod:`repro.applications.hclub` — exact maximum h-club solvers and the
  (k,h)-core wrapper of Algorithm 7 / Theorem 3.
* :mod:`repro.applications.densest` — the distance-h densest subgraph and the
  core-based approximation of Theorem 4.
* :mod:`repro.applications.community` — the distance-generalized cocktail
  party (community search) problem of Appendix B.
* :mod:`repro.applications.landmarks` — landmark selection for shortest-path
  distance estimation (§6.6).
"""

from repro.applications.coloring import (
    distance_h_greedy_coloring,
    chromatic_number_upper_bound,
    is_valid_distance_h_coloring,
    exact_distance_h_chromatic_number,
)
from repro.applications.hclique import (
    is_h_clique,
    maximum_h_clique,
    greedy_h_clique,
)
from repro.applications.hclub import (
    is_h_club,
    drop_heuristic_h_club,
    DBCSolver,
    ITDBCSolver,
    maximum_h_club,
    maximum_h_club_with_core,
)
from repro.applications.densest import (
    average_h_degree,
    densest_core_approximation,
    greedy_peeling_densest,
    exact_densest_subgraph,
)
from repro.applications.community import cocktail_party
from repro.applications.landmarks import (
    LandmarkOracle,
    select_landmarks,
    evaluate_landmarks,
    LANDMARK_STRATEGIES,
)

__all__ = [
    "distance_h_greedy_coloring",
    "chromatic_number_upper_bound",
    "is_valid_distance_h_coloring",
    "exact_distance_h_chromatic_number",
    "is_h_clique",
    "maximum_h_clique",
    "greedy_h_clique",
    "is_h_club",
    "drop_heuristic_h_club",
    "DBCSolver",
    "ITDBCSolver",
    "maximum_h_club",
    "maximum_h_club_with_core",
    "average_h_degree",
    "densest_core_approximation",
    "greedy_peeling_densest",
    "exact_densest_subgraph",
    "cocktail_party",
    "LandmarkOracle",
    "select_landmarks",
    "evaluate_landmarks",
    "LANDMARK_STRATEGIES",
]

"""Maximum h-club: exact solvers and the (k,h)-core wrapper (§5.2, Alg. 7).

An h-club (Definition 5) is a vertex set whose *induced subgraph* has
diameter at most ``h``.  Finding a maximum h-club is NP-hard and, unlike
cliques, h-clubs are not closed under set inclusion, which makes the problem
notoriously awkward.  The paper's contribution here (Theorem 3) is that every
h-club of size ``k + 1`` is contained in the (k,h)-core, so any exact solver
can be wrapped to run on a (much smaller) core instead of the whole graph
(Algorithm 7).

The paper uses the Gurobi-based DBC and ITDBC integer-programming solvers of
Moradi & Balasundaram as the black box.  No IP solver is available offline,
so this module provides pure-Python exact solvers with the same roles:

* :class:`DBCSolver` — a combinatorial branch-and-bound over "far pairs"
  (Bourjolly-style): if the current candidate set has two vertices farther
  than ``h`` apart in its induced subgraph, branch by excluding one or the
  other.
* :class:`ITDBCSolver` — an iterative variant that solves one
  h-neighborhood-restricted subproblem per vertex (every h-club containing
  ``v`` lies inside ``N_G(v, h) ∪ {v}``), carrying the incumbent across
  subproblems.

Both are exact (when they terminate within their time budget) and expose the
same interface, so Algorithm 7 can wrap either — which is all Table 6 needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.decomposition import core_decomposition
from repro.core.result import CoreDecomposition
from repro.traversal.bfs import h_bounded_bfs
from repro.traversal.hneighborhood import h_neighborhood


def _validate_h(h: int) -> None:
    if not isinstance(h, int) or isinstance(h, bool) or h < 1:
        raise InvalidDistanceThresholdError(h)


def _far_map(graph: Graph, members: Set[Vertex], h: int) -> Dict[Vertex, Set[Vertex]]:
    """For each member, the other members farther than ``h`` away in G[members]."""
    far: Dict[Vertex, Set[Vertex]] = {}
    for v in members:
        reachable = set(h_bounded_bfs(graph, v, h, alive=members))
        far[v] = members - reachable
    return far


def is_h_club(graph: Graph, vertices: Set[Vertex], h: int) -> bool:
    """Return True if ``vertices`` induces a subgraph of diameter at most ``h``."""
    _validate_h(h)
    members = set(vertices)
    if not members <= set(graph.vertices()):
        return False
    if len(members) <= 1:
        return True
    far = _far_map(graph, members, h)
    return all(not far_set for far_set in far.values())


def drop_heuristic_h_club(graph: Graph, h: int,
                          candidate: Optional[Set[Vertex]] = None) -> Set[Vertex]:
    """Return an h-club by the DROP heuristic (Bourjolly, Laporte & Pesant).

    Starting from ``candidate`` (default: all vertices), repeatedly remove
    the vertex involved in the largest number of "far" (distance > h) pairs
    until the remaining set is an h-club.  The result is a feasible h-club
    used as the branch-and-bound incumbent.
    """
    _validate_h(h)
    members = set(candidate) if candidate is not None else set(graph.vertices())
    members &= set(graph.vertices())
    while len(members) > 1:
        far = _far_map(graph, members, h)
        worst = max(members, key=lambda v: (len(far[v]), repr(v)))
        if not far[worst]:
            return members
        members.discard(worst)
    return members


@dataclass
class HClubResult:
    """Outcome of a maximum-h-club computation."""

    vertices: Set[Vertex] = field(default_factory=set)
    optimal: bool = True
    nodes_explored: int = 0
    seconds: float = 0.0
    solver: str = "DBC"

    @property
    def size(self) -> int:
        """Number of vertices in the best h-club found."""
        return len(self.vertices)


class _BranchAndBound:
    """Include/exclude branch-and-bound with far-vertex propagation.

    The search state is a candidate set ``members`` and a set of ``required``
    vertices that any solution in this subtree must contain.  At every node:

    * vertices that are farther than ``h`` (within ``G[members]``) from a
      required vertex can never join it in an h-club, so they are removed
      (propagation);
    * if no far pair remains, ``members`` itself is an h-club;
    * otherwise the search branches on the most conflicted optional vertex:
      either it is excluded, or it is required (which immediately removes all
      vertices currently far from it).

    The bound ``max_v |members| - |far(v)|`` (the largest closed
    h-neighborhood inside the candidate subgraph) prunes subtrees that cannot
    beat the incumbent.
    """

    def __init__(self, graph: Graph, h: int, deadline: Optional[float]) -> None:
        self.graph = graph
        self.h = h
        self.deadline = deadline
        self.nodes = 0
        self.timed_out = False

    def search(self, members: Set[Vertex], best: Set[Vertex],
               required: Optional[Set[Vertex]] = None) -> Set[Vertex]:
        """Return the best h-club within ``members`` (containing ``required``)
        that beats ``best``, or ``best`` itself."""
        required = set() if required is None else required
        self.nodes += 1
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.timed_out = True
            return best
        if len(members) <= len(best):
            return best
        far = _far_map(self.graph, members, self.h)

        # Propagation: anything far from a required vertex must go; if two
        # required vertices are mutually far, this subtree is infeasible.
        to_remove: Set[Vertex] = set()
        for vertex in required:
            to_remove |= far[vertex]
        if to_remove & required:
            return best
        if to_remove:
            return self.search(members - to_remove, best, required)

        conflicted = [v for v in members if far[v]]
        if not conflicted:
            return set(members)

        # Upper bound: any h-club inside `members` containing v fits inside
        # v's closed h-neighborhood within G[members] (|members| - |far(v)|).
        upper_bound = max(len(members) - len(far_set) for far_set in far.values())
        if upper_bound <= len(best):
            return best

        # Branch on the optional vertex with the most far partners: excluding
        # it resolves many conflicts, requiring it removes many vertices.
        pivot = max((v for v in conflicted if v not in required),
                    key=lambda v: (len(far[v]), repr(v)), default=None)
        if pivot is None:
            # Only required vertices are conflicted, which propagation already
            # ruled out — nothing feasible here.
            return best
        best = self.search(members - {pivot}, best, required)
        if not self.timed_out:
            best = self.search(members - far[pivot], best, required | {pivot})
        return best


class DBCSolver:
    """Exact maximum-h-club solver on the whole candidate set.

    Stand-in for the paper's DBC integer-programming solver: same role (an
    exact black-box A(G, h)), different machinery (combinatorial far-pair
    branch and bound with a DROP-heuristic incumbent).
    """

    name = "DBC"

    def __init__(self, time_budget_seconds: Optional[float] = None) -> None:
        self.time_budget_seconds = time_budget_seconds

    def solve(self, graph: Graph, h: int,
              candidate: Optional[Set[Vertex]] = None,
              initial_best: Optional[Set[Vertex]] = None) -> HClubResult:
        """Return a maximum h-club within ``candidate`` (default: all vertices)."""
        _validate_h(h)
        start = time.perf_counter()
        deadline = (start + self.time_budget_seconds
                    if self.time_budget_seconds is not None else None)
        members = set(candidate) if candidate is not None else set(graph.vertices())
        members &= set(graph.vertices())
        best = set(initial_best) if initial_best else set()
        if len(members) > len(best):
            incumbent = drop_heuristic_h_club(graph, h, candidate=members)
            if len(incumbent) > len(best):
                best = incumbent
        engine = _BranchAndBound(graph, h, deadline)
        best = engine.search(members, best)
        return HClubResult(
            vertices=best,
            optimal=not engine.timed_out,
            nodes_explored=engine.nodes,
            seconds=time.perf_counter() - start,
            solver=self.name,
        )


class ITDBCSolver:
    """Iterative exact maximum-h-club solver.

    Every h-club containing ``v`` lies inside ``N_G(v, h) ∪ {v}``, so the
    global maximum can be found by solving one neighborhood-restricted
    subproblem per vertex, carrying the incumbent along and skipping any
    vertex whose closed h-neighborhood is already no larger than the
    incumbent.  Mirrors the role of the paper's ITDBC baseline: typically far
    less memory-hungry than the single monolithic search.
    """

    name = "ITDBC"

    def __init__(self, time_budget_seconds: Optional[float] = None) -> None:
        self.time_budget_seconds = time_budget_seconds

    def solve(self, graph: Graph, h: int,
              candidate: Optional[Set[Vertex]] = None,
              initial_best: Optional[Set[Vertex]] = None) -> HClubResult:
        """Return a maximum h-club within ``candidate`` (default: all vertices)."""
        _validate_h(h)
        start = time.perf_counter()
        deadline = (start + self.time_budget_seconds
                    if self.time_budget_seconds is not None else None)
        universe = set(candidate) if candidate is not None else set(graph.vertices())
        universe &= set(graph.vertices())
        best = set(initial_best) if initial_best else set()
        nodes = 0
        timed_out = False

        neighborhoods = {
            v: ({u for u in h_neighborhood(graph, v, h) if u in universe} | {v})
            for v in universe
        }
        # Large neighborhoods first: they are the likeliest to contain the optimum
        # and give strong incumbents early.  After a vertex's subproblem is
        # solved the vertex is retired from the remaining subproblems (every
        # club containing it has been accounted for), which keeps the later
        # subproblems small.
        order = sorted(universe, key=lambda v: (-len(neighborhoods[v]), repr(v)))
        remaining = set(universe)
        for v in order:
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                break
            candidate = (neighborhoods[v] & remaining) | {v}
            if len(candidate) <= len(best):
                remaining.discard(v)
                continue
            engine = _BranchAndBound(graph, h, deadline)
            best = engine.search(candidate, best, required={v})
            nodes += engine.nodes
            if engine.timed_out:
                timed_out = True
                break
            remaining.discard(v)
        return HClubResult(
            vertices=best,
            optimal=not timed_out,
            nodes_explored=nodes,
            seconds=time.perf_counter() - start,
            solver=self.name,
        )


def maximum_h_club(graph: Graph, h: int, method: str = "dbc",
                   time_budget_seconds: Optional[float] = None) -> HClubResult:
    """Return a maximum h-club of ``graph`` with the chosen exact solver."""
    _validate_h(h)
    if method.lower() == "dbc":
        return DBCSolver(time_budget_seconds).solve(graph, h)
    if method.lower() == "itdbc":
        return ITDBCSolver(time_budget_seconds).solve(graph, h)
    raise ParameterError(f"unknown maximum h-club method {method!r}; use 'dbc' or 'itdbc'")


def maximum_h_club_with_core(graph: Graph, h: int,
                             solver: Optional[object] = None,
                             decomposition: Optional[CoreDecomposition] = None,
                             algorithm: str = "auto") -> HClubResult:
    """Maximum h-club via the (k,h)-core wrapper (Algorithm 7, Theorem 3).

    The black-box solver is only ever run on (k,h)-cores, starting from the
    innermost one: an h-club of size ``S > k`` found inside the (k,h)-core is
    globally maximum (any larger club would have to live in a higher core,
    which does not exist); otherwise the search continues in the core of
    index ``min(S, k - 1)``.

    Parameters
    ----------
    graph, h:
        Problem instance.
    solver:
        Object with a ``solve(graph, h, candidate=..., initial_best=...)``
        method (a :class:`DBCSolver` by default).
    decomposition:
        Optionally reuse an existing decomposition (the experiment harness
        computes it once per dataset/h pair).
    algorithm:
        Decomposition algorithm to use when ``decomposition`` is None.
    """
    _validate_h(h)
    if solver is None:
        solver = DBCSolver()
    start = time.perf_counter()
    if decomposition is None:
        decomposition = core_decomposition(graph, h, algorithm=algorithm)
    total_nodes = 0
    best: Set[Vertex] = set()
    k_current = decomposition.degeneracy
    while k_current >= 0:
        core_vertices = decomposition.core(k_current)
        if not core_vertices:
            k_current -= 1
            continue
        result = solver.solve(graph, h, candidate=core_vertices, initial_best=best)
        total_nodes += result.nodes_explored
        if result.size > len(best):
            best = set(result.vertices)
        if not result.optimal:
            return HClubResult(vertices=best, optimal=False,
                               nodes_explored=total_nodes,
                               seconds=time.perf_counter() - start,
                               solver=f"Alg7+{getattr(solver, 'name', 'solver')}")
        if result.size > k_current or k_current == 0:
            # Theorem 3: any h-club of size > k_current would live in a higher
            # core, which we have already searched — the incumbent is optimal.
            break
        if result.size > 0:
            k_current = min(result.size, k_current - 1)
        else:
            k_current -= 1
    return HClubResult(
        vertices=best,
        optimal=True,
        nodes_explored=total_nodes,
        seconds=time.perf_counter() - start,
        solver=f"Alg7+{getattr(solver, 'name', 'solver')}",
    )

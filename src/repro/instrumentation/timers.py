"""Simple wall-clock timers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional


class Timer:
    """A restartable wall-clock timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and add the elapsed interval to :attr:`elapsed`."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self._start = None
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(callback: Callable[[float], None]) -> Iterator[None]:
    """Context manager that reports the elapsed seconds to ``callback``.

    Example
    -------
    >>> durations = []
    >>> with timed(durations.append):
    ...     _ = sum(range(1000))
    >>> len(durations)
    1
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        callback(time.perf_counter() - start)

"""Per-run reports combining timing and work counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.instrumentation.counters import Counters


@dataclass
class RunReport:
    """Summary of one algorithm run.

    The experiment harness stores one :class:`RunReport` per (dataset,
    algorithm, h) cell and the table formatters read from it.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced this run (e.g. ``"h-LB+UB"``).
    dataset:
        Name of the input dataset.
    h:
        Distance threshold used for the run.
    seconds:
        Wall-clock runtime.
    counters:
        Work counters gathered during the run.
    result:
        Optional algorithm-specific payload (e.g. a ``CoreDecomposition``).
    params:
        Any extra parameters that identify the run (e.g. partition size S).
    """

    algorithm: str
    dataset: str
    h: int
    seconds: float = 0.0
    counters: Counters = field(default_factory=Counters)
    result: Optional[Any] = None
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def visits(self) -> int:
        """Total vertices visited across all h-BFS traversals (Table 3)."""
        return self.counters.vertices_visited

    def as_row(self) -> Dict[str, Any]:
        """Flatten the report to a printable row dictionary."""
        row: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "h": self.h,
            "seconds": round(self.seconds, 4),
            "visits": self.visits,
        }
        row.update({f"param_{k}": v for k, v in sorted(self.params.items())})
        return row

    def __str__(self) -> str:
        return (
            f"{self.algorithm} on {self.dataset} (h={self.h}): "
            f"{self.seconds:.3f}s, {self.visits} vertices visited"
        )

"""Instrumentation: counters, timers and run reports.

The paper's efficiency experiments (Table 3, Table 5) report two measures per
run: wall-clock time and "the number of computed point to point distances
(i.e., the total number of possibly repeated vertices visited in all h-bfs)".
This subpackage provides the counter plumbing that every traversal primitive
and decomposition algorithm in :mod:`repro` reports into, so those measures
are observed rather than estimated.
"""

from repro.instrumentation.counters import Counters, NULL_COUNTERS
from repro.instrumentation.timers import Timer, timed
from repro.instrumentation.report import RunReport

__all__ = ["Counters", "NULL_COUNTERS", "Timer", "timed", "RunReport"]

"""Work counters shared by traversal primitives and decomposition algorithms.

A :class:`Counters` object is threaded (optionally) through every h-bounded
BFS so that a run can report exactly how many vertices were visited, how many
h-degree computations were performed, and how many buckets moves happened —
the quantities the paper uses to explain why h-LB and h-LB+UB beat h-BZ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Counters:
    """Mutable bag of work counters.

    Attributes
    ----------
    vertices_visited:
        Total number of (possibly repeated) vertices visited across all
        h-bounded BFS traversals.  This is the "visits" column of Table 3.
    hdegree_computations:
        Number of full h-degree (re-)computations (each one is an h-BFS).
    hdegree_decrements:
        Number of O(1) decrement-only updates (the ``distance == h`` shortcut
        of Algorithm 3, line 17, and the power-graph peeling of Algorithm 5).
    bucket_moves:
        Number of vertex moves between buckets.
    bfs_calls:
        Number of h-bounded BFS traversals started.
    """

    vertices_visited: int = 0
    hdegree_computations: int = 0
    hdegree_decrements: int = 0
    bucket_moves: int = 0
    bfs_calls: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def record_bfs(self, visited: int) -> None:
        """Record one h-bounded BFS that visited ``visited`` vertices."""
        self.bfs_calls += 1
        self.vertices_visited += visited

    def record_bfs_batch(self, calls: int, visited: int) -> None:
        """Record ``calls`` traversals visiting ``visited`` vertices in total.

        Batch twin of :meth:`record_bfs`, used by the vectorized
        many-sources BFS kernel to flush one block of traversals in a single
        call; totals are identical to ``calls`` individual calls.
        """
        self.bfs_calls += calls
        self.vertices_visited += visited

    def record_hdegree(self, visited: int) -> None:
        """Record a full h-degree computation backed by one h-BFS."""
        self.hdegree_computations += 1
        self.record_bfs(visited)

    def count_hdegree(self) -> None:
        """Record a full h-degree computation whose BFS was counted separately."""
        self.hdegree_computations += 1

    def count_hdegrees(self, count: int) -> None:
        """Record ``count`` h-degree computations in one call (batch twin)."""
        self.hdegree_computations += count

    def record_decrement(self) -> None:
        """Record a decrement-only h-degree update."""
        self.hdegree_decrements += 1

    def record_decrements(self, count: int) -> None:
        """Record ``count`` decrement-only updates in one call.

        Batch twin of :meth:`record_decrement`, used by the array peel
        kernels to flush a locally accumulated count once per removal;
        totals are identical to ``count`` individual calls.
        """
        self.hdegree_decrements += count

    def record_bucket_move(self) -> None:
        """Record a vertex moving between buckets."""
        self.bucket_moves += 1

    def record_bucket_moves(self, count: int) -> None:
        """Record ``count`` bucket moves in one call (batch twin)."""
        self.bucket_moves += count

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def merge(self, other: "Counters") -> None:
        """Add ``other``'s counts into this object (used by thread pools)."""
        self.vertices_visited += other.vertices_visited
        self.hdegree_computations += other.hdegree_computations
        self.hdegree_decrements += other.hdegree_decrements
        self.bucket_moves += other.bucket_moves
        self.bfs_calls += other.bfs_calls
        for key, value in other.extra.items():
            self.bump(key, value)

    def reset(self) -> None:
        """Zero every counter."""
        self.vertices_visited = 0
        self.hdegree_computations = 0
        self.hdegree_decrements = 0
        self.bucket_moves = 0
        self.bfs_calls = 0
        self.extra.clear()

    def as_dict(self) -> Dict[str, int]:
        """Return a plain-dict snapshot (suitable for JSON or tabulation)."""
        snapshot = {
            "vertices_visited": self.vertices_visited,
            "hdegree_computations": self.hdegree_computations,
            "hdegree_decrements": self.hdegree_decrements,
            "bucket_moves": self.bucket_moves,
            "bfs_calls": self.bfs_calls,
        }
        snapshot.update(self.extra)
        return snapshot


class _NullCounters(Counters):
    """A do-nothing counters sink used when instrumentation is not requested.

    Every recording method is overridden to a no-op so the hot loops pay only
    a method-call cost when the caller does not care about the statistics.
    """

    def record_bfs(self, visited: int) -> None:  # noqa: D102 - documented in base
        pass

    def record_bfs_batch(self, calls: int, visited: int) -> None:  # noqa: D102
        pass

    def record_hdegree(self, visited: int) -> None:  # noqa: D102
        pass

    def count_hdegree(self) -> None:  # noqa: D102
        pass

    def count_hdegrees(self, count: int) -> None:  # noqa: D102
        pass

    def record_decrement(self) -> None:  # noqa: D102
        pass

    def record_decrements(self, count: int) -> None:  # noqa: D102
        pass

    def record_bucket_move(self) -> None:  # noqa: D102
        pass

    def record_bucket_moves(self, count: int) -> None:  # noqa: D102
        pass

    def bump(self, key: str, amount: int = 1) -> None:  # noqa: D102
        pass


#: Shared sink instance for "no instrumentation requested".
NULL_COUNTERS = _NullCounters()

"""Supervised wrapper around the shared-memory process pool.

:class:`SupervisedExecutor` presents the exact
:meth:`~repro.parallel.pool.SharedMemoryExecutor.bulk_h_degrees` surface the
engines already call, but survives the failures the raw pool cannot:

* a **transient worker exception** (an ``OSError`` such as a lost
  shared-memory attach race, or an injected fault) re-dispatches just that
  chunk, with exponential backoff + jitter, up to
  ``RetryPolicy.max_retries`` times — deterministic application errors
  (anything else the chunk raises) propagate unchanged on the first
  failure, preserving the raw executor's error contract;
* a **broken pool** (worker killed abruptly — every pending future is lost)
  rebuilds the pool against the *same* shared export and re-dispatches only
  the unfinished chunks, up to ``RetryPolicy.max_pool_rebuilds`` times;
* a **stalled round** (per-chunk deadline × queue depth exceeded) is treated
  like a broken pool: the stragglers are abandoned to the old pool and their
  chunks re-dispatched on a fresh one.

When the budgets are exhausted the dispatch raises
:class:`~repro.errors.WorkerPoolError` (or
:class:`~repro.errors.DeadlineExceededError` when deadlines were the cause),
which the engine's degradation ladder catches to fall back to the thread and
finally the serial executor — a decomposition always completes.

Determinism: successful chunk results are buffered and merged in chunk-plan
order (the order the raw pool merges in), and worker counters are
accumulated into a local scratch that reaches the caller's counters only
when the whole dispatch succeeds — so a pass that fails halfway and is
re-run by the ladder never double-counts, and a fault-free supervised run
is bit-identical (results *and* counters) to the raw pool.
"""

from __future__ import annotations

import math
import os
import random
import time
from concurrent.futures import BrokenExecutor, TimeoutError as FuturesTimeout
from concurrent.futures import as_completed
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceededError,
    FaultInjectedError,
    WorkerPoolError,
)
from repro.graph.csr import CSRGraph
from repro.instrumentation import Counters, NULL_COUNTERS
from repro.parallel.pool import DEFAULT_OVERSUBSCRIPTION, SharedMemoryExecutor
from repro.core.parallel import chunk_plan
from repro.resilience import faults
from repro.resilience.policies import (
    ResilienceReport,
    RetryPolicy,
    chunk_deadline_from_env,
)
from repro.traversal.array_bfs import AliveMask


def supervision_enabled() -> bool:
    """Whether engines should wrap the process pool (``KH_CORE_SUPERVISED``).

    Defaults to on; set ``KH_CORE_SUPERVISED=0`` to run the raw executor
    (used by the benchmark guard to measure supervision overhead).
    """
    return os.environ.get("KH_CORE_SUPERVISED", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


class SupervisedExecutor:
    """Fault-tolerant façade over :class:`SharedMemoryExecutor`.

    Drop-in: everything the engines touch (``bulk_h_degrees``, ``close``,
    ``closed``, ``num_workers``, ``ensure_export``, ``invalidate_export``,
    ``shm_name``) delegates to the wrapped raw executor.
    """

    def __init__(self, num_workers: int,
                 start_method: Optional[str] = None,
                 oversubscription: int = DEFAULT_OVERSUBSCRIPTION,
                 retry: Optional[RetryPolicy] = None,
                 chunk_deadline: Optional[float] = None,
                 report: Optional[ResilienceReport] = None) -> None:
        self._inner = SharedMemoryExecutor(
            num_workers, start_method=start_method,
            oversubscription=oversubscription)
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.chunk_deadline = (
            chunk_deadline if chunk_deadline is not None
            else chunk_deadline_from_env())
        self.report = report if report is not None else ResilienceReport()
        self._rng = random.Random(self.retry.seed)
        self._dispatch_seq = 0

    # -- delegation ----------------------------------------------------- #
    @property
    def num_workers(self) -> int:
        """Worker-process count of the wrapped executor."""
        return self._inner.num_workers

    @property
    def closed(self) -> bool:
        """True once the wrapped executor has been torn down."""
        return self._inner.closed

    @property
    def shm_name(self) -> Optional[str]:
        """Name of the live shared block (None before export / after close)."""
        return self._inner.shm_name

    def ensure_export(self, csr: CSRGraph) -> None:
        """Export ``csr`` on the wrapped executor unless already live."""
        self._inner.ensure_export(csr)

    def invalidate_export(self) -> None:
        """Unlink the wrapped executor's current export."""
        self._inner.invalidate_export()

    def close(self) -> None:
        """Tear the wrapped executor down (idempotent, crash-safe)."""
        self._inner.close()

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- bookkeeping ---------------------------------------------------- #
    def _note(self, counters: Counters, event: str, amount: int = 1) -> None:
        """Record a recovery event in the report and the run's counters."""
        if amount <= 0:
            return
        self.report.note(event, amount)
        if counters is not NULL_COUNTERS:
            counters.bump(f"resilience.{event}", amount)

    def _chunk_fault(self, scope: str) -> Optional[Tuple[Any, ...]]:
        """Parent-side fault probe for one chunk submission.

        Kill/stall schedules are evaluated here — in the parent, on one
        deterministic counter — rather than inside workers, where every
        freshly respawned worker would restart the schedule and re-kill
        forever.  ``scope`` is the dispatch generation, so ``once``
        schedules fire once *per dispatch*.
        """
        plan = faults.active_plan()
        if plan is None:
            return None
        if plan.should_fire("worker.kill", scope=scope):
            self.report.note("faults_injected")
            return ("kill",)
        if plan.should_fire("worker.stall", scope=scope):
            self.report.note("faults_injected")
            return ("stall", plan.stall_seconds)
        return None

    def _round_timeout(self, queued: int) -> Optional[float]:
        """Deadline for one wait round: per-chunk budget × queue depth."""
        if self.chunk_deadline is None:
            return None
        waves = max(1, math.ceil(queued / self._inner.num_workers))
        return self.chunk_deadline * waves

    # -- dispatch ------------------------------------------------------- #
    def bulk_h_degrees(self, csr: CSRGraph, h: int,
                       targets: Iterable[int],
                       alive: Optional[AliveMask] = None,
                       counters: Counters = NULL_COUNTERS,
                       weights: Optional[Sequence[int]] = None,
                       engine_kind: str = "csr") -> Dict[int, int]:
        """Supervised fan-out of the bulk h-degree pass.

        Same contract as the raw executor's method; see the module
        docstring for the recovery semantics layered on top.
        """
        indices = list(targets)
        if not indices:
            return {}
        self._dispatch_seq += 1
        scope = f"dispatch-{self._dispatch_seq}"
        try:
            layout, use_alive, alive_stamp = self._inner.prepare(csr, alive)
            chunks = chunk_plan(
                indices,
                self._inner.num_workers * self._inner.oversubscription,
                weights=weights)
            results, gathered = self._run_chunks(
                chunks, layout, h, use_alive, alive_stamp, engine_kind,
                scope, counters)
        except BaseException:
            # Mirror the raw executor's contract: no failure mode leaks the
            # pool or the shm block (close() is crash-safe now).
            self.close()
            raise
        merged: Dict[int, int] = {}
        for chunk_result in results:
            merged.update(chunk_result)
        if counters is not NULL_COUNTERS:
            counters.merge(gathered)
        return merged

    def _run_chunks(self, chunks: Sequence[Sequence[int]], layout: Any,
                    h: int, use_alive: bool, alive_stamp: int,
                    engine_kind: str, scope: str, counters: Counters
                    ) -> Tuple[List[Dict[int, int]], Counters]:
        """Drive every chunk to completion through retries and rebuilds."""
        pending = set(range(len(chunks)))
        results: List[Optional[Dict[int, int]]] = [None] * len(chunks)
        chunk_counters: List[Optional[Counters]] = [None] * len(chunks)
        attempts = [0] * len(chunks)
        rebuilds = 0
        deadline_was_cause = False
        while pending:
            futures: Dict[Any, int] = {}
            broken = False
            try:
                for chunk_id in sorted(pending):
                    future = self._inner.submit_chunk(
                        layout, chunks[chunk_id], h, use_alive, alive_stamp,
                        engine_kind, fault=self._chunk_fault(scope))
                    futures[future] = chunk_id
            except (BrokenExecutor, RuntimeError):
                # Pool already broken (or shut down) at submit time.
                broken = True
            timed_out = False
            if futures and not broken:
                broken, timed_out = self._collect_round(
                    futures, pending, results, chunk_counters, attempts,
                    counters)
            if not pending:
                break
            if not broken and not timed_out:
                # Healthy pool, chunk-level retries pending: loop around
                # and re-submit them.
                continue
            # The pool is gone (abrupt worker death) or the round blew its
            # deadline: every future still in flight is wasted work.
            deadline_was_cause = deadline_was_cause or timed_out
            rebuilds += 1
            self._note(counters, "pool_rebuilds")
            self._note(counters, "wasted_chunks", len(futures))
            if timed_out:
                self._note(counters, "deadline_hits")
            if rebuilds > self.retry.max_pool_rebuilds:
                budget = self.chunk_deadline or 0.0
                if deadline_was_cause and budget:
                    raise DeadlineExceededError(
                        f"bulk dispatch exceeded its {budget:.3g}s per-chunk "
                        f"deadline after {rebuilds} pool rebuilds", budget)
                raise WorkerPoolError(
                    f"process pool broke {rebuilds} times during one "
                    f"dispatch (budget: {self.retry.max_pool_rebuilds} "
                    f"rebuilds); degrading")
            self._inner.rebuild_pool()
            time.sleep(self.retry.delay(rebuilds, self._rng))
        gathered = Counters()
        for chunk_id in range(len(chunks)):
            local = chunk_counters[chunk_id]
            if local is not None:
                gathered.merge(local)
        return [result for result in results if result is not None], gathered

    def _collect_round(self, futures: Dict[Any, int], pending: set,
                       results: List[Optional[Dict[int, int]]],
                       chunk_counters: List[Optional[Counters]],
                       attempts: List[int], counters: Counters
                       ) -> Tuple[bool, bool]:
        """Consume one round of futures; returns ``(broken, timed_out)``."""
        timeout = self._round_timeout(len(futures))
        try:
            for future in as_completed(list(futures), timeout=timeout):
                chunk_id = futures.pop(future)
                try:
                    pairs, local = future.result()
                except BrokenExecutor:
                    futures[future] = chunk_id
                    return True, False
                except Exception as error:
                    if not isinstance(error, (OSError, FaultInjectedError)):
                        # A deterministic application error (bad target
                        # index, corrupt input): retrying cannot help, and
                        # the raw executor's callers expect the original
                        # exception type.
                        raise
                    attempts[chunk_id] += 1
                    self._note(counters, "retries")
                    if attempts[chunk_id] > self.retry.max_retries:
                        raise WorkerPoolError(
                            f"chunk {chunk_id} failed "
                            f"{attempts[chunk_id]} times (budget: "
                            f"{self.retry.max_retries} retries): {error}"
                        ) from error
                    time.sleep(
                        self.retry.delay(attempts[chunk_id], self._rng))
                else:
                    results[chunk_id] = dict(pairs)
                    chunk_counters[chunk_id] = local
                    pending.discard(chunk_id)
        except FuturesTimeout:
            return False, True
        return False, False

"""Retry/backoff policies and the resilience report.

Pure-stdlib value objects shared by the supervised executor, the engine
degradation ladder, and the CLI's ``--verbose`` reporting.  Nothing here
imports the heavier subsystems, so any layer can depend on this module
without cycles.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def chunk_deadline_from_env() -> Optional[float]:
    """Per-chunk deadline in seconds from ``KH_CORE_CHUNK_DEADLINE`` (if set)."""
    value = _env_float("KH_CORE_CHUNK_DEADLINE", 0.0)
    return value if value > 0 else None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with exponential backoff and seeded jitter.

    ``max_retries`` bounds re-dispatches of a single failed chunk;
    ``max_pool_rebuilds`` bounds how many times a broken process pool is
    torn down and respawned within one bulk dispatch before the caller
    degrades to the next executor rung.
    """

    max_retries: int = 3
    max_pool_rebuilds: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy honouring the ``KH_CORE_MAX_*`` env overrides."""
        return cls(
            max_retries=_env_int("KH_CORE_MAX_RETRIES", cls.max_retries),
            max_pool_rebuilds=_env_int(
                "KH_CORE_MAX_POOL_REBUILDS", cls.max_pool_rebuilds
            ),
            backoff_base=_env_float("KH_CORE_BACKOFF_BASE", cls.backoff_base),
            backoff_max=_env_float("KH_CORE_BACKOFF_MAX", cls.backoff_max),
        )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            attempt = 1
        raw = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        capped = min(raw, self.backoff_max)
        return capped * (1.0 + self.jitter * rng.random())


@dataclass
class ResilienceReport:
    """Tally of recovery actions taken while completing a decomposition.

    Attached to the engine (``engine.resilience``), surfaced through
    ``Counters`` under ``resilience.*`` keys, and printed by
    ``kh-core --verbose``.  All-zero on a fault-free run.
    """

    retries: int = 0
    pool_rebuilds: int = 0
    deadline_hits: int = 0
    wasted_chunks: int = 0
    faults_injected: int = 0
    downgrades: List[str] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note(self, event: str, amount: int = 1) -> None:
        """Increment the integer counter named ``event``."""
        with self._lock:
            setattr(self, event, getattr(self, event) + amount)

    def record_downgrade(self, source: str, target: str) -> None:
        """Record an executor downgrade, e.g. ``process`` → ``thread``."""
        with self._lock:
            self.downgrades.append(f"{source}->{target}")

    @property
    def total_events(self) -> int:
        """Total number of recovery events across all categories."""
        with self._lock:
            return (
                self.retries
                + self.pool_rebuilds
                + self.deadline_hits
                + self.wasted_chunks
                + len(self.downgrades)
            )

    def as_dict(self) -> Dict[str, Union[int, List[str]]]:
        """Plain-dict view for JSON reports and ``/stats`` payloads."""
        with self._lock:
            return {
                "retries": self.retries,
                "pool_rebuilds": self.pool_rebuilds,
                "deadline_hits": self.deadline_hits,
                "wasted_chunks": self.wasted_chunks,
                "faults_injected": self.faults_injected,
                "downgrades": list(self.downgrades),
            }

    def summary(self) -> str:
        """One-line human summary for ``kh-core --verbose``."""
        with self._lock:
            downgrades = ",".join(self.downgrades) if self.downgrades else "none"
            return (
                f"retries={self.retries} pool_rebuilds={self.pool_rebuilds} "
                f"deadline_hits={self.deadline_hits} "
                f"wasted_chunks={self.wasted_chunks} downgrades={downgrades}"
            )

    def reset(self) -> None:
        """Zero every tally (fresh decomposition on a reused engine)."""
        with self._lock:
            self.retries = 0
            self.pool_rebuilds = 0
            self.deadline_hits = 0
            self.wasted_chunks = 0
            self.faults_injected = 0
            self.downgrades.clear()

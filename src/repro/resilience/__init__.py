"""Fault-tolerant execution layer: supervision, policies, janitors, chaos.

Four pieces, layered so a decomposition *always* completes and crashes
never leak artifacts:

* :mod:`repro.resilience.faults` — deterministic fault-injection harness
  (named sites, seeded schedules, armed via ``KH_CORE_FAULTS``);
* :mod:`repro.resilience.policies` — :class:`RetryPolicy` (bounded retries,
  exponential backoff + jitter) and :class:`ResilienceReport` (what
  recovery cost);
* :mod:`repro.resilience.supervisor` — :class:`SupervisedExecutor`, the
  fault-tolerant wrapper over the shared-memory process pool;
* :mod:`repro.resilience.janitor` — the ``kh-core doctor`` crash janitors.

``faults`` and ``policies`` are stdlib-light and import eagerly; the
supervisor and janitor pull in the parallel/storage stacks and load
lazily, so production probes compiled into those stacks can import this
package without a cycle.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.faults import FaultPlan, armed, should_fire
from repro.resilience.policies import ResilienceReport, RetryPolicy

__all__ = [
    "FaultPlan",
    "armed",
    "should_fire",
    "ResilienceReport",
    "RetryPolicy",
    "SupervisedExecutor",
    "supervision_enabled",
    "DoctorReport",
    "run_doctor",
]

_LAZY = {
    "SupervisedExecutor": ("repro.resilience.supervisor", "SupervisedExecutor"),
    "supervision_enabled": ("repro.resilience.supervisor", "supervision_enabled"),
    "DoctorReport": ("repro.resilience.janitor", "DoctorReport"),
    "run_doctor": ("repro.resilience.janitor", "run_doctor"),
}


def __getattr__(name: str) -> Any:
    """Lazily resolve the heavyweight exports (PEP 562)."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)

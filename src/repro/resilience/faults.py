"""Deterministic fault-injection harness for chaos testing.

A :class:`FaultPlan` maps named *injection sites* (compiled into the
production code paths) to *schedules* deciding which probe occurrences
fire.  Plans are armed either programmatically (:func:`arm`, or the
:func:`armed` context manager) or through the ``KH_CORE_FAULTS``
environment variable, which spawned worker processes re-parse on first
probe so faults propagate across process boundaries.

With no plan armed every probe is a dict lookup returning ``False`` — the
harness adds no observable behaviour to production runs.

Spec grammar (``KH_CORE_FAULTS``)::

    site=schedule[;site=schedule...][;seed=N][;stall=SECONDS]

where ``schedule`` is one or more ``|``-separated tokens:

``*``
    fire on every probe.
``once``
    fire on the first probe of each distinct scope (or just the first
    probe overall when the site is probed without a scope).
``N``
    fire on the N-th probe (1-based).
``N-M``
    fire on probes N through M inclusive.
``%K``
    fire on every K-th probe.
``~P``
    fire with probability P, drawn from the plan's seeded RNG.

Example: ``KH_CORE_FAULTS="worker.kill=once;sqlite.busy=1-3;seed=7"``.
"""

from __future__ import annotations

import os
import random
import re
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Set, Tuple

from repro.errors import ParameterError

#: Environment variable holding a fault-plan spec for this process tree.
ENV_VAR = "KH_CORE_FAULTS"

#: Every injection site compiled into the library.  Arming an unknown site
#: raises immediately instead of silently never firing.
FAULT_SITES = (
    "worker.kill",  # kill a pool worker (SIGKILL-equivalent os._exit)
    "worker.stall",  # make a pool worker sleep past its chunk deadline
    "shm.attach_fail",  # fail a worker's shared-memory attach once
    "sqlite.busy",  # surface SQLITE_BUSY inside index query retry loops
    "block.torn_write",  # crash a .khcsr finalize before the status flip
    "serve.slow_client",  # stretch a request handler past its deadline
)

#: Default injected stall length in seconds (override with ``stall=``).
DEFAULT_STALL_SECONDS = 0.25

_TOKEN_RE = re.compile(r"^(\*|once|\d+|\d+-\d+|%\d+|~(?:\d*\.\d+|\d+))$")


class FaultPlan:
    """A seeded, deterministic schedule of fault firings per injection site.

    Thread-safe: probe counters are guarded by a lock so sites probed from
    worker threads (e.g. index readers) stay deterministic per-site.
    """

    def __init__(
        self,
        schedules: Mapping[str, str],
        seed: int = 0,
        stall_seconds: float = DEFAULT_STALL_SECONDS,
    ) -> None:
        for site in schedules:
            if site not in FAULT_SITES:
                raise ParameterError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{', '.join(FAULT_SITES)}"
                )
        for site, schedule in schedules.items():
            for token in schedule.split("|"):
                if not _TOKEN_RE.match(token.strip()):
                    raise ParameterError(
                        f"bad schedule token {token!r} for fault site {site!r}"
                    )
        self.schedules: Dict[str, str] = dict(schedules)
        self.seed = int(seed)
        self.stall_seconds = float(stall_seconds)
        self._rng = random.Random(self.seed)
        self._counts: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._seen_scopes: Dict[str, Set[str]] = {}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``KH_CORE_FAULTS``-style spec string."""
        schedules: Dict[str, str] = {}
        seed = 0
        stall = DEFAULT_STALL_SECONDS
        for raw_entry in spec.split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ParameterError(
                    f"bad fault spec entry {entry!r} (expected name=value)"
                )
            name, _, value = entry.partition("=")
            name = name.strip()
            value = value.strip()
            if name == "seed":
                seed = int(value)
            elif name == "stall":
                stall = float(value)
            else:
                schedules[name] = value
        return cls(schedules, seed=seed, stall_seconds=stall)

    def spec(self) -> str:
        """Serialize back to a spec string suitable for ``KH_CORE_FAULTS``."""
        parts = [f"{site}={sched}" for site, sched in sorted(self.schedules.items())]
        parts.append(f"seed={self.seed}")
        parts.append(f"stall={self.stall_seconds}")
        return ";".join(parts)

    def should_fire(self, site: str, scope: Optional[str] = None) -> bool:
        """Advance the probe counter for ``site`` and decide whether to fire."""
        schedule = self.schedules.get(site)
        if schedule is None:
            return False
        with self._lock:
            index = self._counts.get(site, 0) + 1
            self._counts[site] = index
            fire = any(
                self._token_matches(token.strip(), site, index, scope)
                for token in schedule.split("|")
            )
            if fire:
                self._fired[site] = self._fired.get(site, 0) + 1
            return fire

    def _token_matches(
        self, token: str, site: str, index: int, scope: Optional[str]
    ) -> bool:
        if token == "*":
            return True
        if token == "once":
            seen = self._seen_scopes.setdefault(site, set())
            key = scope if scope is not None else "<global>"
            if key in seen:
                return False
            seen.add(key)
            return True
        if token.startswith("%"):
            return index % int(token[1:]) == 0
        if token.startswith("~"):
            return self._rng.random() < float(token[1:])
        if "-" in token:
            low, _, high = token.partition("-")
            return int(low) <= index <= int(high)
        return index == int(token)

    def fired(self, site: str) -> int:
        """Number of times ``site`` has fired so far."""
        with self._lock:
            return self._fired.get(site, 0)

    def probes(self, site: str) -> int:
        """Number of times ``site`` has been probed so far."""
        with self._lock:
            return self._counts.get(site, 0)


# ``_UNSET`` distinguishes "never looked at the environment yet" from an
# explicit :func:`disarm`; worker processes resolve the env var lazily on
# their first probe, so spawned children inherit the parent's armed spec.
_UNSET = object()
_active: object = _UNSET
_active_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """Return the armed plan, resolving ``KH_CORE_FAULTS`` on first use."""
    global _active
    plan = _active
    if plan is _UNSET:
        with _active_lock:
            if _active is _UNSET:
                spec = os.environ.get(ENV_VAR, "").strip()
                _active = FaultPlan.parse(spec) if spec else None
            plan = _active
    return plan  # type: ignore[return-value]


def arm(plan: FaultPlan) -> None:
    """Install ``plan`` as this process's active fault plan."""
    global _active
    _active = plan


def disarm() -> None:
    """Deactivate fault injection in this process."""
    global _active
    _active = None


def should_fire(site: str, scope: Optional[str] = None) -> bool:
    """Probe ``site`` against the active plan (``False`` when disarmed)."""
    plan = active_plan()
    return plan is not None and plan.should_fire(site, scope=scope)


def stall_seconds() -> float:
    """Injected stall length for the active plan (default when disarmed)."""
    plan = active_plan()
    return plan.stall_seconds if plan is not None else DEFAULT_STALL_SECONDS


@contextmanager
def armed(
    spec_or_plan: "str | FaultPlan",
) -> Iterator[FaultPlan]:
    """Arm a fault plan for the duration of a ``with`` block.

    Sets ``KH_CORE_FAULTS`` (so freshly spawned worker processes inherit
    the schedule) *and* installs the parsed plan in-process (so forked
    children and same-process probes see it immediately).  Restores both
    on exit.
    """
    global _active
    plan = (
        FaultPlan.parse(spec_or_plan)
        if isinstance(spec_or_plan, str)
        else spec_or_plan
    )
    previous: Tuple[object, Optional[str]] = (_active, os.environ.get(ENV_VAR))
    os.environ[ENV_VAR] = plan.spec()
    arm(plan)
    try:
        yield plan
    finally:
        _active = previous[0]
        if previous[1] is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous[1]

"""Crash janitors behind ``kh-core doctor``.

A crashed process can leave three kinds of debris behind:

* **orphaned shared-memory segments** — ``khcore-<pid>-...`` files under
  ``/dev/shm`` whose owning pid is gone (a SIGKILLed parent never ran its
  teardown finalizer);
* **half-written CSR blocks** — ``.khcsr`` files whose header status byte
  is still ``building`` (the writer died before the finalize flip), plus
  their ``.labels`` sidecars;
* **interrupted index epochs** — ``.khidx`` SQLite stores whose ``meta``
  status is still ``'building'`` (an initial build that never committed
  its first epoch), and stale ``-wal`` sidecars on otherwise-complete
  stores (recovered by a checkpoint, not deleted).

:func:`run_doctor` scans for all three, reclaims what is provably garbage,
and reports everything it did.  Safety rules: a segment is only reclaimed
when its owner pid is *dead*; blocks and indexes are only reclaimed when
older than ``min_age`` seconds (so an in-progress build racing the doctor
is left alone); ``apply=False`` reports without deleting.
"""

from __future__ import annotations

import os
import re
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.graph.storage import (
    BLOCK_SUFFIX,
    LABELS_SUFFIX,
    MAGIC,
    STATUS_BUILDING,
    STATUS_OFFSET,
)
from repro.index.store import (
    STATUS_BUILDING as INDEX_STATUS_BUILDING,
    busy_timeout_ms,
)
from repro.parallel.shm import SEGMENT_PREFIX

#: File suffix of persistent core-index stores.
INDEX_SUFFIX = ".khidx"

_SEGMENT_RE = re.compile(rf"^{SEGMENT_PREFIX}-(\d+)-\d+-[0-9a-f]+$")


def default_shm_dir() -> Optional[str]:
    """Where POSIX shared-memory segments appear as files (Linux only)."""
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return True  # be conservative: unknown means do not touch
    return True


def _age_seconds(path: str) -> float:
    try:
        return time.time() - os.stat(path).st_mtime
    except OSError:
        return 0.0


def _remove(path: str) -> bool:
    try:
        os.remove(path)
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False


@dataclass
class DoctorReport:
    """Everything one :func:`run_doctor` pass found and did."""

    dry_run: bool = False
    segments_checked: int = 0
    blocks_checked: int = 0
    indexes_checked: int = 0
    reclaimed_segments: List[str] = field(default_factory=list)
    reclaimed_blocks: List[str] = field(default_factory=list)
    reclaimed_indexes: List[str] = field(default_factory=list)
    recovered_indexes: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def total_reclaimed(self) -> int:
        """Number of artifacts reclaimed (or reclaimable, when dry-run)."""
        return (
            len(self.reclaimed_segments)
            + len(self.reclaimed_blocks)
            + len(self.reclaimed_indexes)
        )

    def as_dict(self) -> Dict[str, Union[bool, int, List[str]]]:
        """Plain-dict view for ``kh-core doctor --json``."""
        return {
            "dry_run": self.dry_run,
            "segments_checked": self.segments_checked,
            "blocks_checked": self.blocks_checked,
            "indexes_checked": self.indexes_checked,
            "reclaimed_segments": list(self.reclaimed_segments),
            "reclaimed_blocks": list(self.reclaimed_blocks),
            "reclaimed_indexes": list(self.reclaimed_indexes),
            "recovered_indexes": list(self.recovered_indexes),
            "skipped": list(self.skipped),
            "total_reclaimed": self.total_reclaimed,
        }


def scan_shm_segments(shm_dir: str, min_age: float, apply: bool,
                      report: DoctorReport) -> None:
    """Reclaim ``khcore-*`` segments whose owning process is dead."""
    try:
        entries = sorted(os.listdir(shm_dir))
    except OSError:
        return
    for entry in entries:
        match = _SEGMENT_RE.match(entry)
        if not match:
            continue
        report.segments_checked += 1
        path = os.path.join(shm_dir, entry)
        pid = int(match.group(1))
        if _pid_alive(pid):
            report.skipped.append(f"{path} (owner pid {pid} is alive)")
            continue
        if _age_seconds(path) < min_age:
            report.skipped.append(f"{path} (younger than {min_age:.0f}s)")
            continue
        if not apply or _remove(path):
            report.reclaimed_segments.append(path)


def _block_status(path: str) -> Optional[int]:
    """Header status byte of a ``.khcsr`` block (None when unreadable)."""
    try:
        with open(path, "rb") as handle:
            header = handle.read(STATUS_OFFSET + 1)
    except OSError:
        return None
    if len(header) <= STATUS_OFFSET or not header.startswith(MAGIC):
        return None
    return header[STATUS_OFFSET]


def scan_block(path: str, min_age: float, apply: bool,
               report: DoctorReport) -> None:
    """Reclaim one ``.khcsr`` block if its finalize never completed."""
    report.blocks_checked += 1
    status = _block_status(path)
    if status is None:
        report.skipped.append(f"{path} (not a readable CSR block)")
        return
    if status != STATUS_BUILDING:
        return
    if _age_seconds(path) >= min_age:
        if not apply or _remove(path):
            report.reclaimed_blocks.append(path)
            sidecar = path + LABELS_SUFFIX
            if os.path.exists(sidecar) and apply:
                _remove(sidecar)
    else:
        report.skipped.append(f"{path} (building, younger than "
                              f"{min_age:.0f}s)")


def _index_status(path: str) -> Optional[str]:
    """``meta.status`` of a ``.khidx`` store (None when unreadable)."""
    try:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error:
        return None
    try:
        conn.execute(f"PRAGMA busy_timeout={busy_timeout_ms()}")
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'status'"
        ).fetchone()
        return row[0] if row else None
    except sqlite3.Error:
        return None
    finally:
        conn.close()


def scan_index(path: str, min_age: float, apply: bool,
               report: DoctorReport) -> None:
    """Reclaim an interrupted index epoch, or recover a healthy WAL."""
    report.indexes_checked += 1
    status = _index_status(path)
    if status is None:
        report.skipped.append(f"{path} (not a readable core index)")
        return
    if status == INDEX_STATUS_BUILDING:
        if _age_seconds(path) < min_age:
            report.skipped.append(f"{path} (building, younger than "
                                  f"{min_age:.0f}s)")
            return
        reclaimed = True
        if apply:
            for suffix in ("", "-wal", "-shm"):
                if not _remove(path + suffix) and suffix == "":
                    reclaimed = False
        if reclaimed:
            report.reclaimed_indexes.append(path)
        return
    # Complete store: fold any leftover WAL into the main file so a later
    # read-only open does not depend on recovery it may lack permission for.
    if os.path.exists(path + "-wal") and os.path.getsize(path + "-wal") > 0:
        if not apply:
            report.recovered_indexes.append(path)
            return
        try:
            conn = sqlite3.connect(path)
            try:
                conn.execute(f"PRAGMA busy_timeout={busy_timeout_ms()}")
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            finally:
                conn.close()
            report.recovered_indexes.append(path)
        except sqlite3.Error:
            report.skipped.append(f"{path} (WAL checkpoint failed)")


def _walk_targets(paths: Iterable[str]) -> Iterable[str]:
    """Yield every block/index file under the given files or directories."""
    for target in paths:
        if os.path.isfile(target):
            yield target
            continue
        if not os.path.isdir(target):
            continue
        for root, _dirs, files in os.walk(target):
            for name in sorted(files):
                yield os.path.join(root, name)


def run_doctor(paths: Iterable[str], shm_dir: Optional[str] = None,
               min_age: float = 60.0, apply: bool = True) -> DoctorReport:
    """One full janitor pass; see the module docstring for the rules.

    ``paths`` are files or directories scanned (recursively) for
    ``.khcsr`` blocks and ``.khidx`` stores; ``shm_dir`` defaults to
    ``/dev/shm`` where it exists.  ``apply=False`` is dry-run mode.
    """
    report = DoctorReport(dry_run=not apply)
    directory = shm_dir if shm_dir is not None else default_shm_dir()
    if directory is not None:
        scan_shm_segments(directory, min_age, apply, report)
    for path in _walk_targets(paths):
        if path.endswith(BLOCK_SUFFIX):
            scan_block(path, min_age, apply, report)
        elif path.endswith(INDEX_SUFFIX):
            scan_index(path, min_age, apply, report)
    return report

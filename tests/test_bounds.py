"""Tests for the core-index bounds: LB1, LB2 (Observations 1-2), UB (Alg. 5), ImproveLB (Alg. 6)."""

import pytest

from repro.core import (
    classic_core_decomposition,
    improve_lb,
    lower_bound_lb1,
    lower_bound_lb2,
    naive_core_decomposition,
    upper_bound,
)
from repro.errors import InvalidDistanceThresholdError
from repro.graph import Graph
from repro.graph.generators import (
    caveman_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    star_graph,
)
from repro.traversal import power_graph
from repro.traversal.hneighborhood import all_h_degrees


@pytest.fixture(params=[(18, 0.15, 0), (18, 0.2, 1), (22, 0.12, 2)])
def graph_and_cores(request):
    n, p, seed = request.param
    graph = erdos_renyi_graph(n, p, seed=seed)
    cores = {h: naive_core_decomposition(graph, h).core_index for h in (2, 3)}
    return graph, cores


class TestLowerBounds:
    def test_lb1_is_a_lower_bound(self, graph_and_cores):
        graph, cores = graph_and_cores
        for h in (2, 3):
            lb1 = lower_bound_lb1(graph, h)
            assert all(lb1[v] <= cores[h][v] for v in graph.vertices())

    def test_lb2_is_a_lower_bound(self, graph_and_cores):
        graph, cores = graph_and_cores
        for h in (2, 3):
            lb2 = lower_bound_lb2(graph, h)
            assert all(lb2[v] <= cores[h][v] for v in graph.vertices())

    def test_lb2_dominates_lb1(self, graph_and_cores):
        graph, _ = graph_and_cores
        for h in (2, 3):
            lb1 = lower_bound_lb1(graph, h)
            lb2 = lower_bound_lb2(graph, h, lb1=lb1)
            assert all(lb2[v] >= lb1[v] for v in graph.vertices())

    def test_lb1_equals_degree_for_h2_and_h3(self):
        graph = erdos_renyi_graph(15, 0.2, seed=3)
        for h in (2, 3):
            lb1 = lower_bound_lb1(graph, h)
            assert lb1 == graph.degrees()

    def test_lb1_uses_half_neighborhood_for_h4(self):
        graph = cycle_graph(12)
        lb1 = lower_bound_lb1(graph, 4)
        # ⌊4/2⌋ = 2-neighborhood of a cycle vertex has 4 members.
        assert all(value == 4 for value in lb1.values())

    def test_lb1_is_zero_for_h1(self):
        graph = star_graph(5)
        assert all(value == 0 for value in lower_bound_lb1(graph, 1).values())

    def test_star_example(self):
        # In a star with h = 2: LB1(center) = n, so LB2 of every leaf is n too.
        graph = star_graph(6)
        lb2 = lower_bound_lb2(graph, 2)
        assert lb2[0] == 6
        assert all(lb2[leaf] == 6 for leaf in range(1, 7))

    def test_subset_of_vertices(self):
        graph = cycle_graph(8)
        lb1 = lower_bound_lb1(graph, 2, vertices=[0, 1])
        assert set(lb1) == {0, 1}

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            lower_bound_lb1(cycle_graph(4), 0)
        with pytest.raises(InvalidDistanceThresholdError):
            lower_bound_lb2(cycle_graph(4), -3)


class TestUpperBound:
    def test_ub_is_an_upper_bound(self, graph_and_cores):
        graph, cores = graph_and_cores
        for h in (2, 3):
            ub = upper_bound(graph, h)
            assert all(ub[v] >= cores[h][v] for v in graph.vertices())

    def test_ub_equals_power_graph_core_number(self, graph_and_cores):
        graph, _ = graph_and_cores
        for h in (2, 3):
            expected = classic_core_decomposition(power_graph(graph, h)).core_index
            assert upper_bound(graph, h) == expected

    def test_ub_not_larger_than_h_degree(self, graph_and_cores):
        graph, _ = graph_and_cores
        for h in (2, 3):
            degrees = all_h_degrees(graph, h)
            ub = upper_bound(graph, h)
            assert all(ub[v] <= degrees[v] for v in graph.vertices())

    def test_reuses_precomputed_degrees(self):
        graph = caveman_graph(3, 4)
        degrees = all_h_degrees(graph, 2)
        assert upper_bound(graph, 2, initial_h_degrees=degrees) == upper_bound(graph, 2)

    def test_empty_graph(self):
        assert upper_bound(Graph(), 2) == {}

    def test_complete_graph_tight(self):
        graph = complete_graph(6)
        ub = upper_bound(graph, 2)
        assert all(value == 5 for value in ub.values())

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            upper_bound(cycle_graph(4), 0)


class TestImproveLB:
    def test_returns_min_degree_lower_bound(self):
        graph = caveman_graph(3, 5)
        candidate = set(graph.vertices())
        cleaned, min_degree = improve_lb(graph, 2, candidate, k=1)
        cores = naive_core_decomposition(graph, 2).core_index
        # Property 3: the minimum h-degree of any vertex set lower-bounds the
        # core index of every member.
        assert all(min_degree <= cores[v] for v in candidate)
        assert cleaned <= candidate

    def test_never_removes_true_core_members(self):
        graph = erdos_renyi_graph(20, 0.2, seed=4)
        cores = naive_core_decomposition(graph, 2).core_index
        k = max(cores.values())
        candidate = set(graph.vertices())
        cleaned, _ = improve_lb(graph, 2, candidate, k=k)
        true_core = {v for v, c in cores.items() if c >= k}
        assert true_core <= cleaned

    def test_cleans_partition_without_core(self):
        graph = cycle_graph(10)  # (k,2)-cores never exceed 4
        cleaned, _ = improve_lb(graph, 2, set(graph.vertices()), k=10)
        assert cleaned == set()

    def test_empty_candidate(self):
        assert improve_lb(cycle_graph(4), 2, set(), k=1) == (set(), 0)

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            improve_lb(cycle_graph(4), 0, {0, 1}, k=1)

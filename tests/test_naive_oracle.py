"""Tests for the naive reference implementations (and their mutual agreement)."""

import pytest

from repro.core import (
    naive_core_decomposition,
    naive_core_index_by_membership,
    naive_kh_core,
)
from repro.errors import InvalidDistanceThresholdError
from repro.graph import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi_graph, path_graph, star_graph


class TestNaiveKHCore:
    def test_complete_graph_all_in_core(self):
        g = complete_graph(5)
        assert naive_kh_core(g, 4, 1) == set(g.vertices())
        assert naive_kh_core(g, 5, 1) == set()

    def test_star_h2_core(self):
        # In a star all leaves are within distance 2 of each other.
        g = star_graph(5)
        assert naive_kh_core(g, 5, 2) == set(g.vertices())
        assert naive_kh_core(g, 6, 2) == set()

    def test_path_h2(self):
        g = path_graph(5)
        # Interior vertices see at most 4 others within distance 2.
        assert naive_kh_core(g, 3, 2) == set()
        assert naive_kh_core(g, 2, 2) == {0, 1, 2, 3, 4}

    def test_zero_core_is_everything(self):
        g = erdos_renyi_graph(12, 0.2, seed=0)
        assert naive_kh_core(g, 0, 3) == set(g.vertices())

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            naive_kh_core(cycle_graph(4), 1, 0)


class TestNaiveDecomposition:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_agrees_with_membership_oracle(self, h):
        g = erdos_renyi_graph(16, 0.18, seed=3)
        peeling = naive_core_decomposition(g, h).core_index
        membership = naive_core_index_by_membership(g, h)
        assert peeling == membership

    def test_core_index_matches_kh_core_membership(self):
        g = erdos_renyi_graph(14, 0.2, seed=5)
        h = 2
        decomposition = naive_core_decomposition(g, h)
        for k in range(0, decomposition.degeneracy + 1):
            assert decomposition.core(k) == naive_kh_core(g, k, h)

    def test_empty_graph(self):
        result = naive_core_decomposition(Graph(), 2)
        assert result.core_index == {}

    def test_isolated_vertices_core_zero(self):
        g = Graph(vertices=[1, 2, 3])
        result = naive_core_decomposition(g, 2)
        assert all(c == 0 for c in result.core_index.values())

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            naive_core_decomposition(cycle_graph(4), True)  # bool is not a valid h

"""Unit tests for the dynamic (k,h)-core maintenance engine."""

import pytest

from repro.core import core_decomposition
from repro.dynamic import (
    DELETE,
    INSERT,
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_NOOP,
    DynamicKHCore,
    EdgeUpdate,
    random_update_stream,
    read_update_stream,
    write_update_stream,
)
from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    GraphFormatError,
    InvalidDistanceThresholdError,
    ParameterError,
)
from repro.graph import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    relaxed_caveman_graph,
    star_graph,
)
from repro.instrumentation import Counters


def assert_exact(engine):
    """The maintained indices must equal a from-scratch decomposition."""
    expected = core_decomposition(engine.graph, engine.h).core_index
    assert engine.core_numbers() == expected


class TestConstruction:
    def test_empty_graph_default(self):
        engine = DynamicKHCore()
        assert engine.core_numbers() == {}
        assert engine.h == 2

    def test_initial_decomposition_matches_batch(self):
        graph = erdos_renyi_graph(20, 0.2, seed=1)
        engine = DynamicKHCore(graph, h=2)
        assert_exact(engine)

    def test_invalid_h_rejected(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(InvalidDistanceThresholdError):
                DynamicKHCore(Graph(), h=bad)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            DynamicKHCore(Graph(), backend="gpu")
        with pytest.raises(ParameterError):
            DynamicKHCore(Graph(), algorithm="magic")
        with pytest.raises(ParameterError):
            DynamicKHCore(Graph(), fallback_ratio=1.5)
        with pytest.raises(ParameterError):
            DynamicKHCore(Graph(), max_expansions=-1)

    def test_backend_resolved_at_construction(self):
        assert DynamicKHCore(path_graph(4)).backend == "csr"
        assert DynamicKHCore(Graph([("a", "b")])).backend == "dict"
        assert DynamicKHCore(path_graph(4), backend="dict").backend == "dict"

    def test_warm_start_skips_initial_decomposition(self):
        graph = erdos_renyi_graph(20, 0.2, seed=1)
        cores = core_decomposition(graph, 2).core_index
        engine = DynamicKHCore(graph.copy(), h=2, initial_cores=cores)
        assert engine.stats.full_recomputes == 0
        assert engine.core_numbers() == cores
        assert_exact(engine)

    def test_warm_start_stays_exact_under_updates(self):
        graph = erdos_renyi_graph(20, 0.2, seed=3)
        cores = core_decomposition(graph, 2).core_index
        warm = DynamicKHCore(graph.copy(), h=2, initial_cores=cores)
        cold = DynamicKHCore(graph.copy(), h=2)
        updates = random_update_stream(graph, 12, new_vertex_p=0.1, seed=4)
        for offset in range(0, len(updates), 3):
            batch = updates[offset:offset + 3]
            warm.apply_batch(batch)
            cold.apply_batch(batch)
        assert warm.core_numbers() == cold.core_numbers()
        assert_exact(warm)

    def test_warm_start_rejects_wrong_vertex_set(self):
        graph = path_graph(4)
        with pytest.raises(ParameterError):
            DynamicKHCore(graph, h=2, initial_cores={0: 1, 1: 1})
        with pytest.raises(ParameterError):
            DynamicKHCore(path_graph(3), h=2,
                          initial_cores={0: 1, 1: 1, 2: 1, 99: 1})


class TestSingleUpdates:
    def test_insert_raises_cores(self):
        engine = DynamicKHCore(cycle_graph(6), h=2, fallback_ratio=1.0)
        assert engine.core_number(0) == 4
        summary = engine.insert_edge(0, 3)
        assert summary.mode in (MODE_INCREMENTAL, MODE_FULL)
        assert_exact(engine)

    def test_delete_lowers_cores(self):
        engine = DynamicKHCore(cycle_graph(6), h=2, fallback_ratio=1.0)
        summary = engine.delete_edge(0, 1)
        assert summary.applied == 1
        assert engine.core_number(3) == 2
        assert_exact(engine)

    def test_insert_creates_vertices(self):
        engine = DynamicKHCore(path_graph(3), h=2, fallback_ratio=1.0)
        engine.apply("+", 2, 99)
        assert 99 in engine.graph
        assert_exact(engine)

    def test_insert_existing_edge_is_noop(self):
        engine = DynamicKHCore(path_graph(3), h=2)
        summary = engine.apply("+", 0, 1)
        assert summary.mode == MODE_NOOP
        assert summary.skipped == 1
        assert engine.stats.noop_updates == 1
        assert engine.stats.batches == 0

    def test_delete_missing_edge_raises(self):
        engine = DynamicKHCore(path_graph(3), h=2)
        with pytest.raises(EdgeNotFoundError):
            engine.apply("-", 0, 2)

    def test_self_loop_insert_rejected(self):
        engine = DynamicKHCore(path_graph(3), h=2)
        with pytest.raises(GraphError):
            engine.apply("+", 1, 1)

    def test_unknown_op_rejected(self):
        engine = DynamicKHCore(path_graph(3), h=2)
        with pytest.raises(GraphFormatError):
            engine.apply("toggle", 0, 1)

    def test_op_aliases(self):
        engine = DynamicKHCore(path_graph(4), h=2, fallback_ratio=1.0)
        engine.apply("insert", 0, 3)
        assert engine.graph.has_edge(0, 3)
        engine.apply("remove", 0, 3)
        assert not engine.graph.has_edge(0, 3)
        assert_exact(engine)

    def test_isolated_after_delete_gets_core_zero(self):
        engine = DynamicKHCore(Graph([(0, 1)]), h=2, fallback_ratio=1.0)
        engine.delete_edge(0, 1)
        assert engine.core_numbers() == {0: 0, 1: 0}


class TestBatches:
    def test_failed_batch_leaves_engine_unchanged(self):
        engine = DynamicKHCore(path_graph(4), h=2)
        before_edges = sorted(map(sorted, engine.graph.edges()))
        before_cores = engine.core_numbers()
        with pytest.raises(EdgeNotFoundError):
            engine.apply_batch([("+", 0, 2), ("-", 1, 3)])
        assert sorted(map(sorted, engine.graph.edges())) == before_edges
        assert engine.core_numbers() == before_cores

    def test_batch_validation_tracks_intra_batch_edges(self):
        engine = DynamicKHCore(path_graph(4), h=2, fallback_ratio=1.0)
        # Deleting an edge inserted earlier in the same batch is valid ...
        engine.apply_batch([("+", 0, 3), ("-", 0, 3)])
        assert not engine.graph.has_edge(0, 3)
        # ... and deleting the same pre-existing edge twice is not.
        with pytest.raises(EdgeNotFoundError):
            engine.apply_batch([("-", 0, 1), ("-", 0, 1)])
        assert_exact(engine)

    def test_mixed_batch_exact(self):
        graph = erdos_renyi_graph(18, 0.2, seed=3)
        engine = DynamicKHCore(graph.copy(), h=2, fallback_ratio=1.0)
        updates = random_update_stream(graph, 20, seed=5)
        engine.apply_batch(updates)
        assert_exact(engine)

    def test_net_noop_batch(self):
        engine = DynamicKHCore(cycle_graph(8), h=2, fallback_ratio=1.0)
        before = engine.core_numbers()
        engine.apply_batch([("+", 0, 4), ("-", 0, 4)])
        assert engine.core_numbers() == before
        assert_exact(engine)

    def test_edge_update_namedtuples_accepted(self):
        engine = DynamicKHCore(path_graph(5), h=2, fallback_ratio=1.0)
        engine.apply_batch([EdgeUpdate(INSERT, 0, 4),
                            EdgeUpdate(DELETE, 1, 2)])
        assert_exact(engine)


class TestFallbackPolicy:
    def test_zero_ratio_always_falls_back(self):
        engine = DynamicKHCore(cycle_graph(10), h=2, fallback_ratio=0.0)
        summary = engine.insert_edge(0, 5)
        assert summary.mode == MODE_FULL
        assert engine.stats.full_recomputes == 1
        assert engine.stats.incremental_repeels == 0
        assert_exact(engine)

    def test_large_region_triggers_fallback(self):
        # In a complete graph every vertex is within distance 1 of the
        # endpoints, so the seed region is the whole graph: with the default
        # ratio the engine must fall back — and stay exact.
        engine = DynamicKHCore(complete_graph(12), h=2)
        summary = engine.delete_edge(0, 1)
        assert summary.mode == MODE_FULL
        assert engine.stats.full_recomputes == 1
        assert_exact(engine)

    def test_incremental_path_used_for_local_update(self):
        graph = relaxed_caveman_graph(12, 6, 0.05, seed=2)
        engine = DynamicKHCore(graph, h=2)
        summary = engine.delete_edge(*next(iter(graph.edges())))
        assert summary.mode == MODE_INCREMENTAL
        assert summary.region_size > 0
        assert summary.universe_size >= summary.region_size
        assert engine.stats.incremental_repeels == 1
        assert engine.stats.peak_universe_size == summary.universe_size
        assert_exact(engine)

    def test_max_expansions_zero_still_exact(self):
        graph = erdos_renyi_graph(16, 0.2, seed=7)
        engine = DynamicKHCore(graph.copy(), h=2, fallback_ratio=1.0,
                               max_expansions=0)
        for update in random_update_stream(graph, 10, seed=8):
            engine.apply(*update)
            assert_exact(engine)


class TestExternalMutation:
    def test_out_of_band_mutation_resyncs_on_query(self):
        engine = DynamicKHCore(path_graph(5), h=2)
        engine.graph.add_edge(0, 4)  # behind the engine's back
        assert_exact(engine)
        assert engine.stats.external_resyncs == 1

    def test_out_of_band_mutation_resyncs_on_apply(self):
        engine = DynamicKHCore(path_graph(5), h=2, fallback_ratio=1.0)
        engine.graph.remove_edge(0, 1)
        engine.apply("+", 0, 1)
        assert engine.stats.external_resyncs == 1
        assert_exact(engine)


class TestQueriesAndStats:
    def test_core_numbers_returns_copy(self):
        engine = DynamicKHCore(path_graph(4), h=2)
        cores = engine.core_numbers()
        cores[0] = 99
        assert engine.core_number(0) != 99

    def test_core_numbers_snapshot_survives_later_updates(self):
        # Regression for the staleness hazard the query service rides on:
        # _incremental_repeel rewrites the engine's core dict in place, so
        # the mapping handed to a caller must be a defensive copy -- an
        # epoch, not a live view that later apply() calls mutate.
        engine = DynamicKHCore(cycle_graph(8), h=2)
        before = engine.core_numbers()
        frozen = dict(before)
        engine.apply("+", 0, 4)
        engine.apply("+", 2, 6)
        assert engine.core_numbers() != frozen  # the updates changed cores
        assert before == frozen  # ...but the caller's epoch is untouched

    def test_decomposition_view(self):
        engine = DynamicKHCore(cycle_graph(6), h=2)
        decomposition = engine.decomposition()
        assert decomposition.algorithm == "dynamic"
        assert decomposition.degeneracy == 4

    def test_counters_record_work(self):
        counters = Counters()
        engine = DynamicKHCore(cycle_graph(12), h=2, counters=counters,
                               fallback_ratio=1.0)
        engine.insert_edge(0, 6)
        assert counters.bfs_calls > 0
        assert counters.vertices_visited > 0

    def test_stats_as_dict_keys(self):
        engine = DynamicKHCore(path_graph(4), h=2, fallback_ratio=1.0)
        engine.insert_edge(0, 3)
        snapshot = engine.stats.as_dict()
        assert snapshot["updates_applied"] == 1
        assert set(snapshot) >= {"incremental_repeels", "full_recomputes",
                                 "peak_universe_size", "cores_changed"}

    def test_repr_mentions_sizes(self):
        engine = DynamicKHCore(path_graph(4), h=2)
        assert "4" in repr(engine)

    def test_string_labels_on_csr_backend(self):
        graph = Graph([("a", "b"), ("b", "c"), ("c", "a")])
        engine = DynamicKHCore(graph, h=2, backend="csr", fallback_ratio=1.0)
        engine.apply("+", "a", "d")
        engine.apply("-", "b", "c")
        assert_exact(engine)


class TestStarJump:
    def test_star_insert_jumps_cores(self):
        # Attaching a leaf to a star's center makes every vertex mutually
        # reachable within distance 2: all cores jump to n (the paper's
        # motivation for why rises are not bounded by 1 when h > 1).
        engine = DynamicKHCore(star_graph(5), h=2, fallback_ratio=1.0)
        assert engine.core_number(0) == 5
        engine.apply("+", 0, 99)
        assert engine.core_number(99) == 6
        assert_exact(engine)


class TestStreamFormat:
    def test_round_trip(self, tmp_path):
        updates = [EdgeUpdate(INSERT, 0, 1), EdgeUpdate(DELETE, 0, 1),
                   EdgeUpdate(INSERT, "a", "b")]
        path = tmp_path / "updates.txt"
        write_update_stream(updates, path)
        assert read_update_stream(path) == updates

    def test_comments_and_aliases(self, tmp_path):
        path = tmp_path / "updates.txt"
        path.write_text("# header\n% snap comment\nadd 1 2\n\ndel 1 2\n")
        assert read_update_stream(path) == [EdgeUpdate(INSERT, 1, 2),
                                            EdgeUpdate(DELETE, 1, 2)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "updates.txt"
        path.write_text("+ 1\n")
        with pytest.raises(GraphFormatError):
            read_update_stream(path)

    def test_unknown_op_raises(self, tmp_path):
        path = tmp_path / "updates.txt"
        path.write_text("? 1 2\n")
        with pytest.raises(GraphFormatError):
            read_update_stream(path)

    def test_random_stream_from_empty_graph_stays_valid(self):
        # Regression: all-new-vertex streams on an empty graph must never
        # emit a self-loop or a duplicate insert.
        for seed in range(10):
            updates = random_update_stream(Graph(), 6, insert_fraction=1.0,
                                           new_vertex_p=1.0, seed=seed)
            scratch = Graph()
            for op, u, v in updates:
                assert u != v
                assert op == INSERT and not scratch.has_edge(u, v)
                scratch.add_edge(u, v)

    def test_random_stream_is_applicable_and_deterministic(self):
        graph = erdos_renyi_graph(14, 0.2, seed=0)
        first = random_update_stream(graph, 25, new_vertex_p=0.2, seed=3)
        second = random_update_stream(graph, 25, new_vertex_p=0.2, seed=3)
        assert first == second
        scratch = graph.copy()
        for op, u, v in first:  # raises if ever invalid
            if op == INSERT:
                assert not scratch.has_edge(u, v)
                scratch.add_edge(u, v)
            else:
                scratch.remove_edge(u, v)


class TestChangedVertices:
    """`UpdateSummary.changed_vertices` names exactly the moved cores.

    The persistent-index refresher rewrites only these rows, so the set
    must cover every vertex whose core differs from before the batch — on
    the incremental path, the full-recompute path, and the default blend.
    """

    def replay_and_check_sets(self, graph, updates, batch_size,
                              **engine_kwargs):
        engine = DynamicKHCore(graph, h=2, **engine_kwargs)
        for offset in range(0, len(updates), batch_size):
            before = engine.core_numbers()
            summary = engine.apply_batch(updates[offset:offset + batch_size])
            after = engine.core_numbers()
            expected = ({v for v, c in after.items() if before.get(v) != c}
                        | {v for v in before if v not in after})
            assert summary.changed_vertices == frozenset(expected), (
                f"offset {offset} mode={summary.mode}")
            assert summary.cores_changed == len(summary.changed_vertices)
        return engine

    def test_incremental_mode_exact_sets(self):
        graph = relaxed_caveman_graph(4, 5, 0.15, seed=1)
        updates = random_update_stream(graph, 24, new_vertex_p=0.15, seed=2)
        engine = self.replay_and_check_sets(graph, updates, batch_size=4,
                                            fallback_ratio=1.0)
        assert engine.stats.full_recomputes == 0

    def test_full_mode_exact_sets(self):
        graph = relaxed_caveman_graph(4, 5, 0.15, seed=1)
        updates = random_update_stream(graph, 24, new_vertex_p=0.15, seed=2)
        engine = self.replay_and_check_sets(graph, updates, batch_size=4,
                                            fallback_ratio=0.0)
        assert engine.stats.incremental_repeels == 0

    def test_default_policy_exact_sets(self):
        graph = erdos_renyi_graph(16, 0.18, seed=5)
        updates = random_update_stream(graph, 20, new_vertex_p=0.1, seed=6)
        self.replay_and_check_sets(graph, updates, batch_size=3)

    def test_new_vertices_are_reported_as_changed(self):
        engine = DynamicKHCore(path_graph(3), h=2, fallback_ratio=1.0)
        summary = engine.apply_batch([("+", 2, 99)])
        assert 99 in summary.changed_vertices

    def test_noop_batch_reports_empty_set(self):
        engine = DynamicKHCore(path_graph(3), h=2)
        summary = engine.apply_batch([("+", 0, 1)])  # edge already present
        assert summary.mode == MODE_NOOP
        assert summary.changed_vertices == frozenset()
        assert summary.cores_changed == 0

    def test_core_preserving_update_reports_empty_set(self):
        # A chord in a long cycle leaves every (2,2)-core untouched only if
        # cores truly did not move; assert the set matches reality either way.
        engine = DynamicKHCore(cycle_graph(12), h=2, fallback_ratio=1.0)
        before = engine.core_numbers()
        summary = engine.apply_batch([("+", 0, 6)])
        after = engine.core_numbers()
        expected = {v for v in after if before.get(v) != after[v]}
        assert summary.changed_vertices == frozenset(expected)

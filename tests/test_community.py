"""Tests for the distance-generalized cocktail party (community search)."""

import pytest

from repro.applications.community import cocktail_party, community_density
from repro.core import core_decomposition
from repro.errors import InvalidDistanceThresholdError, ParameterError, VertexNotFoundError
from repro.graph import Graph
from repro.graph.generators import caveman_graph, erdos_renyi_graph, path_graph, star_graph
from repro.traversal.components import same_component
from repro.traversal.hneighborhood import all_h_degrees


class TestCocktailParty:
    def test_community_contains_query_and_is_connected(self, small_community_graph):
        query = [0, 1]
        result = cocktail_party(small_community_graph, query, 2)
        assert set(query) <= result.vertices
        assert same_component(small_community_graph, set(query), alive=result.vertices)

    def test_min_h_degree_matches_reported_k(self, small_community_graph):
        result = cocktail_party(small_community_graph, [0], 2)
        degrees = all_h_degrees(small_community_graph, 2, alive=result.vertices,
                                vertices=result.vertices)
        assert min(degrees.values()) == result.min_h_degree
        assert result.min_h_degree >= result.k

    def test_single_query_vertex_gets_its_own_core_depth(self, small_community_graph):
        decomposition = core_decomposition(small_community_graph, 2)
        for vertex in list(small_community_graph.vertices())[:5]:
            result = cocktail_party(small_community_graph, [vertex], 2,
                                    decomposition=decomposition)
            # A single query vertex always fits in its own (core(v), h)-core.
            assert result.k == decomposition.core_index[vertex]

    def test_optimality_against_brute_force(self):
        # On a small graph, compare with the best achievable minimum h-degree
        # over all connected supersets of the query (checked via cores).
        g = erdos_renyi_graph(12, 0.3, seed=2)
        query = [0, 1]
        result = cocktail_party(g, query, 2)
        decomposition = core_decomposition(g, 2)
        # No deeper core keeps the query connected:
        for k in range(result.k + 1, decomposition.degeneracy + 1):
            core_vertices = decomposition.core(k)
            assert not (set(query) <= core_vertices
                        and same_component(g, set(query), alive=core_vertices))

    def test_query_spanning_weakly_linked_communities(self):
        g = caveman_graph(3, 5)
        # Vertices from two different cliques force a shallower but larger community.
        across = cocktail_party(g, [0, 5], 2)
        within = cocktail_party(g, [0, 1], 2)
        assert within.k >= across.k
        assert across.size >= within.size

    def test_star_center_and_leaf(self):
        g = star_graph(5)
        result = cocktail_party(g, [0, 1], 2)
        assert result.vertices == set(g.vertices())
        assert result.min_h_degree == 5

    def test_disconnected_query_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(ParameterError):
            cocktail_party(g, [0, 3], 2)

    def test_empty_query_raises(self):
        with pytest.raises(ParameterError):
            cocktail_party(path_graph(3), [], 2)

    def test_unknown_query_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            cocktail_party(path_graph(3), [99], 2)

    def test_invalid_h_raises(self):
        with pytest.raises(InvalidDistanceThresholdError):
            cocktail_party(path_graph(3), [0], 0)

    def test_community_density_helper(self, small_community_graph):
        result = cocktail_party(small_community_graph, [0], 2)
        assert community_density(small_community_graph, result, 2) >= result.min_h_degree

"""Property tests: the array and dict peel states are observationally equal.

The two :class:`~repro.runtime.peel.PeelState` layouts are not merely "both
correct": they execute the same operation sequence, pop the same vertex from
every bucket (most-recently-inserted first), and therefore produce identical
core numbers, identical removal orders and identical instrumentation totals.
The deterministic battery drives every generator family through h-LB, h-BZ
and h-LB+UB on the CSR engine under both layouts; a hypothesis sweep mixes
backends and executors through the execution context against the dict
reference.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CSREngine, core_decomposition, h_bz, h_lb, h_lb_ub
from repro.dynamic.repeel import repeel_region
from repro.graph import generators as gen
from repro.instrumentation import Counters
from repro.runtime import (
    ArrayCoreMap,
    ArrayPeelState,
    DictPeelState,
    ExecutionContext,
    make_peel_state,
)

#: One small representative per generator family (every family in
#: repro.graph.generators is covered — the same battery the dynamic
#: subsystem uses).
FAMILIES = {
    "complete": lambda: gen.complete_graph(7),
    "cycle": lambda: gen.cycle_graph(12),
    "path": lambda: gen.path_graph(12),
    "star": lambda: gen.star_graph(8),
    "grid": lambda: gen.grid_graph(4, 4),
    "erdos_renyi": lambda: gen.erdos_renyi_graph(16, 0.18, seed=3),
    "barabasi_albert": lambda: gen.barabasi_albert_graph(16, 2, seed=3),
    "watts_strogatz": lambda: gen.watts_strogatz_graph(14, 4, 0.2, seed=3),
    "powerlaw_cluster": lambda: gen.powerlaw_cluster_graph(16, 2, 0.3, seed=3),
    "caveman": lambda: gen.caveman_graph(3, 4),
    "relaxed_caveman": lambda: gen.relaxed_caveman_graph(3, 4, 0.2, seed=3),
    "planted_partition": lambda: gen.planted_partition_graph(3, 5, 0.6, 0.1,
                                                             seed=3),
    "random_tree": lambda: gen.random_tree(14, seed=3),
    "road_network": lambda: gen.road_network_graph(4, 4, seed=3),
}


def run_with_peel(algorithm, graph, h, peel):
    """Run ``algorithm`` on CSR under ``peel``; return (cores, order, counts)."""
    counters = Counters()
    with ExecutionContext(graph, backend="csr", peel=peel,
                          counters=counters) as context:
        result = algorithm(graph, h, context=context)
    return result.core_index, result.removal_order, counters.as_dict()


@pytest.mark.parametrize("h", [1, 2, 3])
@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_layouts_identical_on_h_lb(family, h):
    """h-LB: identical cores, removal orders and counter totals."""
    graph = FAMILIES[family]()
    array_run = run_with_peel(h_lb, graph, h, "array")
    dict_run = run_with_peel(h_lb, graph, h, "dict")
    assert array_run[0] == dict_run[0], "core numbers diverged"
    assert array_run[1] == dict_run[1], "removal orders diverged"
    assert array_run[2] == dict_run[2], "counter totals diverged"


@pytest.mark.parametrize("h", [1, 2, 3])
@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_layouts_identical_on_h_bz(family, h):
    graph = FAMILIES[family]()
    array_run = run_with_peel(h_bz, graph, h, "array")
    dict_run = run_with_peel(h_bz, graph, h, "dict")
    assert array_run == dict_run


@pytest.mark.parametrize("h", [1, 2, 3])
@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_layouts_identical_on_h_lb_ub(family, h):
    """h-LB+UB (incl. the UB peeling and per-partition kernels)."""
    graph = FAMILIES[family]()
    array_run = run_with_peel(h_lb_ub, graph, h, "array")
    dict_run = run_with_peel(h_lb_ub, graph, h, "dict")
    assert array_run[0] == dict_run[0]
    assert array_run[2] == dict_run[2]


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_layouts_match_dict_backend_reference(family):
    """Both layouts agree with the dict-engine reference decomposition."""
    graph = FAMILIES[family]()
    reference = h_lb(graph, 2, backend="dict").core_index
    for peel in ("array", "dict"):
        cores, _, _ = run_with_peel(h_lb, graph, 2, peel)
        assert cores == reference


@pytest.mark.parametrize("peel", ["array", "dict"])
def test_repeel_region_layouts_agree(peel):
    """Region re-peel drives the same kernel state; full-region == batch."""
    graph = gen.relaxed_caveman_graph(4, 4, 0.2, seed=1)
    expected = core_decomposition(graph, 2, algorithm="h-LB").core_index
    engine = CSREngine(graph)
    region = list(engine.nodes())
    new_core = repeel_region(engine, 2, region, {}, peel=peel)
    assert engine.to_labels(new_core) == expected


class TestPeelStateUnits:
    """Direct op-level equivalence of the two layouts."""

    def states(self, n=8):
        return ArrayPeelState(n), DictPeelState()

    def test_pop_is_lifo_in_both(self):
        array_state, dict_state = self.states()
        for state in (array_state, dict_state):
            state.insert(1, 0)
            state.insert(2, 0)
            state.insert(3, 0)
            assert state.pop(0) == 3
            assert state.pop(0) == 2
            assert state.pop(0) == 1
            assert state.pop(0) is None

    def test_move_refreshes_recency_in_both(self):
        for state in self.states():
            state.insert(1, 0)
            state.insert(2, 0)
            state.move_to(1, 1)
            state.move_to(1, 0)
            # 1 moved back most recently, so it pops first.
            assert state.pop(0) == 1
            assert state.pop(0) == 2

    def test_move_to_same_key_is_a_counted_noop(self):
        counters_pair = (Counters(), Counters())
        states = (ArrayPeelState(4, counters_pair[0]),
                  DictPeelState(counters_pair[1]))
        for state, counters in zip(states, counters_pair):
            state.insert(0, 1)
            state.move_to(0, 1)
            assert counters.bucket_moves == 0
            state.move_to(0, 2)
            assert counters.bucket_moves == 1

    def test_membership_degree_and_lb_flags(self):
        for state in self.states():
            state.insert(3, 2, lb=True)
            assert 3 in state
            assert state.is_lb(3)
            assert state.key_of(3) == 2
            state.set_lb(3, False)
            state.set_degree(3, 5)
            assert state.degree_of(3) == 5
            assert state.decrement(3) == 4
            assert state.pop(2) == 3
            assert 3 not in state

    def test_duplicate_insert_and_bad_keys_rejected(self):
        for state in self.states():
            state.insert(0, 1)
            with pytest.raises(ValueError):
                state.insert(0, 2)
            with pytest.raises(ValueError):
                state.insert(1, -1)
            with pytest.raises(KeyError):
                state.move_to(2, 0)

    def test_fill_matches_individual_inserts(self):
        filled_array, filled_dict = self.states()
        filled_array.fill_exact([(0, 2), (1, 2), (2, 3)])
        filled_dict.fill_exact([(0, 2), (1, 2), (2, 3)])
        manual = ArrayPeelState(8)
        for v, d in [(0, 2), (1, 2), (2, 3)]:
            manual.insert(v, d)
            manual.set_degree(v, d)
        for state in (filled_array, filled_dict, manual):
            assert len(state) == 3
            assert state.degree_of(2) == 3
            assert state.pop(2) == 1
            assert state.pop(2) == 0
        empty_a, empty_d = self.states()
        empty_a.fill_lb([(4, 0)])
        empty_d.fill_lb([(4, 0)])
        assert empty_a.is_lb(4) and empty_d.is_lb(4)

    def test_array_state_grows_bucket_space_on_demand(self):
        state = ArrayPeelState(4)
        state.insert(0, 100)  # far beyond the pre-sized n + 1 heads
        assert state.key_of(0) == 100
        assert state.pop(100) == 0


class TestArrayCoreMap:
    def test_mapping_protocol(self):
        core_map = ArrayCoreMap(5)
        assert 2 not in core_map
        assert core_map.get(2) is None
        core_map[2] = 7
        assert core_map[2] == 7
        assert core_map.setdefault(2, 0) == 7
        assert core_map.setdefault(3, 4) == 4
        assert sorted(core_map.items()) == [(2, 7), (3, 4)]
        assert sorted(core_map.keys()) == [2, 3]
        assert sorted(core_map.values()) == [4, 7]
        assert core_map.to_dict() == {2: 7, 3: 4}
        assert len(core_map) == 2
        with pytest.raises(KeyError):
            core_map[0]

    def test_zero_core_is_distinct_from_unset(self):
        core_map = ArrayCoreMap(3)
        core_map[1] = 0
        assert 1 in core_map
        assert core_map[1] == 0
        assert core_map.get(0, -5) == -5


def test_make_peel_state_auto_selection():
    graph = gen.cycle_graph(6)
    engine = CSREngine(graph)
    assert isinstance(make_peel_state(engine), ArrayPeelState)
    from repro.core import DictEngine
    assert isinstance(make_peel_state(DictEngine(graph)), DictPeelState)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    num_vertices=st.integers(min_value=2, max_value=18),
    edge_probability=st.floats(min_value=0.05, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
    h=st.integers(min_value=1, max_value=3),
    backend=st.sampled_from(["dict", "csr"]),
    executor=st.sampled_from(["serial", "thread"]),
    workers=st.integers(min_value=1, max_value=3),
)
def test_hypothesis_backend_executor_sweep(num_vertices, edge_probability,
                                           seed, h, backend, executor,
                                           workers):
    """Random graphs through the context: every mix equals the reference."""
    graph = gen.erdos_renyi_graph(num_vertices, edge_probability, seed=seed)
    reference = h_lb(graph, h, backend="dict").core_index
    with ExecutionContext(graph, backend=backend, executor=executor,
                          num_workers=workers) as context:
        for algorithm in (h_lb, h_lb_ub, h_bz):
            assert algorithm(graph, h, context=context).core_index == \
                reference, (algorithm, backend, executor)

"""Importable test helpers (oracle conversions and deterministic randomness).

Kept out of ``conftest.py`` on purpose: test modules import these with
``from helpers import ...``, and a bare ``from conftest import ...`` breaks
when another directory's ``conftest.py`` (e.g. ``benchmarks/``) wins the
``conftest`` module name in a whole-repo pytest run.

networkx is used throughout the tests as an *independent oracle* (shortest
paths, classic core numbers, power graphs); the library itself never imports
it.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.graph import Graph
from repro.graph.generators import erdos_renyi_graph


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert a repro Graph into a networkx Graph (for oracle comparisons)."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def from_networkx(nx_graph: "nx.Graph") -> Graph:
    """Convert a networkx Graph into a repro Graph."""
    graph = Graph(vertices=nx_graph.nodes())
    for u, v in nx_graph.edges():
        if u != v:
            graph.add_edge(u, v)
    return graph


def random_graph(num_vertices: int, edge_probability: float, seed: int) -> Graph:
    """Deterministic Erdős–Rényi graph helper used all over the tests."""
    return erdos_renyi_graph(num_vertices, edge_probability, seed=seed)


def random_vertex(graph: Graph, seed: int = 0):
    """Pick a deterministic 'random' vertex from a graph."""
    vertices = sorted(graph.vertices(), key=repr)
    return random.Random(seed).choice(vertices)

"""Tests for the persistent (k,h)-core spectrum index (repro.index).

The acceptance properties, in order of appearance:

* **Build parity** — every query class answered by the index is
  bit-identical to a from-scratch decomposition of the source graph,
  across every generator family and h in {1, 2, 3}.
* **Refresh parity** — after incremental refreshes driven by the dynamic
  engine's dirty regions, every layer still matches a from-scratch
  decomposition of the updated graph (deterministic streams plus a
  hypothesis sweep), and the deep checksum verification still passes.
* **Corruption handling** — truncated files, interrupted builds, foreign
  schemas and flipped rows raise :class:`IndexCorruptionError`; stale
  removal orders raise :class:`StaleIndexError`.  The index never serves
  a wrong answer silently.
* **Serve integration** — an attached index answers spectrum / off-h
  queries while fresh, is invalidated by the first update, and refuses to
  attach to the wrong graph.
"""

import os
import sqlite3
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import core_decomposition
from repro.dynamic import DynamicKHCore, random_update_stream
from repro.errors import (
    CoreIndexError,
    EdgeNotFoundError,
    IndexCorruptionError,
    IndexMismatchError,
    ParameterError,
    StaleIndexError,
    VertexNotFoundError,
)
from repro.graph import Graph
from repro.graph import generators as gen
from repro.index import (
    CoreIndexReader,
    IndexRefresher,
    build_index,
    graph_checksum,
    refresh_index,
)
from repro.index.store import decode_label, encode_label

from test_peel_state import FAMILIES

H_VALUES = (1, 2, 3)


def build_family_index(tmp_path, family):
    graph = FAMILIES[family]()
    path = str(tmp_path / f"{family}.khidx")
    build_index(graph, path, h_values=H_VALUES)
    return graph, path


# --------------------------------------------------------------------- #
# build parity: every query class vs a from-scratch decomposition
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_build_parity_all_query_classes(tmp_path, family):
    graph, path = build_family_index(tmp_path, family)
    expected = {h: core_decomposition(graph, h) for h in H_VALUES}
    with CoreIndexReader(path, verify=True) as reader:
        for h in H_VALUES:
            result = expected[h]
            assert reader.core_map(h) == result.core_index
            assert reader.degeneracy(h) == result.degeneracy
            assert reader.core_sizes(h) == result.core_sizes()
            ks = {0, 1, result.degeneracy}
            for k in ks:
                assert reader.core_members(k, h) == sorted(
                    (v for v, c in result.core_index.items() if c >= k),
                    key=repr)
                assert reader.shell(k, h) == sorted(
                    (v for v, c in result.core_index.items() if c == k),
                    key=repr)
        for v in graph.vertices():
            spectrum = reader.spectrum(v)
            assert spectrum == [(h, expected[h].core_index[v])
                                for h in H_VALUES]
            for h in H_VALUES:
                assert reader.core_number(v, h) == expected[h].core_index[v]


@pytest.mark.parametrize("family", ["grid", "relaxed_caveman", "star"])
def test_membership_threshold_matches_spectrum(tmp_path, family):
    graph, path = build_family_index(tmp_path, family)
    with CoreIndexReader(path) as reader:
        max_core = max(reader.degeneracy(h) for h in H_VALUES)
        for v in graph.vertices():
            spectrum = dict(reader.spectrum(v))
            for k in range(0, max_core + 2):
                eligible = [h for h in H_VALUES if spectrum[h] >= k]
                assert reader.membership_threshold(v, k) == (
                    min(eligible) if eligible else None)


@pytest.mark.parametrize("family", ["cycle", "erdos_renyi", "caveman"])
def test_removal_orders_are_valid_peel_orders(tmp_path, family):
    # A peeling order removes vertices in non-decreasing core order and
    # covers every vertex exactly once.
    graph, path = build_family_index(tmp_path, family)
    with CoreIndexReader(path) as reader:
        for h in H_VALUES:
            order = reader.removal_order(h)
            assert sorted(order, key=repr) == sorted(graph.vertices(),
                                                     key=repr)
            cores = reader.core_map(h)
            along = [cores[v] for v in order]
            assert along == sorted(along)


def test_label_codec_roundtrip_and_injectivity(tmp_path):
    labels = [0, 5, "5", "a b", ("x", 1), ("x", (2, "y")), -3, ""]
    assert len({encode_label(v) for v in labels}) == len(labels)
    for v in labels:
        assert decode_label(encode_label(v)) == v
    with pytest.raises(CoreIndexError):
        encode_label(frozenset({1}))

    graph = Graph([(("a", 1), "b"), ("b", 3), (3, ("a", 1))])
    path = str(tmp_path / "labels.khidx")
    build_index(graph, path, h_values=(1, 2))
    with CoreIndexReader(path, verify=True) as reader:
        expected = core_decomposition(graph, 2).core_index
        assert reader.core_map(2) == expected
        assert reader.core_number(("a", 1), 2) == expected[("a", 1)]


def test_build_refuses_existing_file_without_overwrite(tmp_path):
    graph = gen.cycle_graph(6)
    path = str(tmp_path / "g.khidx")
    build_index(graph, path, h_values=(1,))
    with pytest.raises(CoreIndexError, match="already exists"):
        build_index(graph, path, h_values=(1,))
    report = build_index(graph, path, h_values=(1, 2), overwrite=True)
    assert report.h_values == (1, 2)
    with CoreIndexReader(path) as reader:
        assert reader.h_values == (1, 2)


def test_build_report_contents(tmp_path):
    graph = gen.relaxed_caveman_graph(3, 4, 0.2, seed=3)
    path = str(tmp_path / "g.khidx")
    report = build_index(graph, path, h_values=H_VALUES)
    assert report.num_vertices == graph.num_vertices
    assert report.num_edges == graph.num_edges
    assert report.rows_written == graph.num_vertices * len(H_VALUES)
    assert report.epoch == 1
    assert set(report.degeneracies) == set(H_VALUES)
    payload = report.as_dict()
    assert payload["path"] == path
    assert payload["h_values"] == list(H_VALUES)


# --------------------------------------------------------------------- #
# parameter and not-found errors
# --------------------------------------------------------------------- #
def test_query_parameter_errors(tmp_path):
    graph = gen.grid_graph(3, 3)
    path = str(tmp_path / "g.khidx")
    build_index(graph, path, h_values=(1, 2))
    with CoreIndexReader(path) as reader:
        with pytest.raises(ParameterError):
            reader.core_number((0, 0), h=9)
        with pytest.raises(ParameterError):
            reader.core_members(-1, 1)
        with pytest.raises(ParameterError):
            reader.membership_threshold((0, 0), -1)
        with pytest.raises(VertexNotFoundError):
            reader.core_number("nope", h=1)
        with pytest.raises(VertexNotFoundError):
            reader.spectrum("nope")
        with pytest.raises(ParameterError):
            reader.diff(2, 1)
        with pytest.raises(ParameterError):
            reader.diff(0, 99)


# --------------------------------------------------------------------- #
# incremental refresh: parity, deltas, staleness, rebuild fallback
# --------------------------------------------------------------------- #
def refresh_and_check(tmp_path, graph, updates, batch_size,
                      staleness_ratio=1.0):
    # staleness_ratio=1.0 keeps the refresher on the incremental path (the
    # code under test) — the rebuild fallback is exercised separately.
    """Build, refresh in batches, and assert layer parity after each batch."""
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=H_VALUES)
    summaries = []
    with IndexRefresher(path, staleness_ratio=staleness_ratio) as refresher:
        for offset in range(0, len(updates), batch_size):
            summaries.append(
                refresher.apply_batch(updates[offset:offset + batch_size]))
            current = refresher.graph
            with CoreIndexReader(path) as reader:
                for h in H_VALUES:
                    expected = core_decomposition(current, h).core_index
                    assert reader.core_map(h) == expected, (
                        f"refresh diverged at offset {offset}, h={h}")
    with CoreIndexReader(path, verify=True) as reader:
        reader.verify()
    return path, summaries


@pytest.mark.parametrize("family", ["relaxed_caveman", "erdos_renyi",
                                    "barabasi_albert", "road_network"])
def test_refresh_parity_deterministic_streams(tmp_path, family):
    graph = FAMILIES[family]()
    updates = random_update_stream(graph, 18, new_vertex_p=0.15,
                                   seed=zlib.crc32(family.encode()))
    path, summaries = refresh_and_check(tmp_path, graph, updates,
                                        batch_size=5)
    assert all(s.mode in ("incremental", "noop") for s in summaries)


def test_refresher_warm_starts_engines_from_stored_layers(tmp_path):
    # Attaching must adopt the persisted decomposition, not recompute it —
    # and the adopted state must be the real thing, not just plausible.
    graph = gen.relaxed_caveman_graph(4, 5, 0.15, seed=7)
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=H_VALUES)
    with IndexRefresher(path) as refresher:
        for h, engine in refresher.engines.items():
            assert engine.stats.full_recomputes == 0
            assert engine.core_numbers() == \
                core_decomposition(graph, h).core_index


def test_refresh_diff_matches_true_changes(tmp_path):
    graph = gen.relaxed_caveman_graph(4, 5, 0.15, seed=1)
    before = {h: core_decomposition(graph, h).core_index for h in H_VALUES}
    updates = random_update_stream(graph, 12, new_vertex_p=0.2, seed=4)
    path, _ = refresh_and_check(tmp_path, graph, updates, batch_size=4)
    with CoreIndexReader(path) as reader:
        after = {h: reader.core_map(h) for h in H_VALUES}
        for h in H_VALUES:
            expected_diff = {}
            for v, new in after[h].items():
                old = before[h].get(v)
                if old != new:
                    expected_diff[v] = (old, new)
            assert reader.diff(1, reader.current_epoch, h=h) == expected_diff
        # The unfiltered diff reports every vertex with a net change in any
        # layer, valued at the smallest changed threshold — layers are
        # folded separately, never conflated.
        union = reader.diff(1, reader.current_epoch)
        per_h = {h: reader.diff(1, reader.current_epoch, h=h)
                 for h in H_VALUES}
        changed_vertices = {v for h in H_VALUES for v in per_h[h]}
        assert set(union) == changed_vertices
        for v, pair in union.items():
            smallest = min(h for h in H_VALUES if v in per_h[h])
            assert pair == per_h[smallest][v]


def test_removal_order_goes_stale_and_rebuild_restores(tmp_path):
    graph = gen.cycle_graph(10)
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=(1, 2))
    with IndexRefresher(path) as refresher:
        refresher.apply_batch([("+", 0, 5)])
    with CoreIndexReader(path) as reader:
        with pytest.raises(StaleIndexError):
            reader.removal_order(1)
        assert reader.core_number(0, 2) >= 1  # cores still served
    # staleness_ratio=0 forces every core-changing batch down the rebuild
    # path, which re-peels globally and re-persists fresh orders.  Deleting
    # a cycle edge is guaranteed to change cores (the 2-core collapses).
    with IndexRefresher(path, staleness_ratio=0.0) as refresher:
        summary = refresher.apply_batch([("-", 2, 3)])
        assert summary.mode == "rebuild"
        final = refresher.graph.copy()
    with CoreIndexReader(path, verify=True) as reader:
        order = reader.removal_order(2)
        assert sorted(order, key=repr) == sorted(final.vertices(), key=repr)
        for h in (1, 2):
            assert reader.core_map(h) == core_decomposition(final, h).core_index


def test_rebuild_resets_delta_log_and_diff_refuses_to_cross(tmp_path):
    graph = gen.grid_graph(3, 4)
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=(1, 2))
    with IndexRefresher(path, staleness_ratio=1.0) as refresher:
        refresher.apply_batch([("+", (0, 0), (2, 3))])       # epoch 2
    with IndexRefresher(path, staleness_ratio=0.0) as refresher:
        refresher.apply_batch([("+", (0, 1), (2, 2))])       # epoch 3: rebuild
    with IndexRefresher(path, staleness_ratio=1.0) as refresher:
        refresher.apply_batch([("-", (0, 1), (2, 2))])       # epoch 4
    with CoreIndexReader(path) as reader:
        kinds = [e["kind"] for e in reader.epochs()]
        assert kinds == ["build", "refresh", "rebuild", "refresh"]
        with pytest.raises(CoreIndexError, match="rebuild"):
            reader.diff(1, reader.current_epoch)
        # a window entirely after the rebuild folds normally
        assert isinstance(reader.diff(3, 4), dict)


def test_refresher_rejects_mismatched_store(tmp_path):
    graph = gen.cycle_graph(8)
    path = str(tmp_path / "g.khidx")
    build_index(graph, path, h_values=(1,))
    with sqlite3.connect(path) as conn:
        conn.execute("DELETE FROM edges WHERE u = 1")
        conn.commit()
    with pytest.raises(IndexMismatchError):
        IndexRefresher(path)


def test_refresh_invalid_update_leaves_store_untouched(tmp_path):
    graph = gen.cycle_graph(8)
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=(1, 2))
    with IndexRefresher(path, staleness_ratio=1.0) as refresher:
        with pytest.raises(EdgeNotFoundError):
            refresher.apply_batch([("-", 0, 4)])  # edge does not exist
        # the store is still exactly the build state
        with CoreIndexReader(path, verify=True) as reader:
            assert reader.current_epoch == 1
            assert reader.core_map(2) == core_decomposition(graph, 2).core_index
        # and the refresher still works afterwards
        summary = refresher.apply_batch([("+", 0, 4)])
        assert summary.mode == "incremental"


def test_refresh_index_wrapper_batches(tmp_path):
    graph = gen.relaxed_caveman_graph(3, 5, 0.2, seed=2)
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=H_VALUES)
    updates = random_update_stream(graph, 9, seed=5)
    summaries = refresh_index(path, updates, batch_size=4)
    assert len(summaries) == 3
    replay = DynamicKHCore(graph.copy(), h=1)
    replay.apply_batch(updates)
    with CoreIndexReader(path, verify=True) as reader:
        for h in H_VALUES:
            assert reader.core_map(h) == core_decomposition(replay.graph,
                                                            h).core_index


# --------------------------------------------------------------------- #
# hypothesis sweep: random stream -> refresh -> query parity
# --------------------------------------------------------------------- #
MAX_VERTEX = 9

_edge = st.tuples(
    st.integers(min_value=0, max_value=MAX_VERTEX),
    st.integers(min_value=0, max_value=MAX_VERTEX),
).filter(lambda pair: pair[0] != pair[1])

_graphs = st.lists(_edge, min_size=1, max_size=16).map(Graph)
_raw_updates = st.lists(st.tuples(st.booleans(), _edge),
                        min_size=1, max_size=10)


@given(graph=_graphs, raw=_raw_updates,
       staleness=st.sampled_from([0.0, 0.2, 1.0]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_refresh_then_query_parity(tmp_path_factory, graph, raw,
                                              staleness):
    tmp_path = tmp_path_factory.mktemp("khidx")
    path = str(tmp_path / "g.khidx")
    build_index(graph.copy(), path, h_values=(1, 2))
    with IndexRefresher(path, staleness_ratio=staleness) as refresher:
        mirror = refresher.graph
        updates = []
        shadow = graph.copy()
        for insert, (u, v) in raw:
            if insert and not shadow.has_edge(u, v):
                shadow.add_vertex(u)
                shadow.add_vertex(v)
                shadow.add_edge(u, v)
                updates.append(("+", u, v))
            elif not insert and shadow.has_edge(u, v):
                shadow.remove_edge(u, v)
                updates.append(("-", u, v))
        if updates:
            refresher.apply_batch(updates)
        final = mirror.copy()
    with CoreIndexReader(path, verify=True) as reader:
        for h in (1, 2):
            assert reader.core_map(h) == core_decomposition(final, h).core_index
        for v in final.vertices():
            spectrum = dict(reader.spectrum(v))
            for k in (0, 1, 2, 3):
                eligible = [h for h in (1, 2) if spectrum[h] >= k]
                assert reader.membership_threshold(v, k) == (
                    min(eligible) if eligible else None)


# --------------------------------------------------------------------- #
# corruption handling: the index never serves silently-wrong answers
# --------------------------------------------------------------------- #
class TestCorruption:
    def build(self, tmp_path):
        graph = gen.relaxed_caveman_graph(3, 4, 0.2, seed=3)
        path = str(tmp_path / "g.khidx")
        build_index(graph, path, h_values=(1, 2))
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexCorruptionError):
            CoreIndexReader(str(tmp_path / "absent.khidx"))

    def test_truncated_file(self, tmp_path):
        path = self.build(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 3)
        with pytest.raises(IndexCorruptionError):
            CoreIndexReader(path)

    def test_not_a_database(self, tmp_path):
        path = str(tmp_path / "junk.khidx")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("this is not sqlite\n" * 100)
        with pytest.raises(IndexCorruptionError):
            CoreIndexReader(path)

    def test_foreign_sqlite_database(self, tmp_path):
        path = str(tmp_path / "other.db")
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE t (x)")
            conn.commit()
        with pytest.raises(IndexCorruptionError):
            CoreIndexReader(path)

    def test_interrupted_build_is_unreadable(self, tmp_path):
        path = self.build(tmp_path)
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value = 'building' "
                         "WHERE key = 'status'")
            conn.commit()
        with pytest.raises(IndexCorruptionError, match="interrupted"):
            CoreIndexReader(path)

    def test_schema_version_mismatch(self, tmp_path):
        path = self.build(tmp_path)
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value = '99' "
                         "WHERE key = 'schema_version'")
            conn.commit()
        with pytest.raises(IndexCorruptionError, match="schema version"):
            CoreIndexReader(path)

    def test_serving_grade_open_recovers_wal_and_verifies(self, tmp_path):
        from repro.index.store import CoreIndexStore

        path = self.build(tmp_path)
        # Simulate a crashed writer: a committed WAL frame nobody
        # checkpointed (the writing connection is still open, as it would
        # be at crash time).
        conn = sqlite3.connect(path)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA wal_checkpoint(PASSIVE)")
            conn.execute("INSERT INTO meta (key, value) "
                         "VALUES ('probe', 'x')")
            conn.commit()
            with CoreIndexStore.open(path) as store:
                assert store.connection is not None
            # The checkpoint folded and truncated the sidecar.
            wal = path + "-wal"
            assert not os.path.exists(wal) or os.path.getsize(wal) == 0
        finally:
            conn.close()

    def test_serving_grade_open_rejects_tampered_rows(self, tmp_path):
        from repro.index.store import CoreIndexStore

        path = self.build(tmp_path)
        with sqlite3.connect(path) as conn:
            conn.execute("DELETE FROM edges WHERE u = 1")
            conn.commit()
        with pytest.raises(IndexCorruptionError):
            CoreIndexStore.open(path)

    def test_flipped_core_row_fails_deep_verify(self, tmp_path):
        path = self.build(tmp_path)
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE cores SET core = core + 1 "
                         "WHERE h = 2 AND vid = 1")
            conn.commit()
        # cheap validation cannot see a row flip...
        reader = CoreIndexReader(path)
        reader.close()
        # ...but the deep row-scan does.
        with pytest.raises(IndexCorruptionError, match="checksum mismatch"):
            CoreIndexReader(path, verify=True)

    def test_deleted_vertex_row_fails_deep_verify(self, tmp_path):
        path = self.build(tmp_path)
        with sqlite3.connect(path) as conn:
            conn.execute("DELETE FROM vertices WHERE vid = 2")
            conn.commit()
        with pytest.raises(IndexCorruptionError):
            CoreIndexReader(path, verify=True)

    def test_missing_layer_fails_deep_verify(self, tmp_path):
        path = self.build(tmp_path)
        with sqlite3.connect(path) as conn:
            conn.execute("DELETE FROM layers WHERE h = 2")
            conn.execute("DELETE FROM cores WHERE h = 2")
            conn.commit()
        with pytest.raises(IndexCorruptionError, match="missing"):
            CoreIndexReader(path, verify=True)


# --------------------------------------------------------------------- #
# serve integration: index-backed CoreService queries
# --------------------------------------------------------------------- #
class TestServeIntegration:
    def make(self, tmp_path, h_values=H_VALUES):
        from repro.serve.service import CoreService

        graph = gen.relaxed_caveman_graph(4, 5, 0.15, seed=7)
        path = str(tmp_path / "g.khidx")
        build_index(graph.copy(), path, h_values=h_values)
        return graph, path, CoreService

    def test_spectrum_served_from_index_while_fresh(self, tmp_path):
        graph, path, CoreService = self.make(tmp_path)
        with CoreService(graph.copy(), h=2, index_path=path) as service:
            expected = {h: core_decomposition(graph, h).core_index
                        for h in H_VALUES}
            out = service.query_spectrum(0, list(H_VALUES))
            assert out["spectrum"] == [[h, expected[h][0]] for h in H_VALUES]
            off_h = service.query_core_number(0, h=3)
            assert off_h["core"] == expected[3][0]
            stats = service.query_stats()
            assert stats["index"]["fresh"] is True
            assert stats["index"]["hits"] == 2
            assert stats["index"]["misses"] == 0

    def test_update_invalidates_index(self, tmp_path):
        graph, path, CoreService = self.make(tmp_path)
        with CoreService(graph.copy(), h=2, index_path=path) as service:
            service.apply_updates_sync([("+", 0, 12)])
            out = service.query_spectrum(0, list(H_VALUES))
            # fallback answers from the live snapshot, i.e. the new graph
            expected = {h: core_decomposition(service.engine.graph,
                                              h).core_index
                        for h in H_VALUES}
            assert out["spectrum"] == [[h, expected[h][0]] for h in H_VALUES]
            stats = service.query_stats()
            assert stats["index"]["fresh"] is False
            assert stats["index"]["misses"] >= 1

    def test_unindexed_h_falls_back(self, tmp_path):
        graph, path, CoreService = self.make(tmp_path, h_values=(1, 2))
        with CoreService(graph.copy(), h=1, index_path=path) as service:
            out = service.query_spectrum(0, [1, 2, 3])  # 3 not persisted
            expected = {h: core_decomposition(graph, h).core_index
                        for h in (1, 2, 3)}
            assert out["spectrum"] == [[h, expected[h][0]] for h in (1, 2, 3)]
            assert service.query_stats()["index"]["hits"] == 0

    def test_vertex_not_found_through_index(self, tmp_path):
        graph, path, CoreService = self.make(tmp_path)
        with CoreService(graph.copy(), h=2, index_path=path) as service:
            with pytest.raises(VertexNotFoundError):
                service.query_spectrum("nope", list(H_VALUES))

    def test_wrong_graph_refuses_to_attach(self, tmp_path):
        _, path, CoreService = self.make(tmp_path)
        other = gen.cycle_graph(9)
        with pytest.raises(IndexMismatchError):
            CoreService(other, h=2, index_path=path)

    def test_stats_without_index_reports_none(self, tmp_path):
        from repro.serve.service import CoreService

        with CoreService(gen.cycle_graph(6), h=2) as service:
            assert service.query_stats()["index"] is None


# --------------------------------------------------------------------- #
# checksums
# --------------------------------------------------------------------- #
def test_graph_checksum_is_order_independent_and_structure_sensitive():
    a = Graph([(0, 1), (1, 2), (2, 3)])
    b = Graph([(2, 3), (1, 2), (0, 1)])   # same structure, other order
    c = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
    assert graph_checksum(a) == graph_checksum(b)
    assert graph_checksum(a) != graph_checksum(c)
    d = a.copy()
    d.add_vertex(99)                       # isolated vertices count too
    assert graph_checksum(a) != graph_checksum(d)

"""Unit tests for the fault-tolerance layer (:mod:`repro.resilience`).

Covers the deterministic fault-injection harness, the retry/backoff
policies, the resilience report, the supervised executor's fault-free
contract, the crash-safe pool teardown (the PR's satellite fix), and the
``kh-core doctor`` janitors.  The end-to-end chaos battery (faults armed
against whole decompositions) lives in ``test_chaos.py``.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sqlite3
import time

import pytest

from repro.errors import ParameterError
from repro.graph.generators import relaxed_caveman_graph
from repro.instrumentation import Counters
from repro.resilience import FaultPlan, ResilienceReport, RetryPolicy, armed
from repro.resilience import faults
from repro.resilience.janitor import DoctorReport, run_doctor
from repro.resilience.policies import chunk_deadline_from_env
from repro.resilience.supervisor import SupervisedExecutor, supervision_enabled


# --------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ParameterError):
            FaultPlan({"worker.meltdown": "*"})

    def test_bad_token_rejected(self):
        with pytest.raises(ParameterError):
            FaultPlan({"worker.kill": "sometimes"})

    def test_bad_spec_entry_rejected(self):
        with pytest.raises(ParameterError):
            FaultPlan.parse("worker.kill")

    def test_parse_round_trips_through_spec(self):
        plan = FaultPlan.parse(
            "worker.kill=once;sqlite.busy=1-3;seed=7;stall=0.1")
        clone = FaultPlan.parse(plan.spec())
        assert clone.schedules == plan.schedules
        assert clone.seed == 7
        assert clone.stall_seconds == pytest.approx(0.1)

    def test_star_fires_every_probe(self):
        plan = FaultPlan({"sqlite.busy": "*"})
        assert all(plan.should_fire("sqlite.busy") for _ in range(5))

    def test_index_and_range_are_one_based(self):
        plan = FaultPlan({"sqlite.busy": "2|4-5"})
        fired = [plan.should_fire("sqlite.busy") for _ in range(6)]
        assert fired == [False, True, False, True, True, False]

    def test_modulo_schedule(self):
        plan = FaultPlan({"sqlite.busy": "%3"})
        fired = [plan.should_fire("sqlite.busy") for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_once_fires_once_per_scope(self):
        plan = FaultPlan({"worker.kill": "once"})
        assert plan.should_fire("worker.kill", scope="dispatch-1")
        assert not plan.should_fire("worker.kill", scope="dispatch-1")
        assert plan.should_fire("worker.kill", scope="dispatch-2")

    def test_once_without_scope_fires_once_globally(self):
        plan = FaultPlan({"worker.kill": "once"})
        assert plan.should_fire("worker.kill")
        assert not plan.should_fire("worker.kill")

    def test_probability_schedule_is_seeded(self):
        a = FaultPlan({"sqlite.busy": "~0.5"}, seed=11)
        b = FaultPlan({"sqlite.busy": "~0.5"}, seed=11)
        pattern_a = [a.should_fire("sqlite.busy") for _ in range(32)]
        pattern_b = [b.should_fire("sqlite.busy") for _ in range(32)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_unscheduled_site_never_fires_and_never_counts(self):
        plan = FaultPlan({"worker.kill": "*"})
        assert not plan.should_fire("sqlite.busy")
        assert plan.probes("sqlite.busy") == 0

    def test_fired_and_probes_tallies(self):
        plan = FaultPlan({"sqlite.busy": "1"})
        plan.should_fire("sqlite.busy")
        plan.should_fire("sqlite.busy")
        assert plan.probes("sqlite.busy") == 2
        assert plan.fired("sqlite.busy") == 1


class TestArming:
    def test_armed_sets_env_and_plan_then_restores(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.disarm()
        with armed("worker.kill=once;seed=3") as plan:
            assert faults.active_plan() is plan
            assert faults.ENV_VAR in os.environ
        assert faults.active_plan() is None
        assert faults.ENV_VAR not in os.environ

    def test_env_var_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "sqlite.busy=*")
        monkeypatch.setattr(faults, "_active", faults._UNSET)
        plan = faults.active_plan()
        assert plan is not None
        assert plan.should_fire("sqlite.busy")
        faults.disarm()

    def test_should_fire_disarmed_is_false(self):
        faults.disarm()
        assert not faults.should_fire("worker.kill")


# --------------------------------------------------------------------- #
# policies
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_delay_grows_then_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(attempt, rng) for attempt in (1, 2, 3, 4)]
        assert delays == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_jitter_stays_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.1, jitter=0.25)
        rng = random.Random(42)
        for attempt in range(1, 10):
            delay = policy.delay(attempt, rng)
            assert 0.1 <= delay <= 0.1 * 1.25

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_MAX_RETRIES", "9")
        monkeypatch.setenv("KH_CORE_MAX_POOL_REBUILDS", "4")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 9
        assert policy.max_pool_rebuilds == 4

    def test_chunk_deadline_env(self, monkeypatch):
        monkeypatch.delenv("KH_CORE_CHUNK_DEADLINE", raising=False)
        assert chunk_deadline_from_env() is None
        monkeypatch.setenv("KH_CORE_CHUNK_DEADLINE", "2.5")
        assert chunk_deadline_from_env() == pytest.approx(2.5)


class TestResilienceReport:
    def test_note_and_summary(self):
        report = ResilienceReport()
        report.note("retries")
        report.note("wasted_chunks", 3)
        report.record_downgrade("process", "thread")
        assert report.retries == 1
        assert report.wasted_chunks == 3
        assert report.total_events == 5
        assert "downgrades=process->thread" in report.summary()

    def test_as_dict_and_reset(self):
        report = ResilienceReport()
        report.note("pool_rebuilds", 2)
        snapshot = report.as_dict()
        assert snapshot["pool_rebuilds"] == 2
        report.reset()
        assert report.total_events == 0
        assert report.as_dict()["downgrades"] == []


# --------------------------------------------------------------------- #
# supervised executor
# --------------------------------------------------------------------- #
def _h_degrees_serial(graph, h):
    from repro.core.backends import CSREngine

    engine = CSREngine(graph)
    try:
        return engine.bulk_h_degrees(h, executor="serial")
    finally:
        engine.close()


class TestSupervisedExecutor:
    def test_supervision_enabled_env_toggle(self, monkeypatch):
        monkeypatch.delenv("KH_CORE_SUPERVISED", raising=False)
        assert supervision_enabled()
        for value in ("0", "false", "off", "no"):
            monkeypatch.setenv("KH_CORE_SUPERVISED", value)
            assert not supervision_enabled()

    def test_fault_free_dispatch_matches_serial(self):
        faults.disarm()
        graph = relaxed_caveman_graph(4, 8, 0.2, seed=5)
        expected = _h_degrees_serial(graph, 2)
        from repro.core.backends import CSREngine

        engine = CSREngine(graph)
        try:
            with SupervisedExecutor(2) as pool:
                counters = Counters()
                got = pool.bulk_h_degrees(engine.csr, 2,
                                          list(range(engine.num_nodes)),
                                          counters=counters)
            by_label = engine.to_labels(got)
        finally:
            engine.close()
        assert by_label == expected
        # Fault-free runs leave no resilience trace in the counters.
        assert not [k for k in counters.as_dict() if k.startswith("resilience.")]

    def test_empty_targets(self):
        faults.disarm()
        graph = relaxed_caveman_graph(2, 5, 0.1, seed=1)
        from repro.core.backends import CSREngine

        engine = CSREngine(graph)
        try:
            with SupervisedExecutor(2) as pool:
                assert pool.bulk_h_degrees(engine.csr, 2, []) == {}
        finally:
            engine.close()

    def test_deterministic_error_propagates_unretried(self):
        """An application error (bad target index) must surface unchanged
        on the first failure — the raw executor's contract — and close
        the pool, not burn the retry budget on an unwinnable chunk."""
        faults.disarm()
        graph = relaxed_caveman_graph(2, 6, 0.1, seed=3)
        from repro.core.backends import CSREngine

        engine = CSREngine(graph)
        try:
            counters = Counters()
            pool = SupervisedExecutor(2)
            with pytest.raises(IndexError):
                pool.bulk_h_degrees(engine.csr, 2,
                                    [engine.csr.num_vertices + 7],
                                    counters=counters)
            assert pool.closed
            assert "resilience.retries" not in counters.as_dict()
        finally:
            engine.close()


# --------------------------------------------------------------------- #
# satellite fix: crash-safe teardown never leaks the shm block
# --------------------------------------------------------------------- #
class TestCrashSafeTeardown:
    def test_close_after_pool_break_unlinks_segment(self):
        """Regression: close() on a broken pool must still free the block.

        Before the fix, ``pool.shutdown()`` raising (dead worker pipes)
        aborted the teardown before ``shm.unlink`` ran, leaking the
        segment until reboot.
        """
        faults.disarm()
        pytest.importorskip("multiprocessing.shared_memory")
        from multiprocessing import shared_memory

        from repro.core.backends import CSREngine
        from repro.parallel.pool import SharedMemoryExecutor

        graph = relaxed_caveman_graph(3, 8, 0.2, seed=2)
        engine = CSREngine(graph)
        pool = SharedMemoryExecutor(2)
        try:
            # Run one real dispatch so the pool processes exist and the
            # block is exported.
            pool.bulk_h_degrees(engine.csr, 2, list(range(engine.num_nodes)))
            name = pool.shm_name
            assert name is not None
            state = pool._state
            for process in state["pool"]._processes.values():
                os.kill(process.pid, signal.SIGKILL)
            deadline = time.time() + 5.0
            while (any(p.is_alive()
                       for p in state["pool"]._processes.values())
                   and time.time() < deadline):
                time.sleep(0.01)
            pool.close()  # must not raise despite the dead workers
            assert pool.closed
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            pool.close()
            engine.close()


# --------------------------------------------------------------------- #
# janitors
# --------------------------------------------------------------------- #
def _dead_pid() -> int:
    """A pid that is certainly not alive (a just-reaped child's)."""
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


def _plant_orphan_segment(shm_dir) -> str:
    path = os.path.join(shm_dir, f"khcore-{_dead_pid()}-1-abcd")
    with open(path, "wb") as handle:
        handle.write(b"\x00" * 64)
    _age(path)
    return path


def _plant_building_block(tmp_path) -> str:
    from repro.graph.storage import BlockFileWriter

    path = str(tmp_path / "half.khcsr")
    writer = BlockFileWriter(path, num_vertices=3, adjacency_len=4)
    writer._close_handles()  # simulate a crash mid-build
    _age(path)
    return path


def _plant_building_index(tmp_path) -> str:
    from repro.index.store import CoreIndexStore

    path = str(tmp_path / "half.khidx")
    store = CoreIndexStore.create(path, h_values=(1, 2), source="test")
    store.close()  # crash before the first epoch commit
    _age(path)
    return path


def _age(path: str, seconds: float = 3600.0) -> None:
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestDoctor:
    def test_one_pass_reclaims_all_three_artifact_kinds(self, tmp_path):
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        segment = _plant_orphan_segment(str(shm_dir))
        block = _plant_building_block(tmp_path)
        index = _plant_building_index(tmp_path)

        report = run_doctor([str(tmp_path)], shm_dir=str(shm_dir),
                            min_age=60.0, apply=True)
        assert report.reclaimed_segments == [segment]
        assert report.reclaimed_blocks == [block]
        assert report.reclaimed_indexes == [index]
        assert report.total_reclaimed == 3
        for path in (segment, block, index):
            assert not os.path.exists(path)

    def test_dry_run_reports_but_leaves_everything(self, tmp_path):
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        segment = _plant_orphan_segment(str(shm_dir))
        block = _plant_building_block(tmp_path)
        index = _plant_building_index(tmp_path)

        report = run_doctor([str(tmp_path)], shm_dir=str(shm_dir),
                            min_age=60.0, apply=False)
        assert report.dry_run
        assert report.total_reclaimed == 3
        for path in (segment, block, index):
            assert os.path.exists(path)

    def test_live_owner_and_young_artifacts_are_spared(self, tmp_path):
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        live = os.path.join(str(shm_dir), f"khcore-{os.getpid()}-1-beef")
        with open(live, "wb") as handle:
            handle.write(b"\x00" * 64)
        _age(live)
        young_block = _plant_building_block(tmp_path)
        os.utime(young_block)  # freshly touched: in-progress build

        report = run_doctor([str(tmp_path)], shm_dir=str(shm_dir),
                            min_age=60.0, apply=True)
        assert report.reclaimed_segments == []
        assert report.reclaimed_blocks == []
        assert os.path.exists(live)
        assert os.path.exists(young_block)
        assert any("alive" in entry for entry in report.skipped)

    def test_complete_artifacts_untouched(self, tmp_path):
        from repro.graph.storage import BlockFileWriter
        from repro.index.store import CoreIndexStore

        block = str(tmp_path / "done.khcsr")
        writer = BlockFileWriter(block, num_vertices=1, adjacency_len=0)
        from array import array

        writer.write_indptr(array("q", [0, 0]))
        writer.finalize()
        _age(block)

        report = run_doctor([str(tmp_path)], shm_dir=None,
                            min_age=60.0, apply=True)
        assert report.blocks_checked == 1
        assert report.reclaimed_blocks == []
        assert os.path.exists(block)

    def test_wal_recovery_on_complete_store(self, tmp_path):
        from repro.graph import Graph
        from repro.index import build_index

        path = str(tmp_path / "built.khidx")
        graph = Graph([(0, 1), (1, 2), (2, 0)])
        build_index(graph, path, h_values=(1, 2), source="test")
        # Leave a non-empty WAL on disk, as a crashed writer would: keep
        # the writing connection open across the doctor pass, since a
        # clean last-connection close would checkpoint the WAL away.
        conn = sqlite3.connect(path)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("INSERT OR REPLACE INTO meta(key, value) "
                         "VALUES ('probe', 'x')")
            conn.commit()
            assert os.path.getsize(path + "-wal") > 0
            _age(path)

            report = run_doctor([str(tmp_path)], shm_dir=None,
                                min_age=60.0, apply=True)
            assert report.recovered_indexes == [path]
            assert report.reclaimed_indexes == []
            assert os.path.getsize(path + "-wal") == 0
        finally:
            conn.close()

    def test_report_as_dict(self):
        report = DoctorReport(dry_run=True)
        payload = report.as_dict()
        assert payload["dry_run"] is True
        assert payload["total_reclaimed"] == 0
